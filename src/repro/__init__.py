"""SparCML reproduction: high-performance sparse communication for ML.

A from-scratch Python implementation of the system described in

    Renggli, Ashkboos, Aghagolzadeh, Alistarh, Hoefler.
    "SparCML: High-Performance Sparse Communication for Machine Learning."
    SC 2019 (arXiv:1802.08021).

Top-level surface (see DESIGN.md for the full inventory):

* :class:`~repro.streams.SparseStream` — the sparse/dense stream type;
* :func:`~repro.collectives.sparse_allreduce` /
  :func:`~repro.collectives.sparse_allgather` — the sparse collectives;
* :func:`~repro.core.quantized_topk_sgd` — Algorithm 1;
* :func:`~repro.runtime.run_ranks` — the parallel execution harness;
* :class:`~repro.costmodel.CostModel` — the unified §5.3 cost layer
  (prediction, selection reports, calibration, adaptive selection);
* :mod:`repro.netsim` — alpha-beta timing replay of executed traces.

Quickstart::

    import numpy as np
    from repro import SparseStream, run_ranks, sparse_allreduce

    def program(comm):
        rng = np.random.default_rng(comm.rank)
        s = SparseStream.random_uniform(1 << 20, nnz=1000, rng=rng)
        return sparse_allreduce(comm, s, algorithm="ssar_rec_dbl")

    out = run_ranks(program, nranks=8)
    print(out[0], out.trace.summary())
"""

from .collectives import (
    choose_algorithm,
    dense_allreduce,
    run_sparse_allreduce,
    sparse_allgather,
    sparse_allreduce,
)
from .config import INDEX_BYTES, INDEX_DTYPE, delta_threshold
from .costmodel import (
    AdaptiveSelector,
    CostModel,
    Instance,
    PredictedCost,
    SelectionReport,
)
from .core import (
    ErrorFeedback,
    TopKSGDConfig,
    TopKSGDResult,
    dense_sgd,
    quantized_topk_sgd,
    topk_stream,
)
from .netsim import (
    ARIES,
    GIGE,
    IB_FDR,
    SHM,
    TIERED_ARIES,
    TIERED_GIGE,
    TIERED_IB_FDR,
    NetworkModel,
    TieredNetworkModel,
    replay,
    resolve_network,
)
from .quant import QSGDQuantizer, QuantizedBlock
from .runtime import (
    Backend,
    CommTimeoutError,
    FaultPlan,
    RankFailedError,
    Topology,
    Trace,
    available_backends,
    get_backend,
    i_collective,
    inter_node_bytes,
    run_ranks,
)
from .streams import SparseStream, add_streams, reduce_streams

__version__ = "1.0.0"

__all__ = [
    "SparseStream",
    "add_streams",
    "reduce_streams",
    "sparse_allreduce",
    "sparse_allgather",
    "dense_allreduce",
    "choose_algorithm",
    "QSGDQuantizer",
    "QuantizedBlock",
    "ErrorFeedback",
    "topk_stream",
    "TopKSGDConfig",
    "TopKSGDResult",
    "quantized_topk_sgd",
    "dense_sgd",
    "run_ranks",
    "run_sparse_allreduce",
    "i_collective",
    "Backend",
    "get_backend",
    "available_backends",
    "Topology",
    "inter_node_bytes",
    "Trace",
    "FaultPlan",
    "RankFailedError",
    "CommTimeoutError",
    "NetworkModel",
    "TieredNetworkModel",
    "ARIES",
    "IB_FDR",
    "GIGE",
    "SHM",
    "TIERED_ARIES",
    "TIERED_IB_FDR",
    "TIERED_GIGE",
    "replay",
    "resolve_network",
    "CostModel",
    "Instance",
    "PredictedCost",
    "SelectionReport",
    "AdaptiveSelector",
    "INDEX_DTYPE",
    "INDEX_BYTES",
    "delta_threshold",
    "__version__",
]
