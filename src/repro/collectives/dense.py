"""Dense allreduce baselines (the algorithms MPI libraries ship, §5.3).

These are the comparison points of the paper's evaluation:

* **recursive doubling** — log2(P) rounds of pairwise exchange of the full
  vector; latency-optimal, bandwidth-suboptimal (`log2(P) * N * beta`);
* **ring** — reduce-scatter ring followed by an allgather ring; bandwidth
  optimal (``2 (P-1)/P N beta``) but latency ``2 (P-1) alpha``;
* **Rabenseifner** — recursive-halving reduce-scatter followed by a
  recursive-doubling allgather; ``2 log2(P) alpha + 2 (P-1)/P N beta``.

All operate on 1-D numpy arrays, work for any P (non-powers of two are
folded in/out following App. A), and charge local reduction work to the
trace so replay accounts for computation.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator
from ..streams.ops import SUM, ReduceOp

__all__ = [
    "partition_bounds",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_rabenseifner",
    "DENSE_ALGORITHMS",
]


def partition_bounds(dimension: int, nparts: int) -> np.ndarray:
    """Balanced partition offsets: part ``i`` covers ``[b[i], b[i+1])``.

    Uses the balanced ``i*N//P`` rule (App. A's relaxation of the "N
    divisible by P" assumption, with the remainder spread instead of dumped
    on the last rank).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if dimension < 0:
        raise ValueError(f"dimension must be >= 0, got {dimension}")
    return np.array([(i * dimension) // nparts for i in range(nparts + 1)], dtype=np.int64)


def _fold_prelude(comm: Communicator, vec: np.ndarray, tag: int, op: ReduceOp = SUM):
    """Fold non-power-of-two ranks into a power-of-two group.

    Returns ``(newrank, pof2, rem, vec)``; ``newrank`` is -1 for ranks that
    sit out the main algorithm and receive the result afterwards.
    """
    pof2 = 1
    while pof2 * 2 <= comm.size:
        pof2 *= 2
    rem = comm.size - pof2
    if rem == 0:
        return comm.rank, pof2, 0, vec
    if comm.rank < 2 * rem:
        if comm.rank % 2 == 0:
            comm.send(vec, comm.rank + 1, tag)
            return -1, pof2, rem, vec
        incoming = comm.recv(comm.rank - 1, tag)
        comm.compute(vec.nbytes * 2, "fold")
        vec = op.ufunc(vec, incoming)
        return comm.rank // 2, pof2, rem, vec
    return comm.rank - rem, pof2, rem, vec


def _fold_epilogue(comm: Communicator, vec: np.ndarray, newrank: int, rem: int, tag: int) -> np.ndarray:
    """Return results to the folded-out ranks."""
    if rem == 0:
        return vec
    if comm.rank < 2 * rem:
        if comm.rank % 2 == 0:
            return comm.recv(comm.rank + 1, tag)
        comm.send(vec, comm.rank - 1, tag)
    return vec


def _real_rank(newrank: int, rem: int) -> int:
    """Map a folded group rank back to the world rank."""
    return newrank * 2 + 1 if newrank < rem else newrank + rem


def allreduce_recursive_doubling(
    comm: Communicator, vec: np.ndarray, op: ReduceOp = SUM
) -> np.ndarray:
    """Dense allreduce via recursive doubling; returns the reduced vector."""
    vec = np.asarray(vec)
    if comm.size == 1:
        return vec.copy()
    base = comm.next_collective_tag()
    comm.mark("dense_rec_dbl")
    newrank, pof2, rem, work = _fold_prelude(comm, vec, base, op)
    if newrank >= 0:
        work = work.copy() if work is vec else work
        distance = 1
        round_no = 1
        while distance < pof2:
            partner = _real_rank(newrank ^ distance, rem)
            incoming = comm.sendrecv(work, partner, base + round_no)
            comm.compute(work.nbytes * 2, "reduce")
            op.combine(work, incoming, out=work)
            distance *= 2
            round_no += 1
    result = _fold_epilogue(comm, work, newrank, rem, base)
    return result


def allreduce_ring(comm: Communicator, vec: np.ndarray, op: ReduceOp = SUM) -> np.ndarray:
    """Dense allreduce via reduce-scatter ring + allgather ring."""
    vec = np.asarray(vec)
    P = comm.size
    if P == 1:
        return vec.copy()
    base = comm.next_collective_tag()
    comm.mark("dense_ring")
    bounds = partition_bounds(vec.shape[0], P)
    blocks = [vec[bounds[i]: bounds[i + 1]].copy() for i in range(P)]
    right = (comm.rank + 1) % P
    left = (comm.rank - 1) % P

    # reduce-scatter: after P-1 steps, rank r holds the sum of block (r+1)%P.
    # A single tag per phase suffices: messages on one (src, dst, tag)
    # channel are FIFO, so step s+1 can never overtake step s.
    for step in range(P - 1):
        send_block = (comm.rank - step) % P
        recv_block = (comm.rank - step - 1) % P
        incoming = _ring_exchange(comm, blocks[send_block], right, left, base)
        comm.compute(blocks[recv_block].nbytes * 2, "reduce")
        blocks[recv_block] = op.ufunc(blocks[recv_block], incoming)

    # allgather ring: circulate the reduced blocks
    for step in range(P - 1):
        send_block = (comm.rank - step + 1) % P
        recv_block = (comm.rank - step) % P
        blocks[recv_block] = _ring_exchange(
            comm, blocks[send_block], right, left, base + 1
        )

    return np.concatenate(blocks)


def _ring_exchange(comm: Communicator, payload: np.ndarray, right: int, left: int, tag: int) -> np.ndarray:
    req = comm.isend(payload, right, tag)
    incoming = comm.recv(left, tag)
    req.wait()
    return incoming


def allreduce_rabenseifner(
    comm: Communicator, vec: np.ndarray, op: ReduceOp = SUM
) -> np.ndarray:
    """Rabenseifner's algorithm: recursive-halving RS + recursive-doubling AG.

    ``2 log2(P) alpha + 2 (P-1)/P N beta`` — the large-message workhorse the
    paper's SSAR_Split_allgather is modelled on.
    """
    vec = np.asarray(vec)
    if comm.size == 1:
        return vec.copy()
    base = comm.next_collective_tag()
    comm.mark("dense_rabenseifner")
    newrank, pof2, rem, work = _fold_prelude(comm, vec, base, op)
    result: np.ndarray | None = None
    if newrank >= 0:
        work = work.copy() if work is vec else work
        n = work.shape[0]
        lo, hi = 0, n
        distance = pof2 // 2
        round_no = 1
        # recursive halving reduce-scatter: shrink [lo, hi) each round
        while distance >= 1:
            group = newrank // (2 * distance) * (2 * distance)
            in_low_half = (newrank - group) < distance
            mid = lo + (hi - lo) // 2
            partner_new = newrank + distance if in_low_half else newrank - distance
            partner = _real_rank(partner_new, rem)
            if in_low_half:
                send_slice, keep = work[mid:hi], (lo, mid)
            else:
                send_slice, keep = work[lo:mid], (mid, hi)
            incoming = comm.sendrecv(send_slice, partner, base + round_no)
            lo, hi = keep
            comm.compute(work[lo:hi].nbytes * 2, "reduce")
            op.combine(work[lo:hi], incoming, out=work[lo:hi])
            distance //= 2
            round_no += 1
        # allgather by recursive doubling: grow [lo, hi) back to [0, n)
        distance = 1
        while distance < pof2:
            group = newrank // (2 * distance) * (2 * distance)
            in_low_half = (newrank - group) < distance
            partner_new = newrank + distance if in_low_half else newrank - distance
            partner = _real_rank(partner_new, rem)
            incoming = comm.sendrecv(work[lo:hi], partner, base + round_no)
            if in_low_half:
                work[hi: hi + incoming.shape[0]] = incoming
                hi += incoming.shape[0]
            else:
                work[lo - incoming.shape[0]: lo] = incoming
                lo -= incoming.shape[0]
            distance *= 2
            round_no += 1
        result = work
    final = _fold_epilogue(comm, result if result is not None else vec, newrank, rem, base)
    return final


DENSE_ALGORITHMS = {
    "dense_rec_dbl": allreduce_recursive_doubling,
    "dense_ring": allreduce_ring,
    "dense_rabenseifner": allreduce_rabenseifner,
}
