"""Dynamic sparse allreduce: DSAR_Split_allgather (paper §5.3.3, §6).

When the reduced result ``K`` exceeds the sparse-efficiency threshold
``delta``, no sparse representation can win (Lemma 5.2: bandwidth is lower
bounded by ``delta * beta_d``, at best a ``1/(2 kappa)`` fraction of a fully
dense allreduce). DSAR therefore:

1. runs the same *split* phase as SSAR (data still sparse on the wire),
2. **switches representation**: each rank densifies its reduced partition,
3. allgathers the dense partitions — optionally *quantizing* each partition
   first (QSGD, §6), which is exactly where the paper applies low precision:
   "we employ the low-precision data representation only in the second part
   of the DSAR_Split_allgather algorithm, where the data becomes dense".

The result is a dense stream on every rank (header flag = dense).
"""

from __future__ import annotations

import numpy as np

from ..quant import QSGDQuantizer, QuantizedBlock
from ..runtime.comm import Communicator
from ..streams import MergeScratch, SparseStream
from ..streams.ops import SUM, ReduceOp
from .allgather import allgather_blocks
from .dense import partition_bounds
from .sparse import _ensure_sparse, split_phase

__all__ = ["dsar_split_allgather"]


def dsar_split_allgather(
    comm: Communicator,
    stream: SparseStream,
    quantizer: QSGDQuantizer | None = None,
    op: ReduceOp = SUM,
    bounds: np.ndarray | None = None,
) -> SparseStream:
    """DSAR_Split_allgather, optionally with a quantized dense stage.

    Parameters
    ----------
    comm:
        The communicator (all ranks call collectives in the same order).
    stream:
        This rank's sparse contribution.
    quantizer:
        When given, each rank quantizes its reduced dense partition before
        the allgather and every rank dequantizes all partitions after it.
        Each partition is quantized exactly once (by its owner), so the
        stochastic-rounding noise is applied once per entry.
    bounds:
        Override of the balanced dimension partition (``P + 1`` monotone
        offsets). Chunked callers use it to keep coordinate ownership —
        and therefore densify/merge association — identical to a
        full-dimension run (see
        :func:`~repro.collectives.sparse.ssar_split_allgather`).

    Returns
    -------
    SparseStream
        The dense-representation sum, identical on all ranks up to the
        (unbiased) quantization noise of each owner rank.
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        # the single rank owns the single partition: it must still densify
        # *and* quantize it exactly once, so the P=1 result follows the
        # same distribution as every P>1 run (where each partition is
        # quantized once by its owner)
        block = stream.to_dense(fill=op.neutral)
        comm.compute(block.nbytes, "densify")
        if quantizer is not None:
            qblock = quantizer.quantize(block)
            comm.compute(block.nbytes, "quantize")
            block = quantizer.dequantize(qblock).astype(stream.value_dtype)
            comm.compute(block.nbytes, "dequantize")
        return SparseStream(
            stream.dimension, dense=block, value_dtype=stream.value_dtype, copy=False
        )
    base = comm.next_collective_tag()
    if bounds is None:
        bounds = partition_bounds(stream.dimension, comm.size)
    reduced = split_phase(comm, stream, bounds, base, op, MergeScratch())

    # representation switch: this partition is now treated as dense
    lo, hi = int(bounds[comm.rank]), int(bounds[comm.rank + 1])
    block = np.full(hi - lo, op.neutral, dtype=stream.value_dtype)
    if reduced.nnz:
        block[reduced.indices.astype(np.int64) - lo] = reduced.values
    comm.compute(block.nbytes, "densify")

    comm.mark("allgather")
    if quantizer is None:
        blocks = allgather_blocks(comm, block, base + 1)
        dense = np.concatenate(blocks)
    else:
        qblock = quantizer.quantize(block)
        comm.compute(block.nbytes, "quantize")
        qblocks: list[QuantizedBlock] = allgather_blocks(comm, qblock, base + 1)
        parts = [quantizer.dequantize(qb) for qb in qblocks]
        comm.compute(sum(p.nbytes for p in parts), "dequantize")
        dense = np.concatenate(parts).astype(stream.value_dtype)

    return SparseStream(stream.dimension, dense=dense, value_dtype=stream.value_dtype, copy=False)
