"""Static sparse allreduce algorithms (paper §5.3.1–5.3.2).

*Static* (SSAR) means the reduced result is expected to stay below the
sparse-efficiency threshold ``delta``, so every stage works on index/value
pairs:

* :func:`ssar_recursive_double` — the small-data algorithm (Fig. 2):
  log2(P) rounds of pairwise exchange-and-merge; latency optimal
  (``log2(P) alpha``), bandwidth between ``log2(P) k beta_s`` (full overlap)
  and ``(P-1) k beta_s`` (no overlap).
* :func:`ssar_split_allgather` — the large-data algorithm: a *split* phase
  partitioning the dimension across ranks via direct sends (latency
  ``(P-1) alpha``, mitigated with non-blocking sends), followed by a sparse
  allgather of the reduced partitions.
* :func:`ssar_ring` — the sparse counterpart of the ring allreduce used as
  a comparison point in Fig. 3.

None of the algorithms assumes knowledge of the input distribution; the
representation switch to dense (for DSAR instances) happens automatically
inside stream summation if fill-in exceeds ``delta``.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator
from ..streams import SparseStream, add_streams_, concat_disjoint, reduction_work_bytes
from ..streams.ops import SUM, ReduceOp
from ..streams.summation import MergeScratch, merge_sparse_pairs
from .allgather import allgather_blocks
from .dense import partition_bounds

__all__ = [
    "ssar_recursive_double",
    "ssar_split_allgather",
    "ssar_ring",
    "split_phase",
    "slice_stream",
]


def slice_stream(stream: SparseStream, lo: int, hi: int) -> SparseStream:
    """Restriction of a sparse stream to global index range ``[lo, hi)``.

    Indices stay global, so partition slices remain disjoint and can be
    re-assembled by concatenation. The returned stream holds zero-copy
    *views* of the input's arrays (safe: every consumer either serializes
    them onto the wire or merges them into fresh arrays) — slicing a
    stream into P partitions allocates nothing.
    """
    if stream.is_dense:
        raise ValueError("slice_stream expects a sparse stream")
    idx = stream.indices
    start = int(np.searchsorted(idx, lo, side="left"))
    stop = int(np.searchsorted(idx, hi, side="left"))
    return SparseStream(
        stream.dimension,
        indices=idx[start:stop],
        values=stream.values[start:stop],
        value_dtype=stream.value_dtype,
        copy=False,
    )


def _ensure_sparse(stream: SparseStream) -> SparseStream:
    """Sparse algorithms start from the pair representation."""
    if stream.is_dense:
        return stream.copy().sparsify()
    return stream


def ssar_recursive_double(
    comm: Communicator, stream: SparseStream, op: ReduceOp = SUM
) -> SparseStream:
    """SSAR_Recursive_double: pairwise exchange + sparse merge, log2(P) rounds.

    Works for any P via the fold-in/fold-out relaxation of App. A. The
    result (identical on every rank) may come back dense if fill-in crossed
    ``delta`` — the stream header records which.
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        return stream.copy()
    base = comm.next_collective_tag()
    comm.mark("ssar_rec_dbl")

    pof2 = 1
    while pof2 * 2 <= comm.size:
        pof2 *= 2
    rem = comm.size - pof2

    acc = stream.copy()
    scratch = MergeScratch()  # one merge workspace across all rounds
    newrank = comm.rank
    if rem:
        if comm.rank < 2 * rem:
            if comm.rank % 2 == 0:
                comm.send(acc, comm.rank + 1, base)
                result = comm.recv(comm.rank + 1, base + 63)
                return result
            incoming = comm.recv(comm.rank - 1, base)
            comm.compute(reduction_work_bytes(acc, incoming), "reduce")
            add_streams_(acc, incoming, op, scratch=scratch, own_other=True)
            newrank = comm.rank // 2
        else:
            newrank = comm.rank - rem

    distance = 1
    round_no = 1
    while distance < pof2:
        partner_new = newrank ^ distance
        partner = partner_new * 2 + 1 if partner_new < rem else partner_new + rem
        incoming = comm.sendrecv(acc, partner, base + round_no)
        comm.compute(reduction_work_bytes(acc, incoming), "reduce")
        # the received stream is ours alone (freshly decoded / copied on
        # send), so the reduction may adopt its arrays outright
        add_streams_(acc, incoming, op, scratch=scratch, own_other=True)
        distance *= 2
        round_no += 1

    if rem and comm.rank < 2 * rem and comm.rank % 2 == 1:
        comm.send(acc, comm.rank - 1, base + 63)
    return acc


def split_phase(
    comm: Communicator,
    stream: SparseStream,
    bounds: np.ndarray,
    tag: int,
    op: ReduceOp = SUM,
    scratch: MergeScratch | None = None,
) -> SparseStream:
    """The split (reduce-scatter-by-range) phase shared by SSAR/DSAR.

    Each rank slices its input by the dimension partition and sends slice
    ``j`` directly to rank ``j`` with non-blocking sends, then reduces the
    P-1 received slices (plus its own) for its partition. Latency
    ``(P-1) alpha``; bandwidth between 0 and ``k beta_s`` (§5.3.2).

    Returns this rank's reduced partition (global indices, sparse).
    """
    P = comm.size
    comm.mark("split")
    if scratch is None:
        scratch = MergeScratch()
    requests = []
    for offset in range(1, P):
        dest = (comm.rank + offset) % P
        piece = slice_stream(stream, int(bounds[dest]), int(bounds[dest + 1]))
        requests.append(comm.isend(piece, dest, tag))

    own = slice_stream(stream, int(bounds[comm.rank]), int(bounds[comm.rank + 1]))
    # the fold starts from owned copies, so every later merge (incoming
    # pieces are owned too) can run zero-copy on its empty-side fast path
    idx, val = own.indices.copy(), own.values.copy()
    for offset in range(1, P):
        src = (comm.rank - offset) % P
        piece: SparseStream = comm.recv(src, tag)
        comm.compute((idx.size + piece.nnz) * (4 + own.value_dtype.itemsize) * 2, "reduce")
        idx, val = merge_sparse_pairs(
            idx, val, piece.indices, piece.values, op, copy=False, scratch=scratch
        )
    for req in requests:
        req.wait()
    return SparseStream(
        stream.dimension, indices=idx, values=val, value_dtype=stream.value_dtype, copy=False
    )


def ssar_split_allgather(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    bounds: np.ndarray | None = None,
) -> SparseStream:
    """SSAR_Split_allgather: split phase + sparse allgather (§5.3.2).

    Latency ``L2(P) = (P-1) alpha + log2(P) alpha``; bandwidth between
    ``2 (P-1)/P k beta_s`` and ``P k beta_s`` depending on overlap.

    ``bounds`` overrides the balanced dimension partition (``P + 1``
    monotone offsets, rank ``j`` owning ``[bounds[j], bounds[j+1])``).
    Chunked callers use it to preserve coordinate *ownership* — which rank
    merges each coordinate, and therefore the float association — when a
    collective runs on a restriction of the full dimension.
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        return stream.copy()
    base = comm.next_collective_tag()
    if bounds is None:
        bounds = partition_bounds(stream.dimension, comm.size)
    reduced = split_phase(comm, stream, bounds, base, op, MergeScratch())
    comm.mark("allgather")
    pieces = allgather_blocks(comm, reduced, base + 1)
    comm.compute(
        sum(p.nnz for p in pieces) * (4 + stream.value_dtype.itemsize), "concat"
    )
    return concat_disjoint(pieces, stream.dimension)


def ssar_ring(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    bounds: np.ndarray | None = None,
) -> SparseStream:
    """Sparse ring allreduce: ring reduce-scatter + ring allgather on slices.

    The "sparse counterpart" of the ring-based dense allreduce compared in
    the Fig. 3 micro-benchmarks. Bandwidth-efficient per stage but pays
    ``2 (P-1) alpha`` latency. ``bounds`` overrides the balanced dimension
    partition (see :func:`ssar_split_allgather`).
    """
    stream = _ensure_sparse(stream)
    P = comm.size
    if P == 1:
        return stream.copy()
    base = comm.next_collective_tag()
    comm.mark("ssar_ring")
    if bounds is None:
        bounds = partition_bounds(stream.dimension, P)
    slices = [
        slice_stream(stream, int(bounds[i]), int(bounds[i + 1])) for i in range(P)
    ]
    right = (comm.rank + 1) % P
    left = (comm.rank - 1) % P

    scratch = MergeScratch()  # one merge workspace across all ring steps
    for step in range(P - 1):
        send_block = (comm.rank - step) % P
        recv_block = (comm.rank - step - 1) % P
        req = comm.isend(slices[send_block], right, base)
        incoming: SparseStream = comm.recv(left, base)
        req.wait()
        acc = slices[recv_block]
        comm.compute(reduction_work_bytes(acc, incoming), "reduce")
        # copy=False: the merged block is never mutated in place, only
        # re-sliced/concatenated, so view-aliasing on empty sides is safe
        idx, val = merge_sparse_pairs(
            acc.indices, acc.values, incoming.indices, incoming.values, op,
            copy=False, scratch=scratch,
        )
        slices[recv_block] = SparseStream(
            stream.dimension, indices=idx, values=val,
            value_dtype=stream.value_dtype, copy=False,
        )

    for step in range(P - 1):
        send_block = (comm.rank - step + 1) % P
        recv_block = (comm.rank - step) % P
        req = comm.isend(slices[send_block], right, base + 1)
        slices[recv_block] = comm.recv(left, base + 1)
        req.wait()

    comm.compute(sum(s.nnz for s in slices) * (4 + stream.value_dtype.itemsize), "concat")
    return concat_disjoint(slices, stream.dimension)
