"""Topology-aware hierarchical allreduce (SSAR_Hierarchical + DSAR_Hier).

SparCML's large-scale results (§6) come from clusters whose intra-node
links are an order of magnitude faster than the network between nodes.
:func:`ssar_hierarchical` exploits that split the way SparDL and
SpComm3D's communicator-splitting designs do — reduce *locally first* so
only the merged sparse union crosses the slow tier:

1. **intra-node reduce**: every host's ranks merge their streams onto the
   host *leader* (lowest rank on the host) along a binomial tree — each
   contribution crosses only the fast intra-node tier, once;
2. **inter-node allreduce**: the leaders — one per host — run an ordinary
   flat SSAR algorithm among themselves on a leader sub-communicator, so
   only ``nnodes`` merged unions travel on the slow tier instead of ``P``
   raw streams;
3. **intra-node broadcast**: each leader broadcasts the reduced result
   back down its host's binomial tree.

With Appendix B's uniform fill-in model, the stream a leader carries
across the slow tier has expected size ``E[K_local] = N (1 - (1-k/N)^m)``
for ``m`` ranks per host — already the merged union, so overlapping
supports inside a host are paid for exactly once inter-node (see
:func:`repro.analysis.density.expected_two_tier_sizes`).

The rank groups come from the communicator's
:class:`~repro.runtime.topology.Topology` (``comm.topology`` — derived
from the socket rendezvous, injected via ``run_ranks(..., topology=...)``,
or ``None`` = flat). On a flat topology the algorithm degenerates to
binomial reduce + broadcast, which is still a valid allreduce.

Determinism note: every stage merges with the commutative coordinate-wise
``op``, so results are identical on every backend bit for bit. They also
match :func:`~repro.collectives.sparse.ssar_recursive_double` *bit for
bit* whenever the host groups are aligned power-of-two blocks (e.g. flat
worlds or uniform ``2x2``/``2x4``/``4x2`` topologies), because both then
apply the same floating-point association; on other shapes the results
agree up to float rounding.

:func:`dsar_hierarchical` is the *dense-stage* counterpart for dynamic
instances (expected reduced size past the sparse-efficiency threshold
``delta``): the same intra-host reduce onto leaders, then the leaders run
:func:`~repro.collectives.dsar.dsar_split_allgather` — including its
representation switch and optional quantized allgather — among
themselves, and each leader broadcasts the dense result back down its
host. Only ``nnodes`` dense partitions ever cross the slow tier instead
of ``P``, and each partition is still quantized exactly once by its
owning leader.
"""

from __future__ import annotations

import numpy as np

from ..config import INDEX_DTYPE
from ..quant import QSGDQuantizer
from ..runtime.comm import CompletedHandle, Communicator
from ..runtime.nonblocking import i_collective
from ..runtime.topology import Topology, check_topology_size, normalize_topology
from ..streams import SparseStream, add_streams_, reduction_work_bytes
from ..streams.ops import SUM, ReduceOp
from ..streams.summation import MergeScratch
from .dense import partition_bounds
from .dsar import dsar_split_allgather
from .sparse import (
    _ensure_sparse,
    slice_stream,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)

__all__ = [
    "ssar_hierarchical",
    "dsar_hierarchical",
    "tree_reduce",
    "INNER_ALGORITHMS",
]

#: flat SSAR kernels eligible as the inter-node (leader) stage.
INNER_ALGORITHMS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
}


def tree_reduce(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    scratch: MergeScratch | None = None,
) -> SparseStream:
    """Binomial-tree sparse reduce onto rank 0 of ``comm``.

    Rank 0 returns the merged union of every rank's stream; other ranks
    return their partial accumulator (callers broadcast the real result
    back). The merge order matches recursive doubling's association on
    power-of-two worlds, which is what makes the hierarchical composition
    bit-compatible with ``ssar_rec_dbl`` on aligned topologies.
    """
    acc = stream.copy()
    if comm.size == 1:
        return acc
    if scratch is None:
        scratch = MergeScratch()
    base = comm.next_collective_tag()
    mask = 1
    while mask < comm.size:
        if comm.rank & mask:
            comm.send(acc, comm.rank - mask, base)
            break
        src = comm.rank + mask
        if src < comm.size:
            incoming = comm.recv(src, base)
            comm.compute(reduction_work_bytes(acc, incoming), "reduce")
            # the received stream is ours alone (freshly decoded / copied
            # on send), so the reduction may adopt its arrays outright
            add_streams_(acc, incoming, op, scratch=scratch, own_other=True)
        mask <<= 1
    return acc


def _resolve_topology(
    comm: Communicator, topology: "Topology | str | int | None"
) -> Topology:
    """The rank -> host map a hierarchical collective runs under.

    Explicit argument first (validated against ``comm.size`` with the
    launcher-uniform error), then ``comm.topology``, then a flat world.
    """
    topo = normalize_topology(topology, comm.size)
    if topo is None:
        topo = comm.topology if comm.topology is not None else Topology.flat(comm.size)
    return check_topology_size(topo, comm.size)


def _check_chunks(chunks: int) -> int:
    if not isinstance(chunks, (int, np.integer)) or isinstance(chunks, bool) or chunks < 1:
        raise ValueError(f"chunks must be a positive int, got {chunks!r}")
    return int(chunks)


def _rebase_chunk(stream: SparseStream, lo: int, hi: int) -> SparseStream:
    """Restrict ``stream`` to ``[lo, hi)`` and rebase it to dimension
    ``hi - lo`` (indices shifted by ``-lo``) so the chunk travels and
    densifies at chunk width, not the full dimension."""
    piece = slice_stream(stream, lo, hi)
    return SparseStream(
        hi - lo,
        indices=(piece.indices - np.uint32(lo)).astype(INDEX_DTYPE, copy=False),
        values=piece.values,
        value_dtype=stream.value_dtype,
        copy=False,
    )


def _clip_bounds(global_bounds: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Rank-ownership bounds of the chunk ``[lo, hi)``, rebased to it.

    Clipping the *full-dimension* partition into the chunk keeps every
    global coordinate owned by the same rank as in an unchunked run, which
    pins the merge order — and therefore the floating-point association —
    of the split-based inner kernels. This is what makes the chunked
    hierarchy bit-identical to the unchunked one.
    """
    return np.clip(global_bounds, lo, hi) - lo


def _reassemble_chunks(
    parts: "list[SparseStream]",
    bounds: np.ndarray,
    dimension: int,
    op: ReduceOp,
    value_dtype,
) -> SparseStream:
    """Concatenate per-chunk allreduce results back to the full dimension.

    Chunk results are disjoint restrictions of the final vector, so the
    "sum" is pure concatenation (§5.1 case 4). The final representation
    follows the usual fill-in rule on the *full* dimension: dense when any
    chunk already switched or the stored union exceeds ``delta``.
    """
    if any(p.is_dense for p in parts):
        out = np.empty(dimension, dtype=value_dtype)
        for k, p in enumerate(parts):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if p.is_dense:
                out[lo:hi] = p.dense_payload
            else:
                seg = np.full(hi - lo, op.neutral, dtype=value_dtype)
                if p.nnz:
                    seg[p.indices.astype(np.int64)] = p.values
                out[lo:hi] = seg
        return SparseStream(dimension, dense=out, value_dtype=value_dtype, copy=False)
    idx = np.concatenate(
        [p.indices.astype(np.int64) + int(bounds[k]) for k, p in enumerate(parts)]
    ).astype(INDEX_DTYPE, copy=False)
    val = (
        np.concatenate([p.values for p in parts])
        if idx.size
        else np.empty(0, dtype=value_dtype)
    )
    out = SparseStream(dimension, indices=idx, values=val, value_dtype=value_dtype, copy=False)
    if out.nnz > out.delta:
        out.densify(fill=op.neutral)
    return out


def _chunked_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp,
    topo: Topology,
    chunks: int,
    leader_stage,
    leader_runs_alone: bool,
    mark: str,
) -> SparseStream:
    """The depth-1 software pipeline both hierarchical algorithms share.

    Per chunk ``k``: the intra-host binomial reduce runs on the calling
    thread, the leaders' inter-node stage is *launched* through
    :func:`~repro.runtime.nonblocking.i_collective`, and only then is
    chunk ``k-1`` joined and broadcast — so the slow-tier exchange of one
    chunk overlaps the fast-tier reduce of the next. Handles are joined in
    chunk order (the MPI non-blocking-collective contract), and the
    concurrent traffic pairs are disjoint by construction: the background
    thread only talks leader-to-leader while the calling thread only talks
    intra-host.

    ``leader_stage(leader_comm, chunk_acc, lo, hi)`` is the per-chunk
    inter-node kernel; ``leader_runs_alone`` mirrors the unchunked guards
    (DSAR runs its dense stage even in a one-leader world to quantize,
    SSAR skips it).
    """
    comm.mark(mark)
    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)
    launch = leader_comm is not None and (leader_comm.size > 1 or leader_runs_alone)

    bounds = partition_bounds(stream.dimension, chunks)
    scratch = MergeScratch()
    handles: list = []
    parts: list[SparseStream | None] = [None] * chunks

    def join(k: int) -> None:
        acc = handles[k].wait()
        if local.size > 1:
            comm.mark("hier_bcast")
            acc = local.bcast(acc, root=0)
        parts[k] = acc

    for k in range(chunks):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        chunk = _rebase_chunk(stream, lo, hi)
        comm.mark("hier_local_reduce")
        acc = tree_reduce(local, chunk, op, scratch)
        if launch:
            comm.mark("hier_leaders")
            handles.append(i_collective(leader_comm, leader_stage, acc, lo, hi))
        else:
            handles.append(CompletedHandle(acc))
        if k:
            join(k - 1)
    join(chunks - 1)
    return _reassemble_chunks(parts, bounds, stream.dimension, op, stream.value_dtype)


def ssar_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    topology: "Topology | str | int | None" = None,
    inner: str = "ssar_rec_dbl",
    chunks: int = 1,
) -> SparseStream:
    """SSAR_Hierarchical: intra-node reduce, leader allreduce, broadcast.

    Parameters
    ----------
    comm:
        This rank's communicator. All ranks must agree on ``topology``,
        ``inner`` and ``chunks``.
    stream:
        The local contribution (sparse or dense representation).
    op:
        The coordinate-wise reduction (§5.2).
    topology:
        Rank -> host map; defaults to ``comm.topology`` and falls back to
        a flat single-host world. Accepts everything
        :func:`~repro.runtime.topology.normalize_topology` does.
    inner:
        The flat SSAR kernel the per-host leaders run among themselves
        (one of :data:`INNER_ALGORITHMS`). A *name* rather than a
        callable so all ranks trivially agree; the default recursive
        doubling is latency-optimal for the (small) leader world and
        keeps the bit-compatibility property above.
    chunks:
        Split the dimension into this many coordinate ranges and pipeline
        them (§7's overlap-first schedule): the leaders' inter-node
        exchange of chunk ``k`` runs on a background thread while the
        calling thread reduces chunk ``k+1`` intra-host. The result is
        **bit-identical** to ``chunks=1`` on every backend: chunking only
        restricts each stage to a coordinate range, it never changes
        which rank combines a coordinate or in what order (the inner
        kernels receive clipped full-dimension partition bounds so
        coordinate ownership is preserved).
    """
    stream = _ensure_sparse(stream)
    chunks = _check_chunks(chunks)
    if comm.size == 1:
        return stream.copy()
    if inner not in INNER_ALGORITHMS:
        raise ValueError(
            f"unknown inner algorithm {inner!r}; choose from {sorted(INNER_ALGORITHMS)}"
        )
    topo = _resolve_topology(comm, topology)
    if chunks > 1:
        inner_bounds = partition_bounds(stream.dimension, len(topo.leaders))
        reduce_op = op

        def leader_stage(leader_comm, chunk_acc, lo, hi):
            if inner == "ssar_rec_dbl":
                return ssar_recursive_double(leader_comm, chunk_acc, reduce_op)
            return INNER_ALGORITHMS[inner](
                leader_comm, chunk_acc, reduce_op, bounds=_clip_bounds(inner_bounds, lo, hi)
            )

        return _chunked_hierarchical(
            comm, stream, op, topo, chunks, leader_stage,
            leader_runs_alone=False, mark="ssar_hier",
        )
    comm.mark("ssar_hier")

    # every rank takes one slot in each of the two subgroup call sites:
    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)

    scratch = MergeScratch()
    # phase 1: merge this host's streams onto its leader (fast tier only)
    comm.mark("hier_local_reduce")
    acc = tree_reduce(local, stream, op, scratch)

    # phase 2: only the per-host merged unions cross the slow tier
    if leader_comm is not None and leader_comm.size > 1:
        comm.mark("hier_leaders")
        acc = INNER_ALGORITHMS[inner](leader_comm, acc, op)

    # phase 3: fan the reduced result back out inside each host
    if local.size > 1:
        comm.mark("hier_bcast")
        acc = local.bcast(acc, root=0)
    return acc


def dsar_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    quantizer: QSGDQuantizer | None = None,
    op: ReduceOp = SUM,
    topology: "Topology | str | int | None" = None,
    chunks: int = 1,
) -> SparseStream:
    """DSAR_Hierarchical: the dense-stage hierarchy for dynamic instances.

    1. **intra-node reduce**: each host merges its streams onto the host
       leader along the same binomial tree as :func:`ssar_hierarchical`
       (sparse merges, fast tier only);
    2. **leader DSAR**: the leaders run
       :func:`~repro.collectives.dsar.dsar_split_allgather` among
       themselves — split phase, representation switch to dense, and the
       (optionally quantized) dense allgather — so only ``nnodes`` dense
       partitions cross the slow tier instead of ``P``, and each
       partition is quantized exactly once by its owning leader;
    3. **intra-node broadcast**: each leader fans the dense result back
       down its host's binomial tree.

    Every leader concatenates the identical (de)quantized partitions, so
    the result is bit-identical on all ranks; it differs from the flat
    :func:`dsar_split_allgather` only by float association (different
    partition bounds) and by which rank's quantizer touched each entry.

    Parameters mirror :func:`dsar_split_allgather` plus ``topology``
    (defaults to ``comm.topology``, falling back to a flat world) and
    ``chunks`` (the pipelined schedule of :func:`ssar_hierarchical`).
    With the default ``quantizer=None`` the chunked result is
    bit-identical to the unchunked one on every backend; *with* a
    quantizer the chunked result is equal only in distribution — QSGD
    bucket boundaries and stochastic-rounding draws shift with the chunk
    offsets — so chunking a quantized run trades bit-reproducibility
    against overlap.
    """
    stream = _ensure_sparse(stream)
    chunks = _check_chunks(chunks)
    if comm.size == 1:
        # the flat kernel's single-rank path already densifies and
        # quantizes the one partition exactly once
        return dsar_split_allgather(comm, stream, quantizer=quantizer, op=op)
    topo = _resolve_topology(comm, topology)
    if chunks > 1:
        leader_bounds = partition_bounds(stream.dimension, len(topo.leaders))
        reduce_op, quant = op, quantizer

        def leader_stage(leader_comm, chunk_acc, lo, hi):
            return dsar_split_allgather(
                leader_comm, chunk_acc, quantizer=quant, op=reduce_op,
                bounds=_clip_bounds(leader_bounds, lo, hi),
            )

        return _chunked_hierarchical(
            comm, stream, op, topo, chunks, leader_stage,
            leader_runs_alone=True, mark="dsar_hier",
        )
    comm.mark("dsar_hier")

    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)

    scratch = MergeScratch()
    # phase 1: merge this host's streams onto its leader (fast tier only)
    comm.mark("hier_local_reduce")
    acc = tree_reduce(local, stream, op, scratch)

    # phase 2: leaders switch representation and allgather dense blocks;
    # only nnodes partitions (quantized at most once each) go inter-node
    if leader_comm is not None:
        comm.mark("hier_leaders")
        acc = dsar_split_allgather(leader_comm, acc, quantizer=quantizer, op=op)

    # phase 3: fan the dense result back out inside each host
    if local.size > 1:
        comm.mark("hier_bcast")
        acc = local.bcast(acc, root=0)
    return acc
