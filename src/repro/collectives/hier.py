"""Topology-aware hierarchical sparse allreduce (SSAR_Hierarchical).

SparCML's large-scale results (§6) come from clusters whose intra-node
links are an order of magnitude faster than the network between nodes.
:func:`ssar_hierarchical` exploits that split the way SparDL and
SpComm3D's communicator-splitting designs do — reduce *locally first* so
only the merged sparse union crosses the slow tier:

1. **intra-node reduce**: every host's ranks merge their streams onto the
   host *leader* (lowest rank on the host) along a binomial tree — each
   contribution crosses only the fast intra-node tier, once;
2. **inter-node allreduce**: the leaders — one per host — run an ordinary
   flat SSAR algorithm among themselves on a leader sub-communicator, so
   only ``nnodes`` merged unions travel on the slow tier instead of ``P``
   raw streams;
3. **intra-node broadcast**: each leader broadcasts the reduced result
   back down its host's binomial tree.

With Appendix B's uniform fill-in model, the stream a leader carries
across the slow tier has expected size ``E[K_local] = N (1 - (1-k/N)^m)``
for ``m`` ranks per host — already the merged union, so overlapping
supports inside a host are paid for exactly once inter-node (see
:func:`repro.analysis.density.expected_two_tier_sizes`).

The rank groups come from the communicator's
:class:`~repro.runtime.topology.Topology` (``comm.topology`` — derived
from the socket rendezvous, injected via ``run_ranks(..., topology=...)``,
or ``None`` = flat). On a flat topology the algorithm degenerates to
binomial reduce + broadcast, which is still a valid allreduce.

Determinism note: every stage merges with the commutative coordinate-wise
``op``, so results are identical on every backend bit for bit. They also
match :func:`~repro.collectives.sparse.ssar_recursive_double` *bit for
bit* whenever the host groups are aligned power-of-two blocks (e.g. flat
worlds or uniform ``2x2``/``2x4``/``4x2`` topologies), because both then
apply the same floating-point association; on other shapes the results
agree up to float rounding.
"""

from __future__ import annotations

from ..runtime.comm import Communicator
from ..runtime.topology import Topology, normalize_topology
from ..streams import SparseStream, add_streams_, reduction_work_bytes
from ..streams.ops import SUM, ReduceOp
from ..streams.summation import MergeScratch
from .sparse import _ensure_sparse, ssar_recursive_double, ssar_ring, ssar_split_allgather

__all__ = ["ssar_hierarchical", "tree_reduce", "INNER_ALGORITHMS"]

#: flat SSAR kernels eligible as the inter-node (leader) stage.
INNER_ALGORITHMS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
}


def tree_reduce(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    scratch: MergeScratch | None = None,
) -> SparseStream:
    """Binomial-tree sparse reduce onto rank 0 of ``comm``.

    Rank 0 returns the merged union of every rank's stream; other ranks
    return their partial accumulator (callers broadcast the real result
    back). The merge order matches recursive doubling's association on
    power-of-two worlds, which is what makes the hierarchical composition
    bit-compatible with ``ssar_rec_dbl`` on aligned topologies.
    """
    acc = stream.copy()
    if comm.size == 1:
        return acc
    if scratch is None:
        scratch = MergeScratch()
    base = comm.next_collective_tag()
    mask = 1
    while mask < comm.size:
        if comm.rank & mask:
            comm.send(acc, comm.rank - mask, base)
            break
        src = comm.rank + mask
        if src < comm.size:
            incoming = comm.recv(src, base)
            comm.compute(reduction_work_bytes(acc, incoming), "reduce")
            # the received stream is ours alone (freshly decoded / copied
            # on send), so the reduction may adopt its arrays outright
            add_streams_(acc, incoming, op, scratch=scratch, own_other=True)
        mask <<= 1
    return acc


def ssar_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    topology: "Topology | str | int | None" = None,
    inner: str = "ssar_rec_dbl",
) -> SparseStream:
    """SSAR_Hierarchical: intra-node reduce, leader allreduce, broadcast.

    Parameters
    ----------
    comm:
        This rank's communicator. All ranks must agree on ``topology``
        and ``inner``.
    stream:
        The local contribution (sparse or dense representation).
    op:
        The coordinate-wise reduction (§5.2).
    topology:
        Rank -> host map; defaults to ``comm.topology`` and falls back to
        a flat single-host world. Accepts everything
        :func:`~repro.runtime.topology.normalize_topology` does.
    inner:
        The flat SSAR kernel the per-host leaders run among themselves
        (one of :data:`INNER_ALGORITHMS`). A *name* rather than a
        callable so all ranks trivially agree; the default recursive
        doubling is latency-optimal for the (small) leader world and
        keeps the bit-compatibility property above.
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        return stream.copy()
    if inner not in INNER_ALGORITHMS:
        raise ValueError(
            f"unknown inner algorithm {inner!r}; choose from {sorted(INNER_ALGORITHMS)}"
        )
    topo = normalize_topology(topology, comm.size)
    if topo is None:
        topo = comm.topology if comm.topology is not None else Topology.flat(comm.size)
    if topo.nranks != comm.size:
        raise ValueError(
            f"topology describes {topo.nranks} ranks but the communicator has {comm.size}"
        )
    comm.mark("ssar_hier")

    # every rank takes one slot in each of the two subgroup call sites:
    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)

    scratch = MergeScratch()
    # phase 1: merge this host's streams onto its leader (fast tier only)
    comm.mark("hier_local_reduce")
    acc = tree_reduce(local, stream, op, scratch)

    # phase 2: only the per-host merged unions cross the slow tier
    if leader_comm is not None and leader_comm.size > 1:
        comm.mark("hier_leaders")
        acc = INNER_ALGORITHMS[inner](leader_comm, acc, op)

    # phase 3: fan the reduced result back out inside each host
    if local.size > 1:
        comm.mark("hier_bcast")
        acc = local.bcast(acc, root=0)
    return acc
