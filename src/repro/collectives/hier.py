"""Topology-aware hierarchical allreduce (SSAR_Hierarchical + DSAR_Hier).

SparCML's large-scale results (§6) come from clusters whose intra-node
links are an order of magnitude faster than the network between nodes.
:func:`ssar_hierarchical` exploits that split the way SparDL and
SpComm3D's communicator-splitting designs do — reduce *locally first* so
only the merged sparse union crosses the slow tier:

1. **intra-node reduce**: every host's ranks merge their streams onto the
   host *leader* (lowest rank on the host) along a binomial tree — each
   contribution crosses only the fast intra-node tier, once;
2. **inter-node allreduce**: the leaders — one per host — run an ordinary
   flat SSAR algorithm among themselves on a leader sub-communicator, so
   only ``nnodes`` merged unions travel on the slow tier instead of ``P``
   raw streams;
3. **intra-node broadcast**: each leader broadcasts the reduced result
   back down its host's binomial tree.

With Appendix B's uniform fill-in model, the stream a leader carries
across the slow tier has expected size ``E[K_local] = N (1 - (1-k/N)^m)``
for ``m`` ranks per host — already the merged union, so overlapping
supports inside a host are paid for exactly once inter-node (see
:func:`repro.analysis.density.expected_two_tier_sizes`).

The rank groups come from the communicator's
:class:`~repro.runtime.topology.Topology` (``comm.topology`` — derived
from the socket rendezvous, injected via ``run_ranks(..., topology=...)``,
or ``None`` = flat). On a flat topology the algorithm degenerates to
binomial reduce + broadcast, which is still a valid allreduce.

Determinism note: every stage merges with the commutative coordinate-wise
``op``, so results are identical on every backend bit for bit. They also
match :func:`~repro.collectives.sparse.ssar_recursive_double` *bit for
bit* whenever the host groups are aligned power-of-two blocks (e.g. flat
worlds or uniform ``2x2``/``2x4``/``4x2`` topologies), because both then
apply the same floating-point association; on other shapes the results
agree up to float rounding.

:func:`dsar_hierarchical` is the *dense-stage* counterpart for dynamic
instances (expected reduced size past the sparse-efficiency threshold
``delta``): the same intra-host reduce onto leaders, then the leaders run
:func:`~repro.collectives.dsar.dsar_split_allgather` — including its
representation switch and optional quantized allgather — among
themselves, and each leader broadcasts the dense result back down its
host. Only ``nnodes`` dense partitions ever cross the slow tier instead
of ``P``, and each partition is still quantized exactly once by its
owning leader.
"""

from __future__ import annotations

from ..quant import QSGDQuantizer
from ..runtime.comm import Communicator
from ..runtime.topology import Topology, check_topology_size, normalize_topology
from ..streams import SparseStream, add_streams_, reduction_work_bytes
from ..streams.ops import SUM, ReduceOp
from ..streams.summation import MergeScratch
from .dsar import dsar_split_allgather
from .sparse import _ensure_sparse, ssar_recursive_double, ssar_ring, ssar_split_allgather

__all__ = [
    "ssar_hierarchical",
    "dsar_hierarchical",
    "tree_reduce",
    "INNER_ALGORITHMS",
]

#: flat SSAR kernels eligible as the inter-node (leader) stage.
INNER_ALGORITHMS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
}


def tree_reduce(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    scratch: MergeScratch | None = None,
) -> SparseStream:
    """Binomial-tree sparse reduce onto rank 0 of ``comm``.

    Rank 0 returns the merged union of every rank's stream; other ranks
    return their partial accumulator (callers broadcast the real result
    back). The merge order matches recursive doubling's association on
    power-of-two worlds, which is what makes the hierarchical composition
    bit-compatible with ``ssar_rec_dbl`` on aligned topologies.
    """
    acc = stream.copy()
    if comm.size == 1:
        return acc
    if scratch is None:
        scratch = MergeScratch()
    base = comm.next_collective_tag()
    mask = 1
    while mask < comm.size:
        if comm.rank & mask:
            comm.send(acc, comm.rank - mask, base)
            break
        src = comm.rank + mask
        if src < comm.size:
            incoming = comm.recv(src, base)
            comm.compute(reduction_work_bytes(acc, incoming), "reduce")
            # the received stream is ours alone (freshly decoded / copied
            # on send), so the reduction may adopt its arrays outright
            add_streams_(acc, incoming, op, scratch=scratch, own_other=True)
        mask <<= 1
    return acc


def _resolve_topology(
    comm: Communicator, topology: "Topology | str | int | None"
) -> Topology:
    """The rank -> host map a hierarchical collective runs under.

    Explicit argument first (validated against ``comm.size`` with the
    launcher-uniform error), then ``comm.topology``, then a flat world.
    """
    topo = normalize_topology(topology, comm.size)
    if topo is None:
        topo = comm.topology if comm.topology is not None else Topology.flat(comm.size)
    return check_topology_size(topo, comm.size)


def ssar_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    op: ReduceOp = SUM,
    topology: "Topology | str | int | None" = None,
    inner: str = "ssar_rec_dbl",
) -> SparseStream:
    """SSAR_Hierarchical: intra-node reduce, leader allreduce, broadcast.

    Parameters
    ----------
    comm:
        This rank's communicator. All ranks must agree on ``topology``
        and ``inner``.
    stream:
        The local contribution (sparse or dense representation).
    op:
        The coordinate-wise reduction (§5.2).
    topology:
        Rank -> host map; defaults to ``comm.topology`` and falls back to
        a flat single-host world. Accepts everything
        :func:`~repro.runtime.topology.normalize_topology` does.
    inner:
        The flat SSAR kernel the per-host leaders run among themselves
        (one of :data:`INNER_ALGORITHMS`). A *name* rather than a
        callable so all ranks trivially agree; the default recursive
        doubling is latency-optimal for the (small) leader world and
        keeps the bit-compatibility property above.
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        return stream.copy()
    if inner not in INNER_ALGORITHMS:
        raise ValueError(
            f"unknown inner algorithm {inner!r}; choose from {sorted(INNER_ALGORITHMS)}"
        )
    topo = _resolve_topology(comm, topology)
    comm.mark("ssar_hier")

    # every rank takes one slot in each of the two subgroup call sites:
    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)

    scratch = MergeScratch()
    # phase 1: merge this host's streams onto its leader (fast tier only)
    comm.mark("hier_local_reduce")
    acc = tree_reduce(local, stream, op, scratch)

    # phase 2: only the per-host merged unions cross the slow tier
    if leader_comm is not None and leader_comm.size > 1:
        comm.mark("hier_leaders")
        acc = INNER_ALGORITHMS[inner](leader_comm, acc, op)

    # phase 3: fan the reduced result back out inside each host
    if local.size > 1:
        comm.mark("hier_bcast")
        acc = local.bcast(acc, root=0)
    return acc


def dsar_hierarchical(
    comm: Communicator,
    stream: SparseStream,
    quantizer: QSGDQuantizer | None = None,
    op: ReduceOp = SUM,
    topology: "Topology | str | int | None" = None,
) -> SparseStream:
    """DSAR_Hierarchical: the dense-stage hierarchy for dynamic instances.

    1. **intra-node reduce**: each host merges its streams onto the host
       leader along the same binomial tree as :func:`ssar_hierarchical`
       (sparse merges, fast tier only);
    2. **leader DSAR**: the leaders run
       :func:`~repro.collectives.dsar.dsar_split_allgather` among
       themselves — split phase, representation switch to dense, and the
       (optionally quantized) dense allgather — so only ``nnodes`` dense
       partitions cross the slow tier instead of ``P``, and each
       partition is quantized exactly once by its owning leader;
    3. **intra-node broadcast**: each leader fans the dense result back
       down its host's binomial tree.

    Every leader concatenates the identical (de)quantized partitions, so
    the result is bit-identical on all ranks; it differs from the flat
    :func:`dsar_split_allgather` only by float association (different
    partition bounds) and by which rank's quantizer touched each entry.

    Parameters mirror :func:`dsar_split_allgather` plus ``topology``
    (defaults to ``comm.topology``, falling back to a flat world).
    """
    stream = _ensure_sparse(stream)
    if comm.size == 1:
        # the flat kernel's single-rank path already densifies and
        # quantizes the one partition exactly once
        return dsar_split_allgather(comm, stream, quantizer=quantizer, op=op)
    topo = _resolve_topology(comm, topology)
    comm.mark("dsar_hier")

    # host groups are pairwise disjoint, so they may share the first slot
    local = comm.subgroup(topo.group_of(comm.rank))
    leader_comm = comm.subgroup(topo.leaders)

    scratch = MergeScratch()
    # phase 1: merge this host's streams onto its leader (fast tier only)
    comm.mark("hier_local_reduce")
    acc = tree_reduce(local, stream, op, scratch)

    # phase 2: leaders switch representation and allgather dense blocks;
    # only nnodes partitions (quantized at most once each) go inter-node
    if leader_comm is not None:
        comm.mark("hier_leaders")
        acc = dsar_split_allgather(leader_comm, acc, quantizer=quantizer, op=op)

    # phase 3: fan the dense result back out inside each host
    if local.size > 1:
        comm.mark("hier_bcast")
        acc = local.bcast(acc, root=0)
    return acc
