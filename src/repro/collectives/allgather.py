"""Allgather algorithms over arbitrary payload blocks.

The split/allgather family of sparse allreduce algorithms needs an
allgather whose per-rank contribution is an *object* (a sparse partition, a
dense block, or a quantized block) rather than a fixed-size buffer. We
implement the two standard schedules:

* **recursive doubling** — log2(P) rounds, contribution sets merge and
  double each round; used when P is a power of two;
* **ring** — P-1 rounds each forwarding one rank's (growing set of) blocks;
  handles any P and is bandwidth-optimal.

Both return ``blocks[rank] -> payload`` for every rank. The paper's sparse
allgather is the recursive-doubling variant applied to index-disjoint
sparse streams, where "reduction" is pure concatenation (§5.1 case 2).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..runtime.comm import Communicator
from ..streams import SparseStream, concat_disjoint

__all__ = [
    "allgather_blocks",
    "allgather_recursive_doubling",
    "allgather_ring",
    "sparse_allgather",
]


def allgather_recursive_doubling(comm: Communicator, block: Any, tag: int | None = None) -> list[Any]:
    """Recursive-doubling allgather (P must be a power of two)."""
    P = comm.size
    if P & (P - 1):
        raise ValueError(f"recursive doubling allgather needs a power-of-two P, got {P}")
    base = comm.next_collective_tag() if tag is None else tag
    have: dict[int, Any] = {comm.rank: block}
    distance = 1
    round_no = 0
    while distance < P:
        partner = comm.rank ^ distance
        incoming = comm.sendrecv(dict(have), partner, base + round_no)
        have.update(incoming)
        distance *= 2
        round_no += 1
    return [have[r] for r in range(P)]


def allgather_ring(comm: Communicator, block: Any, tag: int | None = None) -> list[Any]:
    """Ring allgather: P-1 rounds forwarding one block per round; any P."""
    P = comm.size
    base = comm.next_collective_tag() if tag is None else tag
    out: list[Any] = [None] * P
    out[comm.rank] = block
    if P == 1:
        return out
    right = (comm.rank + 1) % P
    left = (comm.rank - 1) % P
    for step in range(P - 1):
        send_owner = (comm.rank - step) % P
        recv_owner = (comm.rank - step - 1) % P
        req = comm.isend(out[send_owner], right, base)
        out[recv_owner] = comm.recv(left, base)
        req.wait()
    return out


def allgather_blocks(comm: Communicator, block: Any, tag: int | None = None) -> list[Any]:
    """Dispatch to recursive doubling (power-of-two P) or ring (any P)."""
    if comm.size & (comm.size - 1):
        return allgather_ring(comm, block, tag)
    return allgather_recursive_doubling(comm, block, tag)


def sparse_allgather(comm: Communicator, stream: SparseStream, tag: int | None = None) -> SparseStream:
    """Allgather of index-disjoint sparse streams with concatenation merge.

    Each rank contributes a sparse stream whose support is disjoint from
    every other rank's (e.g. coordinate-descent updates on per-rank
    coordinate blocks, §8.2). The result is their concatenation — no
    arithmetic — available at every rank.
    """
    if stream.is_dense:
        raise ValueError("sparse_allgather expects sparse contributions")
    pieces = allgather_blocks(comm, stream, tag)
    comm.compute(sum(p.nnz for p in pieces) * (stream.value_dtype.itemsize + 4), "concat")
    return concat_disjoint(pieces, stream.dimension)


def assemble_dense(blocks: Sequence[np.ndarray], dimension: int) -> np.ndarray:
    """Concatenate per-partition dense blocks into a full vector."""
    out = np.concatenate(list(blocks))
    if out.shape[0] != dimension:
        raise ValueError(f"assembled {out.shape[0]} entries, expected {dimension}")
    return out
