"""Public entry points for sparse and dense collective operations.

This is the user-facing surface of the communication library — the analog
of SparCML's MPI-like interface ("The SparCML library provides a similar
interface to that of standard MPI calls, with the caveat that the data
representation is assumed to be a sparse stream", §7).
"""

from __future__ import annotations

import numpy as np

from ..quant import QSGDQuantizer
from ..runtime.comm import Communicator
from ..streams import SparseStream
from ..streams.ops import REDUCE_OPS, SUM, ReduceOp
from .allgather import sparse_allgather
from .dense import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
)
from .dsar import dsar_split_allgather
from .selector import choose_algorithm
from .sparse import ssar_recursive_double, ssar_ring, ssar_split_allgather

__all__ = ["sparse_allreduce", "dense_allreduce", "sparse_allgather", "ALGORITHMS"]

ALGORITHMS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
    "dsar_split_ag": dsar_split_allgather,
}

DENSE = {
    "dense_rec_dbl": allreduce_recursive_doubling,
    "dense_ring": allreduce_ring,
    "dense_rabenseifner": allreduce_rabenseifner,
}


def _resolve_op(op: "ReduceOp | str") -> ReduceOp:
    if isinstance(op, ReduceOp):
        return op
    if op in REDUCE_OPS:
        return REDUCE_OPS[op]
    raise ValueError(f"unknown reduction op {op!r}; choose from {sorted(REDUCE_OPS)}")


def sparse_allreduce(
    comm: Communicator,
    stream: SparseStream,
    algorithm: str = "auto",
    quantizer: QSGDQuantizer | None = None,
    op: "ReduceOp | str" = SUM,
) -> SparseStream:
    """Element-wise sum of one sparse stream per rank, result on all ranks.

    Parameters
    ----------
    comm:
        This rank's communicator; all ranks must call with the same
        ``algorithm`` and compatible stream dimensions/dtypes.
    stream:
        The local contribution (sparse or dense representation).
    algorithm:
        ``"auto"`` (selector heuristic of §5.3), or one of
        ``ssar_rec_dbl``, ``ssar_split_ag``, ``ssar_ring``,
        ``dsar_split_ag``.
    quantizer:
        Optional QSGD quantizer applied to the dense stage; only meaningful
        for ``dsar_split_ag`` (ignored with a warning-free no-op otherwise,
        matching the paper: low precision targets the dense case).
    op:
        The coordinate-wise reduction (§5.2): a :class:`ReduceOp` or one of
        ``"sum"``, ``"max"``, ``"min"``, ``"prod"``. Missing sparse entries
        are treated as the operation's neutral element.

    Returns
    -------
    SparseStream
        The sum; representation (sparse/dense) reflects actual fill-in.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(
            stream.dimension,
            comm.size,
            stream.nnz,
            stream.value_dtype.itemsize,
        )
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)} or 'auto'"
        )
    reduce_op = _resolve_op(op)
    if algorithm == "dsar_split_ag":
        return dsar_split_allgather(comm, stream, quantizer=quantizer, op=reduce_op)
    return ALGORITHMS[algorithm](comm, stream, op=reduce_op)


def dense_allreduce(
    comm: Communicator,
    vec: np.ndarray,
    algorithm: str = "dense_rabenseifner",
    op: "ReduceOp | str" = SUM,
) -> np.ndarray:
    """Dense allreduce baseline (the 'MPI' the paper compares against)."""
    if algorithm not in DENSE:
        raise ValueError(f"unknown dense algorithm {algorithm!r}; choose from {sorted(DENSE)}")
    return DENSE[algorithm](comm, vec, op=_resolve_op(op))
