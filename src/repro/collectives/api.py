"""Public entry points for sparse and dense collective operations.

This is the user-facing surface of the communication library — the analog
of SparCML's MPI-like interface ("The SparCML library provides a similar
interface to that of standard MPI calls, with the caveat that the data
representation is assumed to be a sparse stream", §7).
"""

from __future__ import annotations

import numpy as np

from ..costmodel.adaptive import consistent_mean
from ..costmodel.model import CostModel, Instance
from ..quant import QSGDQuantizer
from ..runtime.backend import Backend, ParallelResult
from ..runtime.comm import Communicator
from ..runtime.launcher import run_ranks
from ..runtime.runconfig import _UNSET, RunConfig
from ..runtime.topology import Topology
from ..streams import SparseStream
from ..streams.ops import REDUCE_OPS, SUM, ReduceOp
from .allgather import sparse_allgather
from .dense import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
)
from .dsar import dsar_split_allgather
from .hier import _check_chunks, dsar_hierarchical, ssar_hierarchical
from .selector import choose_algorithm
from .sparse import ssar_recursive_double, ssar_ring, ssar_split_allgather

__all__ = [
    "sparse_allreduce",
    "dense_allreduce",
    "sparse_allgather",
    "run_sparse_allreduce",
    "resolve_collective",
    "ALGORITHMS",
]

ALGORITHMS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
    "ssar_hier": ssar_hierarchical,
    "dsar_split_ag": dsar_split_allgather,
    "dsar_hier": dsar_hierarchical,
}

#: the dynamic-instance algorithms, whose dense stage takes the quantizer.
DSAR_ALGORITHMS = ("dsar_split_ag", "dsar_hier")

#: the algorithms that accept ``chunks=`` (pipelined hierarchical path).
CHUNKED_ALGORITHMS = ("ssar_hier", "dsar_hier")

DENSE = {
    "dense_rec_dbl": allreduce_recursive_doubling,
    "dense_ring": allreduce_ring,
    "dense_rabenseifner": allreduce_rabenseifner,
}


def _resolve_op(op: "ReduceOp | str") -> ReduceOp:
    if isinstance(op, ReduceOp):
        return op
    if op in REDUCE_OPS:
        return REDUCE_OPS[op]
    raise ValueError(f"unknown reduction op {op!r}; choose from {sorted(REDUCE_OPS)}")


def resolve_collective(
    comm: Communicator,
    stream: SparseStream,
    algorithm: str = "auto",
    quantizer: QSGDQuantizer | None = None,
    op: "ReduceOp | str" = SUM,
    chunks: "int | str" = 1,
) -> "tuple[object, dict]":
    """Resolve the public allreduce knobs into ``(algorithm_fn, kwargs)``.

    Single resolution path shared by the blocking surface
    (:func:`sparse_allreduce`) and the non-blocking one
    (:func:`~repro.runtime.nonblocking.i_collective` stream form): the
    ``"auto"`` selector, op lookup and per-algorithm knob routing
    (``quantizer`` only to the DSAR algorithms, ``chunks`` only to the
    hierarchical ones — both warning-free no-ops elsewhere, matching the
    quantizer contract) live here and nowhere else. The returned pair
    satisfies ``fn(comm, stream, **kwargs)``.

    ``algorithm="auto"`` and ``chunks="auto"`` resolve from a
    *rank-consistent* density estimate — one scalar agreement round
    (:func:`~repro.costmodel.consistent_mean` over ``stream.nnz``) —
    never from the local stream alone: with skewed per-rank sparsity a
    local resolve can pick different algorithms on different ranks, whose
    mismatched schedules deadlock. Both knobs are therefore collective
    when set to ``"auto"`` (all ranks pass the same knob values already,
    per the collective contract, so the agreement round is uniform too).
    """
    auto_algorithm = algorithm == "auto"
    auto_chunks = chunks == "auto"
    if not auto_chunks:
        _check_chunks(chunks)
    estimate: float | None = None
    if auto_algorithm or auto_chunks:
        estimate = consistent_mean(comm, float(stream.nnz))
        estimate = min(max(estimate, 0.0), float(stream.dimension))
    if auto_algorithm:
        algorithm = choose_algorithm(
            stream.dimension,
            comm.size,
            estimate,
            stream.value_dtype.itemsize,
            topology=comm.topology,
        )
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)} or 'auto'"
        )
    if auto_chunks:
        chunks = (
            CostModel.default().auto_chunks(
                Instance(
                    stream.dimension, comm.size, estimate, stream.value_dtype.itemsize
                ),
                algorithm,
                topology=comm.topology,
            )
            if algorithm in CHUNKED_ALGORITHMS
            else 1  # flat algorithms ignore chunking; keep the no-op silent
        )
    kwargs: dict = {"op": _resolve_op(op)}
    if algorithm in DSAR_ALGORITHMS:
        kwargs["quantizer"] = quantizer
    if algorithm in CHUNKED_ALGORITHMS:
        kwargs["chunks"] = chunks
    return ALGORITHMS[algorithm], kwargs


def sparse_allreduce(
    comm: Communicator,
    stream: SparseStream,
    algorithm: str = "auto",
    quantizer: QSGDQuantizer | None = None,
    op: "ReduceOp | str" = SUM,
    chunks: "int | str" = 1,
) -> SparseStream:
    """Element-wise sum of one sparse stream per rank, result on all ranks.

    Parameters
    ----------
    comm:
        This rank's communicator; all ranks must call with the same
        ``algorithm`` and compatible stream dimensions/dtypes.
    stream:
        The local contribution (sparse or dense representation).
    algorithm:
        ``"auto"`` (selector heuristic of §5.3, topology-aware when the
        communicator carries one), or one of ``ssar_rec_dbl``,
        ``ssar_split_ag``, ``ssar_ring``, ``ssar_hier``,
        ``dsar_split_ag``, ``dsar_hier``.
    quantizer:
        Optional QSGD quantizer applied to the dense stage; only meaningful
        for the DSAR algorithms (ignored with a warning-free no-op
        otherwise, matching the paper: low precision targets the dense
        case).
    op:
        The coordinate-wise reduction (§5.2): a :class:`ReduceOp` or one of
        ``"sum"``, ``"max"``, ``"min"``, ``"prod"``. Missing sparse entries
        are treated as the operation's neutral element.
    chunks:
        Pipeline depth for the hierarchical algorithms (``ssar_hier``,
        ``dsar_hier``): the stream is split into ``chunks`` dimension
        ranges so leader traffic for chunk *k* overlaps the intra-host
        reduce of chunk *k+1* — bit-identical to the unchunked run
        (unquantized). Warning-free no-op for the flat algorithms.
        ``"auto"`` picks the depth minimizing the cost model's pipelined
        makespan curve (:meth:`~repro.costmodel.CostModel.auto_chunks`)
        from the rank-consistent density estimate; flat algorithms keep
        ignoring it silently.

    Returns
    -------
    SparseStream
        The sum; representation (sparse/dense) reflects actual fill-in.
    """
    fn, kwargs = resolve_collective(
        comm, stream, algorithm=algorithm, quantizer=quantizer, op=op, chunks=chunks
    )
    return fn(comm, stream, **kwargs)


def _allreduce_rank(
    comm: Communicator,
    streams: "list[SparseStream]",
    algorithm: str,
    quantizer: QSGDQuantizer | None,
    op: "ReduceOp | str",
    chunks: "int | str" = 1,
) -> SparseStream:
    """Module-level rank program for :func:`run_sparse_allreduce`.

    Kept at module scope (not a closure) so it stays picklable: the process
    backend's spawn fallback on platforms without fork must be able to ship
    the rank function to the worker processes.
    """
    return sparse_allreduce(
        comm, streams[comm.rank], algorithm=algorithm, quantizer=quantizer, op=op,
        chunks=chunks,
    )


def run_sparse_allreduce(
    streams: "list[SparseStream]",
    algorithm: str = "auto",
    *,
    config: RunConfig | None = None,
    backend: "str | Backend" = _UNSET,
    quantizer: QSGDQuantizer | None = None,
    op: "ReduceOp | str" = SUM,
    timeout: float | None = _UNSET,
    topology: "Topology | str | int | None" = _UNSET,
    chunks: "int | str" = _UNSET,
) -> ParallelResult:
    """One-call driver: allreduce one stream per rank on a chosen backend.

    Spawns ``len(streams)`` ranks on ``backend`` (``"thread"``,
    ``"process"``, ``"shmem"`` or ``"socket"``), runs
    :func:`sparse_allreduce` on each, and returns the
    :class:`~repro.runtime.ParallelResult` (per-rank reduced streams plus
    the recorded trace). This is the ``mpiexec``-style entry point the
    sweeps, examples and cross-backend tests share. ``topology`` (any
    form :func:`~repro.runtime.topology.normalize_topology` accepts, e.g.
    ``"2x4"``) simulates a multi-host world so topology-aware algorithms
    (``ssar_hier``, ``"auto"`` on hierarchical maps) can be exercised on
    any backend; ``chunks`` is the pipeline depth of the hierarchical
    algorithms (see :func:`sparse_allreduce`). A
    :class:`~repro.runtime.RunConfig` passed as ``config=`` supplies any
    knob not given explicitly (explicit kwargs win).

    Note: under the process backend's spawn fallback (platforms without
    fork) the whole ``streams`` list is pickled into every worker; for
    very large inputs on such platforms, prefer calling
    :func:`~repro.runtime.run_ranks` with a rank function that constructs
    only its own stream.
    """
    cfg = (config if config is not None else RunConfig()).merged(
        backend=backend, timeout=timeout, topology=topology, chunks=chunks
    )
    return run_ranks(
        _allreduce_rank,
        len(streams),
        streams,
        algorithm,
        quantizer,
        op,
        cfg.chunks,
        config=cfg,
    )


def dense_allreduce(
    comm: Communicator,
    vec: np.ndarray,
    algorithm: str = "dense_rabenseifner",
    op: "ReduceOp | str" = SUM,
) -> np.ndarray:
    """Dense allreduce baseline (the 'MPI' the paper compares against)."""
    if algorithm not in DENSE:
        raise ValueError(f"unknown dense algorithm {algorithm!r}; choose from {sorted(DENSE)}")
    return DENSE[algorithm](comm, vec, op=_resolve_op(op))
