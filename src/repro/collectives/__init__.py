"""Sparse and dense collective algorithms (paper §5.3)."""

from .allgather import (
    allgather_blocks,
    allgather_recursive_doubling,
    allgather_ring,
    sparse_allgather,
)
from .api import ALGORITHMS, dense_allreduce, run_sparse_allreduce, sparse_allreduce
from .dense import (
    DENSE_ALGORITHMS,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    partition_bounds,
)
from .dsar import dsar_split_allgather
from .hier import dsar_hierarchical, ssar_hierarchical, tree_reduce
from .selector import (
    RING_MIN_RANKS,
    SMALL_MESSAGE_BYTES,
    SPARSE_ALGORITHMS,
    choose_algorithm,
    dense_stage_two_tier_times,
)
from .sparse import slice_stream, split_phase, ssar_recursive_double, ssar_ring, ssar_split_allgather

__all__ = [
    "allgather_blocks",
    "allgather_recursive_doubling",
    "allgather_ring",
    "sparse_allgather",
    "ALGORITHMS",
    "dense_allreduce",
    "sparse_allreduce",
    "run_sparse_allreduce",
    "DENSE_ALGORITHMS",
    "allreduce_rabenseifner",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "partition_bounds",
    "dsar_split_allgather",
    "dsar_hierarchical",
    "ssar_hierarchical",
    "tree_reduce",
    "RING_MIN_RANKS",
    "SMALL_MESSAGE_BYTES",
    "SPARSE_ALGORITHMS",
    "choose_algorithm",
    "dense_stage_two_tier_times",
    "slice_stream",
    "split_phase",
    "ssar_recursive_double",
    "ssar_ring",
    "ssar_split_allgather",
]
