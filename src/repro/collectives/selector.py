"""Automatic algorithm selection (paper §5.3: "In practice, allreduce
implementations switch between different implementations depending on the
message size and the number of processes").

The selector mirrors the paper's guidance:

* if the expected reduced size ``K`` exceeds the sparse-efficiency
  threshold ``delta`` the instance is *dynamic* → DSAR;
* otherwise, small reduced payloads are latency-bound → recursive doubling;
* large static-sparse payloads → split + sparse allgather.

``K`` is estimated with the uniform fill-in model of Appendix B when the
user provides no better estimate ("we require the user to have some rough
idea about K", §5.3) — uniform supports are the worst case for fill-in.
"""

from __future__ import annotations

from ..analysis.density import expected_union_size
from ..config import INDEX_BYTES, delta_threshold

__all__ = ["choose_algorithm", "SMALL_MESSAGE_BYTES", "SPARSE_ALGORITHMS"]

#: below this many reduced payload bytes, latency dominates bandwidth and
#: recursive doubling wins (the classic small-message switch point).
SMALL_MESSAGE_BYTES = 64 * 1024

SPARSE_ALGORITHMS = (
    "ssar_rec_dbl",
    "ssar_split_ag",
    "ssar_ring",
    "dsar_split_ag",
)


def choose_algorithm(
    dimension: int,
    nranks: int,
    nnz_per_rank: int,
    value_itemsize: int = 4,
    expected_k: float | None = None,
    small_message_bytes: int = SMALL_MESSAGE_BYTES,
) -> str:
    """Pick a sparse allreduce algorithm for the given instance.

    Parameters
    ----------
    dimension, nranks, nnz_per_rank:
        Problem shape ``N``, ``P``, ``k``.
    value_itemsize:
        Bytes per value (4 for float32).
    expected_k:
        User estimate of the reduced size ``K``; defaults to the uniform
        fill-in expectation ``N (1 - (1 - k/N)^P)``.
    small_message_bytes:
        The latency/bandwidth switch point.

    Returns
    -------
    str
        One of :data:`SPARSE_ALGORITHMS` (never ``ssar_ring``, which exists
        as an explicit comparison point only).
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not 0 <= nnz_per_rank <= dimension:
        raise ValueError(f"nnz_per_rank must be in [0, {dimension}], got {nnz_per_rank}")
    if expected_k is None:
        expected_k = expected_union_size(nnz_per_rank, dimension, nranks)
    delta = delta_threshold(dimension, value_itemsize, INDEX_BYTES)
    if expected_k > delta:
        return "dsar_split_ag"
    reduced_bytes = expected_k * (INDEX_BYTES + value_itemsize)
    if reduced_bytes <= small_message_bytes:
        return "ssar_rec_dbl"
    return "ssar_split_ag"
