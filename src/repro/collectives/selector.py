"""Automatic algorithm selection (paper §5.3: "In practice, allreduce
implementations switch between different implementations depending on the
message size and the number of processes").

The selection procedure itself lives in
:meth:`repro.costmodel.CostModel.rank` — the single cost-model layer
every consumer (this selector, the sweeps, bench-kernels, the netsim
replay, the adaptive runtime selector) shares. This module keeps the
historical thin entry points:

* :func:`choose_algorithm` — build an :class:`~repro.costmodel.Instance`
  and return ``CostModel.rank(...).choice``;
* :func:`dense_stage_two_tier_times` — the ``(flat dsar, hier dsar)``
  predicted-time pair the dynamic-instance branch compares.

``K`` is estimated with the uniform fill-in model of Appendix B when the
user provides no better estimate ("we require the user to have some rough
idea about K", §5.3) — uniform supports are the worst case for fill-in.
"""

from __future__ import annotations

from ..costmodel.model import (
    RING_MIN_RANKS,
    SMALL_MESSAGE_BYTES,
    SPARSE_ALGORITHMS,
    CostModel,
    Instance,
)
from ..netsim.model import NetworkModel, TieredNetworkModel
from ..runtime.topology import Topology

__all__ = [
    "choose_algorithm",
    "dense_stage_two_tier_times",
    "SMALL_MESSAGE_BYTES",
    "RING_MIN_RANKS",
    "SPARSE_ALGORITHMS",
]


def dense_stage_two_tier_times(
    dimension: int,
    nranks: int,
    nnz_per_rank: float,
    value_itemsize: int,
    topology: Topology,
    network: "NetworkModel | TieredNetworkModel",
) -> tuple[float, float]:
    """Predicted ``(flat dsar, hierarchical dsar)`` times under two tiers.

    The dominating term of a dynamic instance is the dense allgather: the
    result is ``N * itemsize`` bytes that every rank must end up holding.
    On a cluster whose inter-node uplink is shared per host (``m`` ranks
    behind one NIC), the flat algorithm pushes ``m`` ranks' split slices
    and dense partitions through each uplink while the hierarchical one
    pushes a single leader's. A plain :class:`NetworkModel` is treated as
    two equal tiers: the hierarchy then loses whenever bandwidth
    dominates (its extra intra rounds move the full dense vector again)
    and can only pay for itself on latency-bound shapes where collapsing
    the ``(P-1)`` fan-out to ``(H-1)`` covers those rounds.

    Thin wrapper over :meth:`repro.costmodel.CostModel.predict` for the
    two DSAR candidates — kept for callers that want just the comparison
    the selector's dynamic-instance branch runs.
    """
    model = CostModel.resolve(network)
    instance = Instance(dimension, nranks, nnz_per_rank, value_itemsize)
    flat = model.predict(instance, "dsar_split_ag", topology)
    hier = model.predict(instance, "dsar_hier", topology)
    return flat.time_s, hier.time_s


def choose_algorithm(
    dimension: int,
    nranks: int,
    nnz_per_rank: int,
    value_itemsize: int = 4,
    expected_k: float | None = None,
    small_message_bytes: int = SMALL_MESSAGE_BYTES,
    topology: Topology | None = None,
    network: "NetworkModel | TieredNetworkModel | None" = None,
) -> str:
    """Pick a sparse allreduce algorithm for the given instance.

    Parameters
    ----------
    dimension, nranks, nnz_per_rank:
        Problem shape ``N``, ``P``, ``k``.
    value_itemsize:
        Bytes per value (4 for float32).
    expected_k:
        User estimate of the reduced size ``K``; defaults to the uniform
        fill-in expectation ``N (1 - (1 - k/N)^P)``.
    small_message_bytes:
        The latency/bandwidth switch point.
    topology:
        Optional rank -> host map. A hierarchical topology (several
        hosts, several ranks per host) makes the selector prefer
        ``ssar_hier`` for static-sparse instances and run the two-tier
        ``dsar_hier`` vs ``dsar_split_ag`` comparison for dynamic ones;
        ``None`` or a flat/fully-distributed topology selects among the
        flat algorithms.
    network:
        The cost model the selection runs under: anything
        :meth:`~repro.costmodel.CostModel.resolve` accepts (a model
        instance, a :class:`~repro.costmodel.CostModel`, a preset name,
        a ``tiered:INTRA/INTER`` or ``calibrated:<path>`` spec).
        Defaults to the canonical tiered cluster (shared-memory intra +
        InfiniBand inter, :data:`~repro.netsim.model.TIERED_IB_FDR`).
        Pass a plain :class:`~repro.netsim.model.NetworkModel` to model
        a genuinely flat network (equal tiers), under which ``dsar_hier``
        survives only on latency-bound shapes.

    Returns
    -------
    str
        One of :data:`SPARSE_ALGORITHMS`. ``ssar_ring`` is reachable only
        through the bandwidth-bound branch (``P >= RING_MIN_RANKS`` and a
        per-rank slice above the latency switch point); ``ssar_hier`` and
        ``dsar_hier`` only with a hierarchical ``topology``.

    See Also
    --------
    repro.costmodel.CostModel.rank : the same selection as a full
        :class:`~repro.costmodel.SelectionReport` (every candidate's
        predicted time, the choice and the reason).
    """
    model = CostModel.resolve(network) if network is not None else CostModel.default()
    instance = Instance(dimension, nranks, nnz_per_rank, value_itemsize, expected_k)
    return model.rank(instance, topology, small_message_bytes).choice
