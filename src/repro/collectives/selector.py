"""Automatic algorithm selection (paper §5.3: "In practice, allreduce
implementations switch between different implementations depending on the
message size and the number of processes").

The selector mirrors the paper's guidance, extended with topology
awareness:

* if the expected reduced size ``K`` exceeds the sparse-efficiency
  threshold ``delta`` the instance is *dynamic* → DSAR;
* a static-sparse instance on a *hierarchical* topology (several hosts,
  several ranks per host) → ``ssar_hier``: per §6 the inter-node links
  are the bottleneck, and reducing intra-node first sends only each
  host's merged union (``E[K_local]`` of the two-tier Appendix-B model,
  :func:`~repro.analysis.density.expected_two_tier_sizes`) across the
  slow tier instead of every raw stream;
* otherwise, small reduced payloads are latency-bound → recursive
  doubling;
* very large payloads at scale — where even the per-rank *slice*
  ``K / P`` exceeds the latency switch point — are bandwidth-bound on
  every step → the sparse ring: its pipelined single-slice-per-step
  schedule keeps per-rank buffering bounded and avoids the split phase's
  ``(P-1)``-way incast, and the extra ``2 (P-1) alpha`` latency it pays
  is noise at these sizes;
* remaining large static-sparse payloads → split + sparse allgather.

``K`` is estimated with the uniform fill-in model of Appendix B when the
user provides no better estimate ("we require the user to have some rough
idea about K", §5.3) — uniform supports are the worst case for fill-in.
"""

from __future__ import annotations

from ..analysis.density import expected_union_size
from ..config import INDEX_BYTES, delta_threshold
from ..runtime.topology import Topology

__all__ = [
    "choose_algorithm",
    "SMALL_MESSAGE_BYTES",
    "RING_MIN_RANKS",
    "SPARSE_ALGORITHMS",
]

#: below this many reduced payload bytes, latency dominates bandwidth and
#: recursive doubling wins (the classic small-message switch point).
SMALL_MESSAGE_BYTES = 64 * 1024

#: the ring's 2 (P-1) alpha latency only amortizes at scale; below this
#: world size the split phase's (P-1) alpha is never worth trading for it.
RING_MIN_RANKS = 8

SPARSE_ALGORITHMS = (
    "ssar_rec_dbl",
    "ssar_split_ag",
    "ssar_ring",
    "ssar_hier",
    "dsar_split_ag",
)


def choose_algorithm(
    dimension: int,
    nranks: int,
    nnz_per_rank: int,
    value_itemsize: int = 4,
    expected_k: float | None = None,
    small_message_bytes: int = SMALL_MESSAGE_BYTES,
    topology: Topology | None = None,
) -> str:
    """Pick a sparse allreduce algorithm for the given instance.

    Parameters
    ----------
    dimension, nranks, nnz_per_rank:
        Problem shape ``N``, ``P``, ``k``.
    value_itemsize:
        Bytes per value (4 for float32).
    expected_k:
        User estimate of the reduced size ``K``; defaults to the uniform
        fill-in expectation ``N (1 - (1 - k/N)^P)``.
    small_message_bytes:
        The latency/bandwidth switch point.
    topology:
        Optional rank -> host map. A hierarchical topology (several
        hosts, several ranks per host) makes the selector prefer
        ``ssar_hier`` for static-sparse instances; ``None`` or a flat/
        fully-distributed topology selects among the flat algorithms.

    Returns
    -------
    str
        One of :data:`SPARSE_ALGORITHMS`. ``ssar_ring`` is reachable only
        through the bandwidth-bound branch (``P >= RING_MIN_RANKS`` and a
        per-rank slice above the latency switch point); ``ssar_hier``
        only with a hierarchical ``topology``.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not 0 <= nnz_per_rank <= dimension:
        raise ValueError(f"nnz_per_rank must be in [0, {dimension}], got {nnz_per_rank}")
    if expected_k is None:
        expected_k = expected_union_size(nnz_per_rank, dimension, nranks)
    delta = delta_threshold(dimension, value_itemsize, INDEX_BYTES)
    if expected_k > delta:
        # dynamic instance: the reduced result goes dense either way, and
        # DSAR's dense allgather stage is what handles that efficiently
        # (a dense-stage hierarchy is a separate optimization; see hier.py)
        return "dsar_split_ag"
    if topology is not None and topology.is_hierarchical:
        # static-sparse on a multi-rank multi-host world: pay the fast
        # tier first so only the merged per-host unions cross the slow one
        return "ssar_hier"
    reduced_bytes = expected_k * (INDEX_BYTES + value_itemsize)
    if reduced_bytes <= small_message_bytes:
        return "ssar_rec_dbl"
    if nranks >= RING_MIN_RANKS and reduced_bytes > small_message_bytes * nranks:
        return "ssar_ring"
    return "ssar_split_ag"
