"""Automatic algorithm selection (paper §5.3: "In practice, allreduce
implementations switch between different implementations depending on the
message size and the number of processes").

The selector mirrors the paper's guidance, extended with topology
awareness:

* if the expected reduced size ``K`` exceeds the sparse-efficiency
  threshold ``delta`` the instance is *dynamic* → DSAR. On a
  *hierarchical* topology the selector runs a real two-tier cost
  comparison (:func:`dense_stage_two_tier_times`) between the flat
  ``dsar_split_ag`` and the hierarchical ``dsar_hier`` — reducing
  intra-host first means only ``nnodes`` dense partitions cross the slow
  tier's shared per-host uplink instead of ``P`` — and picks whichever
  the two-tier model predicts faster;
* a static-sparse instance on a *hierarchical* topology (several hosts,
  several ranks per host) → ``ssar_hier``: per §6 the inter-node links
  are the bottleneck, and reducing intra-node first sends only each
  host's merged union (``E[K_local]`` of the two-tier Appendix-B model,
  :func:`~repro.analysis.density.expected_two_tier_sizes`) across the
  slow tier instead of every raw stream;
* otherwise, small reduced payloads are latency-bound → recursive
  doubling;
* very large payloads at scale — where even the per-rank *slice*
  ``K / P`` exceeds the latency switch point — are bandwidth-bound on
  every step → the sparse ring: its pipelined single-slice-per-step
  schedule keeps per-rank buffering bounded and avoids the split phase's
  ``(P-1)``-way incast, and the extra ``2 (P-1) alpha`` latency it pays
  is noise at these sizes;
* remaining large static-sparse payloads → split + sparse allgather.

``K`` is estimated with the uniform fill-in model of Appendix B when the
user provides no better estimate ("we require the user to have some rough
idea about K", §5.3) — uniform supports are the worst case for fill-in.
"""

from __future__ import annotations

import math

from ..analysis.density import expected_two_tier_sizes, expected_union_size
from ..config import INDEX_BYTES, delta_threshold
from ..netsim.model import TIERED_IB_FDR, NetworkModel, TieredNetworkModel
from ..runtime.topology import Topology, check_topology_size

__all__ = [
    "choose_algorithm",
    "dense_stage_two_tier_times",
    "SMALL_MESSAGE_BYTES",
    "RING_MIN_RANKS",
    "SPARSE_ALGORITHMS",
]

#: below this many reduced payload bytes, latency dominates bandwidth and
#: recursive doubling wins (the classic small-message switch point).
SMALL_MESSAGE_BYTES = 64 * 1024

#: the ring's 2 (P-1) alpha latency only amortizes at scale; below this
#: world size the split phase's (P-1) alpha is never worth trading for it.
RING_MIN_RANKS = 8

SPARSE_ALGORITHMS = (
    "ssar_rec_dbl",
    "ssar_split_ag",
    "ssar_ring",
    "ssar_hier",
    "dsar_split_ag",
    "dsar_hier",
)


def dense_stage_two_tier_times(
    dimension: int,
    nranks: int,
    nnz_per_rank: float,
    value_itemsize: int,
    topology: Topology,
    network: "NetworkModel | TieredNetworkModel",
) -> tuple[float, float]:
    """Estimated ``(flat dsar, hierarchical dsar)`` times under two tiers.

    The dominating term of a dynamic instance is the dense allgather: the
    result is ``N * itemsize`` bytes that every rank must end up holding.
    On a cluster whose inter-node uplink is shared per host (``m`` ranks
    behind one NIC), the flat algorithm pushes ``m`` ranks' split slices
    and dense partitions through each uplink while the hierarchical one
    pushes a single leader's — the two-tier volumes are::

        flat:  (P - m)/P * (k_pairs + N_dense) per rank, m ranks per uplink
        hier:  (H - 1)/H * (E[K_local]_pairs + N_dense) per leader

    plus latency terms (``(P-1) alpha_inter`` for the flat split fan-out
    vs ``(H-1) alpha_inter`` between leaders) and the hierarchy's extra
    intra-host tree reduce / broadcast rounds at intra rates. A plain
    :class:`NetworkModel` is treated as two equal tiers: the hierarchy
    then loses whenever bandwidth dominates (its extra intra rounds move
    the full dense vector again) and can only pay for itself on
    latency-bound shapes where collapsing the ``(P-1)`` fan-out to
    ``(H-1)`` covers those rounds.
    """
    if isinstance(network, TieredNetworkModel):
        intra, inter = network.intra, network.inter
    else:
        intra = inter = network
    P = nranks
    H = topology.nnodes
    m = topology.max_ranks_per_node
    pair_bytes = INDEX_BYTES + value_itemsize
    dense_bytes = dimension * value_itemsize
    k_bytes = nnz_per_rank * pair_bytes
    k_local, _ = expected_two_tier_sizes(
        nnz_per_rank, dimension, P, min(m, P)
    )
    k_local_bytes = k_local * pair_bytes

    # flat DSAR: every rank's split slices and (forwarded) dense partitions
    # cross the inter tier; the busiest uplink carries m ranks' share
    flat = (
        (P - 1) * inter.alpha
        + inter.beta * m * (P - m) / P * (k_bytes + dense_bytes)
    )

    # hierarchical DSAR: one leader per uplink, merged unions only, plus
    # the intra-host tree reduce and dense broadcast rounds
    intra_rounds = math.ceil(math.log2(m)) if m > 1 else 0
    hier = (
        (H - 1) * inter.alpha
        + inter.beta * (H - 1) / H * (k_local_bytes + dense_bytes)
        + intra_rounds * (2 * intra.alpha + intra.beta * (k_local_bytes + dense_bytes))
    )
    return flat, hier


def choose_algorithm(
    dimension: int,
    nranks: int,
    nnz_per_rank: int,
    value_itemsize: int = 4,
    expected_k: float | None = None,
    small_message_bytes: int = SMALL_MESSAGE_BYTES,
    topology: Topology | None = None,
    network: "NetworkModel | TieredNetworkModel | None" = None,
) -> str:
    """Pick a sparse allreduce algorithm for the given instance.

    Parameters
    ----------
    dimension, nranks, nnz_per_rank:
        Problem shape ``N``, ``P``, ``k``.
    value_itemsize:
        Bytes per value (4 for float32).
    expected_k:
        User estimate of the reduced size ``K``; defaults to the uniform
        fill-in expectation ``N (1 - (1 - k/N)^P)``.
    small_message_bytes:
        The latency/bandwidth switch point.
    topology:
        Optional rank -> host map. A hierarchical topology (several
        hosts, several ranks per host) makes the selector prefer
        ``ssar_hier`` for static-sparse instances and run the two-tier
        ``dsar_hier`` vs ``dsar_split_ag`` comparison for dynamic ones;
        ``None`` or a flat/fully-distributed topology selects among the
        flat algorithms.
    network:
        The cost model the two-tier comparison runs under. Defaults to
        the canonical tiered cluster (shared-memory intra + InfiniBand
        inter, :data:`~repro.netsim.model.TIERED_IB_FDR`) — consistent
        with the hierarchical-topology presumption that intra links are
        an order of magnitude faster. Pass a plain
        :class:`~repro.netsim.model.NetworkModel` to model a genuinely
        flat network (equal tiers), under which ``dsar_hier`` survives
        only on latency-bound shapes (the ``(P-1)`` -> ``(H-1)`` fan-out
        collapse), never on bandwidth-bound ones.

    Returns
    -------
    str
        One of :data:`SPARSE_ALGORITHMS`. ``ssar_ring`` is reachable only
        through the bandwidth-bound branch (``P >= RING_MIN_RANKS`` and a
        per-rank slice above the latency switch point); ``ssar_hier`` and
        ``dsar_hier`` only with a hierarchical ``topology``.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not 0 <= nnz_per_rank <= dimension:
        raise ValueError(f"nnz_per_rank must be in [0, {dimension}], got {nnz_per_rank}")
    if topology is not None:
        # the launcher-uniform size check: a topology for a different world
        # would feed garbage H/m into the two-tier comparison below
        check_topology_size(topology, nranks)
    if expected_k is None:
        expected_k = expected_union_size(nnz_per_rank, dimension, nranks)
    delta = delta_threshold(dimension, value_itemsize, INDEX_BYTES)
    hierarchical = topology is not None and topology.is_hierarchical
    if expected_k > delta:
        # dynamic instance: the reduced result goes dense either way; on a
        # hierarchical topology, compare the flat dense allgather against
        # the leader-only dense stage under the two-tier cost model
        if hierarchical:
            flat_t, hier_t = dense_stage_two_tier_times(
                dimension,
                nranks,
                nnz_per_rank,
                value_itemsize,
                topology,
                network if network is not None else TIERED_IB_FDR,
            )
            if hier_t < flat_t:
                return "dsar_hier"
        return "dsar_split_ag"
    if hierarchical:
        # static-sparse on a multi-rank multi-host world: pay the fast
        # tier first so only the merged per-host unions cross the slow one
        return "ssar_hier"
    reduced_bytes = expected_k * (INDEX_BYTES + value_itemsize)
    if reduced_bytes <= small_message_bytes:
        return "ssar_rec_dbl"
    if nranks >= RING_MIN_RANKS and reduced_bytes > small_message_bytes * nranks:
        return "ssar_ring"
    return "ssar_split_ag"
