"""Stochastic density analysis (paper Appendix B, Figures 1 and 7).

Characterises the fill-in of a sparse reduction: given P nodes each holding
k uniformly random non-zero indices out of N, the expected number of
non-zeros in the union (and hence in the element-wise sum, ignoring
cancellation) is

    E[K] = N * (1 - (1 - k/N)^P)

The paper writes this via inclusion-exclusion,
``E[K] = N * sum_i (-1)^{i-1} C(P, i) (k/N)^i`` — the two forms are equal by
the binomial theorem; we implement both and test their agreement. The union
bound gives ``E[K] <= P*k``, tight when supports are disjoint.

These formulas drive the algorithm selector (the user's "rough idea about
K", §5.3) and reproduce Fig. 1 (density of reduced result) and Fig. 7
(expected reduced size, N=512).
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

__all__ = [
    "expected_union_size",
    "expected_union_size_inclusion_exclusion",
    "expected_two_tier_sizes",
    "expected_density_of_sum",
    "union_density_curve",
    "monte_carlo_union_size",
    "empirical_union_density",
]


def expected_union_size(nnz_per_rank: float, dimension: int, nranks: int) -> float:
    """Closed-form ``E[K] = N (1 - (1 - k/N)^P)`` for uniform supports."""
    if dimension <= 0:
        return 0.0
    if not 0 <= nnz_per_rank <= dimension:
        raise ValueError(f"nnz_per_rank must be in [0, {dimension}], got {nnz_per_rank}")
    if nranks < 0:
        raise ValueError(f"nranks must be >= 0, got {nranks}")
    p_hit = nnz_per_rank / dimension
    # log-space for numerical robustness at large P
    if p_hit >= 1.0:
        return float(dimension)
    miss = np.exp(nranks * np.log1p(-p_hit))
    return float(dimension * (1.0 - miss))


def expected_union_size_inclusion_exclusion(nnz_per_rank: int, dimension: int, nranks: int) -> float:
    """The paper's inclusion-exclusion form of ``E[K]`` (App. B.1).

    Numerically fragile for large P (alternating sum); provided to validate
    the closed form on small instances.
    """
    if dimension <= 0:
        return 0.0
    ratio = nnz_per_rank / dimension
    total = 0.0
    for i in range(1, nranks + 1):
        total += (-1.0) ** (i - 1) * comb(nranks, i, exact=True) * ratio**i
    return float(dimension * total)


def expected_two_tier_sizes(
    nnz_per_rank: float, dimension: int, nranks: int, ranks_per_node: int
) -> tuple[float, float]:
    """App. B extended to a two-tier (hierarchical) reduction.

    Returns ``(E[K_local], E[K])`` for a cluster of hosts holding
    ``ranks_per_node`` ranks each: ``E[K_local]`` is the expected size of
    the union a host *leader* carries across the slow inter-node tier
    after the intra-node merge (``m = ranks_per_node`` uniform supports),
    and ``E[K]`` is the final reduced size — identical to the flat model,
    because a union of per-host unions is the union of all ``P`` supports.
    The gap between ``ranks_per_node * k`` and ``E[K_local]`` is exactly
    the volume hierarchical reduction saves on the slow tier per host.
    """
    if ranks_per_node < 1:
        raise ValueError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
    if ranks_per_node > nranks:
        raise ValueError(
            f"ranks_per_node {ranks_per_node} exceeds world size {nranks}"
        )
    k_local = expected_union_size(nnz_per_rank, dimension, ranks_per_node)
    k_total = expected_union_size(nnz_per_rank, dimension, nranks)
    return k_local, k_total


def expected_density_of_sum(density_per_rank: float, nranks: int) -> float:
    """Density of the reduced vector: ``1 - (1 - d)^P`` (drives Fig. 1)."""
    if not 0.0 <= density_per_rank <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density_per_rank}")
    if density_per_rank == 1.0:
        return 1.0
    return float(1.0 - np.exp(nranks * np.log1p(-density_per_rank)))


def union_density_curve(density_per_rank: float, node_counts: np.ndarray) -> np.ndarray:
    """Vectorised :func:`expected_density_of_sum` over node counts."""
    node_counts = np.asarray(node_counts, dtype=np.float64)
    return 1.0 - np.exp(node_counts * np.log1p(-density_per_rank))


def monte_carlo_union_size(
    nnz_per_rank: int,
    dimension: int,
    nranks: int,
    rng: np.random.Generator,
    trials: int = 16,
) -> float:
    """Empirical mean union size for uniform random supports."""
    sizes = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        hit = np.zeros(dimension, dtype=bool)
        for _ in range(nranks):
            hit[rng.choice(dimension, size=nnz_per_rank, replace=False)] = True
        sizes[t] = hit.sum()
    return float(sizes.mean())


def empirical_union_density(supports: list[np.ndarray], dimension: int) -> float:
    """Density of the union of explicit support sets (drives Fig. 1 from
    measured gradient supports rather than the uniform model)."""
    if dimension <= 0:
        return 0.0
    hit = np.zeros(dimension, dtype=bool)
    for s in supports:
        hit[s] = True
    return float(hit.sum() / dimension)
