"""Empirical measurement of Assumption C.2's commutativity gap ``xi``.

The convergence proof (Appendix C) assumes the sum of per-node TopK
selections stays close to the TopK of the summed accumulator:

    || TopK(mean_p(a_p)) - mean_p(TopK(a_p)) ||  <=  xi * ||mean gradient||

The constant ``xi`` is not derived — the paper calls it "a (small)
constant". This module measures it on concrete workloads, both to sanity-
check the assumption on the synthetic gradients we train with and as an
analysis tool for users' own gradient distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CommutativityGap", "measure_commutativity_gap"]


@dataclass(frozen=True)
class CommutativityGap:
    """One measurement of the Assumption C.2 quantities."""

    gap_norm: float
    reference_norm: float
    xi: float
    n_nodes: int
    k: int

    def satisfied_with(self, xi_bound: float) -> bool:
        """Whether this sample satisfies the assumption with constant
        ``xi_bound``."""
        return self.gap_norm <= xi_bound * self.reference_norm + 1e-12


def _topk_vector(vec: np.ndarray, k: int, bucket_size: int | None) -> np.ndarray:
    # imported lazily: repro.collectives.selector pulls in repro.analysis at
    # import time, and repro.core pulls in repro.collectives — a module-level
    # import here would close the cycle
    from ..core.topk import topk_bucket_indices, topk_global_indices

    if bucket_size is None:
        idx = topk_global_indices(vec, min(k, vec.shape[0]))
    else:
        idx = topk_bucket_indices(vec, k, bucket_size)
    out = np.zeros_like(vec)
    sel = idx.astype(np.int64)
    out[sel] = vec[sel]
    return out


def measure_commutativity_gap(
    accumulators: list[np.ndarray],
    k: int,
    bucket_size: int | None = 512,
) -> CommutativityGap:
    """Measure ``xi`` for one set of per-node accumulators.

    Parameters
    ----------
    accumulators:
        The per-node vectors ``a_p = lr * grad_p + eps_p`` of one step.
    k, bucket_size:
        The TopK selection rule in use.

    Returns
    -------
    CommutativityGap
        ``xi = ||TopK(mean) - mean(TopK)|| / ||mean||`` (0 when the mean
        accumulator is 0).
    """
    if not accumulators:
        raise ValueError("need at least one accumulator")
    dims = {a.shape for a in accumulators}
    if len(dims) != 1:
        raise ValueError(f"accumulators disagree on shape: {dims}")
    P = len(accumulators)
    mean_acc = np.mean(accumulators, axis=0)
    topk_of_mean = _topk_vector(mean_acc, k, bucket_size)
    mean_of_topk = np.mean([_topk_vector(a, k, bucket_size) for a in accumulators], axis=0)
    gap = float(np.linalg.norm(topk_of_mean - mean_of_topk))
    ref = float(np.linalg.norm(mean_acc))
    xi = gap / ref if ref > 0 else 0.0
    return CommutativityGap(gap_norm=gap, reference_norm=ref, xi=xi, n_nodes=P, k=k)
