"""Stochastic density analysis (paper Appendix B)."""

from .commutativity import CommutativityGap, measure_commutativity_gap
from .density import (
    empirical_union_density,
    expected_density_of_sum,
    expected_two_tier_sizes,
    expected_union_size,
    expected_union_size_inclusion_exclusion,
    monte_carlo_union_size,
    union_density_curve,
)

__all__ = [
    "CommutativityGap",
    "measure_commutativity_gap",
    "empirical_union_density",
    "expected_density_of_sum",
    "expected_two_tier_sizes",
    "expected_union_size",
    "expected_union_size_inclusion_exclusion",
    "monte_carlo_union_size",
    "union_density_curve",
]
