"""The paper's primary contribution: TopK sparsification + Algorithm 1."""

from .dgc import DGCConfig, WarmupSchedule, dgc_sgd
from .fusion import FusedBucket, FusedPendingUpdate, GradientFuser
from .topk import (
    ErrorFeedback,
    quantize_stream_values,
    topk_bucket_indices,
    topk_global_indices,
    topk_stream,
)
from .topk_sgd import TopKSGDConfig, TopKSGDResult, dense_sgd, quantized_topk_sgd

__all__ = [
    "DGCConfig",
    "WarmupSchedule",
    "dgc_sgd",
    "FusedBucket",
    "FusedPendingUpdate",
    "GradientFuser",
    "ErrorFeedback",
    "quantize_stream_values",
    "topk_bucket_indices",
    "topk_global_indices",
    "topk_stream",
    "TopKSGDConfig",
    "TopKSGDResult",
    "dense_sgd",
    "quantized_topk_sgd",
]
