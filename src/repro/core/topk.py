"""Top-K gradient sparsification with error feedback (paper §2.2, §4).

Two selection rules are provided:

* **global** Top-K — the k largest-magnitude entries of the whole vector
  (the classic Top-k SGD of Aji & Heafield / Dryden et al.);
* **per-bucket** Top-K — k largest entries out of every bucket of ``B``
  consecutive coordinates, the rule the paper actually deploys ("gradients
  are split into groups of 512 consecutive coordinates, out of which we
  select the 4 largest ones", §8.4). Per-bucket selection is GPU-friendly
  and guarantees support spread across the model.

:class:`ErrorFeedback` maintains the residual ``epsilon`` of Algorithm 1:
components not selected are accumulated locally and re-injected into the
next step's gradient, which is what makes TopK SGD convergent (Thm 4.1).
"""

from __future__ import annotations

import numpy as np

from ..config import INDEX_DTYPE
from ..quant import QSGDQuantizer
from ..streams import SparseStream

__all__ = [
    "topk_global_indices",
    "topk_bucket_indices",
    "topk_stream",
    "quantize_stream_values",
    "ErrorFeedback",
]


def topk_global_indices(vec: np.ndarray, k: int) -> np.ndarray:
    """Sorted indices of the ``k`` largest-magnitude entries of ``vec``."""
    n = vec.shape[0]
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    if k == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if k == n:
        return np.arange(n, dtype=INDEX_DTYPE)
    part = np.argpartition(np.abs(vec), n - k)[n - k:]
    part.sort()
    return part.astype(INDEX_DTYPE)


def topk_bucket_indices(vec: np.ndarray, k: int, bucket_size: int) -> np.ndarray:
    """Sorted indices selecting the ``k`` largest entries of every bucket.

    The last bucket may be shorter than ``bucket_size``; it contributes
    ``min(k, len)`` entries.
    """
    n = vec.shape[0]
    if bucket_size < 1:
        raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0 or n == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    k = min(k, bucket_size)
    full_end = (n // bucket_size) * bucket_size
    picks: list[np.ndarray] = []
    if full_end:
        mat = np.abs(vec[:full_end]).reshape(-1, bucket_size)
        if k >= bucket_size:
            sel = np.tile(np.arange(bucket_size), (mat.shape[0], 1))
        else:
            sel = np.argpartition(mat, bucket_size - k, axis=1)[:, bucket_size - k:]
        offs = (np.arange(mat.shape[0]) * bucket_size)[:, None]
        picks.append((sel + offs).reshape(-1))
    tail = n - full_end
    if tail:
        kt = min(k, tail)
        tail_abs = np.abs(vec[full_end:])
        if kt >= tail:
            sel_t = np.arange(tail)
        else:
            sel_t = np.argpartition(tail_abs, tail - kt)[tail - kt:]
        picks.append(sel_t + full_end)
    idx = np.concatenate(picks)
    idx.sort()
    return idx.astype(INDEX_DTYPE)


def topk_stream(
    vec: np.ndarray,
    k: int,
    bucket_size: int | None = None,
) -> SparseStream:
    """Select Top-K entries of a dense vector as a sparse stream.

    ``bucket_size=None`` selects globally; otherwise per bucket.
    """
    if bucket_size is None:
        idx = topk_global_indices(vec, k)
    else:
        idx = topk_bucket_indices(vec, k, bucket_size)
    return SparseStream(
        vec.shape[0], indices=idx, values=vec[idx.astype(np.int64)],
        value_dtype=vec.dtype, copy=False,
    )


def quantize_stream_values(stream: SparseStream, quantizer: QSGDQuantizer) -> SparseStream:
    """Apply QSGD to the *values* of a sparse stream: ``Q(TopK(acc))``.

    The returned stream carries the stochastically rounded values and is
    annotated with the effective wire bytes per value (``bits/8`` plus the
    amortised per-bucket scale), so traces charge the true low-precision
    payload size.
    """
    if stream.is_dense:
        raise ValueError("quantize_stream_values expects a sparse stream")
    if stream.nnz == 0:
        out = stream.copy()
        out.value_wire_bytes = quantizer.bits / 8.0
        return out
    block = quantizer.quantize(stream.values.astype(np.float32, copy=False))
    values = quantizer.dequantize(block).astype(stream.value_dtype)
    out = SparseStream(
        stream.dimension,
        indices=stream.indices.copy(),
        values=values,
        value_dtype=stream.value_dtype,
        copy=False,
    )
    nbuckets = max(1, int(np.ceil(stream.nnz / quantizer.bucket_size)))
    out.value_wire_bytes = quantizer.bits / 8.0 + 4.0 * nbuckets / stream.nnz
    return out


class ErrorFeedback:
    """Residual accumulator of Algorithm 1.

    Per step ``t``::

        acc   = residual + scaled_gradient        # accumulate error
        sent  = TopK(acc)                          # what the node ships
        residual = acc - sent                      # error kept locally

    Invariant (tested property): ``dense(sent) + residual == acc`` exactly.
    """

    def __init__(
        self,
        dimension: int,
        k: int,
        bucket_size: int | None = None,
        value_dtype: np.dtype | type = np.float32,
    ) -> None:
        if dimension < 0:
            raise ValueError(f"dimension must be >= 0, got {dimension}")
        self.dimension = dimension
        self.k = k
        self.bucket_size = bucket_size
        self.residual = np.zeros(dimension, dtype=value_dtype)

    def select(self, scaled_gradient: np.ndarray) -> SparseStream:
        """Accumulate, select Top-K, update the residual; returns the stream."""
        if scaled_gradient.shape != self.residual.shape:
            raise ValueError(
                f"gradient shape {scaled_gradient.shape} != ({self.dimension},)"
            )
        acc = self.residual + scaled_gradient.astype(self.residual.dtype, copy=False)
        stream = topk_stream(acc, self.k, self.bucket_size)
        self.residual = acc
        if stream.nnz:
            self.residual[stream.indices.astype(np.int64)] = 0.0
        return stream

    @property
    def residual_norm(self) -> float:
        """l2 norm of the locally held error (diagnostic)."""
        return float(np.linalg.norm(self.residual))

    def reset(self) -> None:
        self.residual[:] = 0.0
