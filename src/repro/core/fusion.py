"""Tensor fusion: merging gradients of adjoining layers (paper §9).

"SparCML already implements several optimizations which are common in the
large-batch setting, such as merging gradients for adjoining layers
('tensor fusion'), or non-blocking operations."

Layer-wise gradient exchange sends one (small) collective per tensor and
pays the latency term per layer; whole-model exchange maximises bandwidth
efficiency but cannot overlap with backpropagation. Tensor fusion is the
standard middle ground: consecutive tensors are coalesced into buckets of
at least ``min_bucket_bytes`` and each bucket is reduced independently
(optionally with non-blocking collectives, overlapping with the rest of
the backward pass).

:class:`GradientFuser` computes the bucket layout once from the model's
tensor sizes and then slices/reduces flat gradient vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives.api import sparse_allreduce
from ..quant import QSGDQuantizer
from ..runtime.comm import Communicator, Handle
from ..runtime.nonblocking import i_collective
from .topk import ErrorFeedback, quantize_stream_values

__all__ = ["FusedBucket", "FusedPendingUpdate", "GradientFuser"]


class FusedPendingUpdate(Handle):
    """In-flight fused allreduce: one background collective per bucket.

    ``wait()`` joins the buckets *in layout order* (the non-blocking
    collective contract: all ranks join in the same program order) and
    scatters each bucket's dense total into the fused output vector. If a
    bucket's collective failed, the remaining handles are still reaped —
    so no background thread outlives the step — and the first failure is
    re-raised.
    """

    def __init__(
        self, buckets: "list[FusedBucket]", handles: "list[Handle]", out: np.ndarray
    ) -> None:
        self._buckets = buckets
        self._handles = handles
        self._out = out
        self._done = False

    def wait(self) -> np.ndarray:
        if self._done:
            return self._out
        first: BaseException | None = None
        for bucket, handle in zip(self._buckets, self._handles):
            try:
                total = handle.wait()
            except BaseException as exc:  # noqa: BLE001 - reap all, raise first
                if first is None:
                    first = exc
                continue
            if first is None:
                self._out[bucket.start: bucket.stop] = total.to_dense()
        self._done = True
        if first is not None:
            raise first
        return self._out

    def test(self) -> bool:
        return self._done or all(h.test() for h in self._handles)


@dataclass(frozen=True)
class FusedBucket:
    """One fused segment of the flat parameter space."""

    index: int
    start: int
    stop: int
    tensor_names: tuple[str, ...]

    @property
    def size(self) -> int:
        return self.stop - self.start


class GradientFuser:
    """Coalesce per-tensor gradients into communication buckets.

    Parameters
    ----------
    tensor_sizes:
        Ordered (name, element count) pairs — the model's flattening order.
    min_bucket_bytes:
        Keep appending tensors to the current bucket until it reaches this
        size (the last bucket may be smaller). 0 means one bucket per
        tensor (pure layer-wise communication).
    value_itemsize:
        Bytes per gradient element (4 for float32).
    """

    def __init__(
        self,
        tensor_sizes: list[tuple[str, int]],
        min_bucket_bytes: int = 1 << 20,
        value_itemsize: int = 4,
    ) -> None:
        if not tensor_sizes:
            raise ValueError("tensor_sizes must not be empty")
        if any(size < 0 for _, size in tensor_sizes):
            raise ValueError("tensor sizes must be non-negative")
        if min_bucket_bytes < 0:
            raise ValueError("min_bucket_bytes must be >= 0")
        self.tensor_sizes = list(tensor_sizes)
        self.total_size = sum(size for _, size in tensor_sizes)
        self.buckets: list[FusedBucket] = []
        start = 0
        names: list[str] = []
        acc = 0
        for name, size in tensor_sizes:
            names.append(name)
            acc += size
            if acc * value_itemsize >= min_bucket_bytes and acc > 0:
                self.buckets.append(
                    FusedBucket(len(self.buckets), start, start + acc, tuple(names))
                )
                start += acc
                names, acc = [], 0
        if acc or not self.buckets:
            self.buckets.append(
                FusedBucket(len(self.buckets), start, start + acc, tuple(names))
            )

    @classmethod
    def from_network(cls, net, min_bucket_bytes: int = 1 << 20) -> "GradientFuser":
        """Build from a Sequential/LSTMClassifier's parameter layout."""
        sizes: list[tuple[str, int]] = []
        if hasattr(net, "layers"):
            for i, layer in enumerate(net.layers):
                for j, p in enumerate(layer.params):
                    sizes.append((f"layer{i}.p{j}", p.size))
            if not sizes:
                sizes.append(("empty", 0))
        else:
            for j, p in enumerate(net.params):
                sizes.append((f"p{j}", p.size))
        return cls(sizes, min_bucket_bytes=min_bucket_bytes)

    # ------------------------------------------------------------------
    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    def slices(self) -> list[slice]:
        """Flat-vector slices, one per bucket, covering [0, total_size)."""
        return [slice(b.start, b.stop) for b in self.buckets]

    def _check_fused_args(
        self, grad: np.ndarray, error_feedback: list[ErrorFeedback]
    ) -> None:
        if grad.shape != (self.total_size,):
            raise ValueError(f"gradient shape {grad.shape} != ({self.total_size},)")
        if len(error_feedback) != self.n_buckets:
            raise ValueError(
                f"need {self.n_buckets} ErrorFeedback states, got {len(error_feedback)}"
            )

    def fused_topk_allreduce(
        self,
        comm: Communicator,
        grad: np.ndarray,
        error_feedback: list[ErrorFeedback],
        algorithm: str = "auto",
        quantizer: QSGDQuantizer | None = None,
        nonblocking: bool = False,
        chunks: "int | str" = 1,
        selector=None,
    ) -> np.ndarray:
        """TopK-sparsified allreduce per fused bucket; returns the summed
        update, dense, with per-bucket error feedback state.

        This is the layer-wise communication path the paper uses for DNN
        training ("communication is done layer-wise using non-blocking
        calls", §8.3), at the fused-bucket granularity.
        ``nonblocking=True`` routes through :meth:`i_fused_allreduce` and
        joins immediately (useful to exercise the async machinery with
        blocking semantics); ``chunks`` pipelines each bucket's
        hierarchical collective (see
        :func:`~repro.collectives.api.sparse_allreduce`); ``selector``
        (an :class:`~repro.costmodel.AdaptiveSelector`, requires
        ``algorithm="auto"``) resolves one algorithm per *call* from the
        mean selected bucket nnz — one agreement round instead of one
        per bucket, and the choice adapts across steps as the realized
        density drifts.
        """
        if nonblocking:
            return self.i_fused_allreduce(
                comm, grad, error_feedback,
                algorithm=algorithm, quantizer=quantizer, chunks=chunks,
                selector=selector,
            ).wait()
        self._check_fused_args(grad, error_feedback)
        out = np.empty_like(grad)
        selected = []
        for bucket, ef in zip(self.buckets, error_feedback):
            segment = grad[bucket.start: bucket.stop]
            sent = ef.select(segment.astype(np.float32, copy=False))
            if quantizer is not None:
                sent = quantize_stream_values(sent, quantizer)
            selected.append(sent)
        algorithm = self._resolve_fused_algorithm(comm, algorithm, selector, selected)
        for bucket, sent in zip(self.buckets, selected):
            total = sparse_allreduce(comm, sent, algorithm=algorithm, chunks=chunks)
            out[bucket.start: bucket.stop] = total.to_dense()
        return out

    def _resolve_fused_algorithm(
        self, comm: Communicator, algorithm: str, selector, selected: list
    ) -> str:
        """One adaptive resolution covering every bucket of this call."""
        if selector is None:
            return algorithm
        if algorithm != "auto":
            raise ValueError("selector requires algorithm='auto'")
        mean_nnz = sum(s.nnz for s in selected) / max(1, len(selected))
        return selector.step(comm, mean_nnz)

    def i_fused_allreduce(
        self,
        comm: Communicator,
        grad: np.ndarray,
        error_feedback: list[ErrorFeedback],
        algorithm: str = "auto",
        quantizer: QSGDQuantizer | None = None,
        chunks: "int | str" = 1,
        selector=None,
    ) -> FusedPendingUpdate:
        """Async mode: launch one non-blocking collective per fused bucket.

        TopK selection (and optional value quantization) runs eagerly on
        the calling thread — error-feedback state must mutate in program
        order — then each bucket's collective is launched through the
        stream form of :func:`~repro.runtime.nonblocking.i_collective`
        and proceeds in the background, so bucket ``k+1``'s selection and
        all caller compute overlap bucket ``k``'s communication. The
        returned :class:`FusedPendingUpdate` joins in bucket order and
        assembles the dense update; results are bit-identical to
        :meth:`fused_topk_allreduce` (same selection, same collectives,
        unquantized). ``selector`` resolves one adaptive algorithm per
        call (see :meth:`fused_topk_allreduce`).
        """
        self._check_fused_args(grad, error_feedback)
        out = np.empty_like(grad)
        selected = []
        for bucket, ef in zip(self.buckets, error_feedback):
            segment = grad[bucket.start: bucket.stop]
            sent = ef.select(segment.astype(np.float32, copy=False))
            if quantizer is not None:
                sent = quantize_stream_values(sent, quantizer)
            selected.append(sent)
        algorithm = self._resolve_fused_algorithm(comm, algorithm, selector, selected)
        handles: list[Handle] = [
            i_collective(comm, sent, algorithm=algorithm, chunks=chunks)
            for sent in selected
        ]
        return FusedPendingUpdate(self.buckets, handles, out)

    def make_error_feedback(
        self, k: int, bucket_size: int | None = 512
    ) -> list[ErrorFeedback]:
        """Fresh per-bucket error-feedback states matching the layout.

        ``k``/``bucket_size`` follow the TopK conventions of
        :class:`~repro.core.topk.ErrorFeedback`; for global selection
        (``bucket_size=None``) ``k`` is clamped to each fused bucket's size.
        """
        return [
            ErrorFeedback(
                b.size,
                min(k, b.size) if bucket_size is None else k,
                bucket_size,
                value_dtype=np.float32,
            )
            for b in self.buckets
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GradientFuser({len(self.tensor_sizes)} tensors -> "
            f"{self.n_buckets} buckets, {self.total_size} params)"
        )
