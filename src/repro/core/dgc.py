"""Momentum correction and warm-up training (paper §8.4, following [38]).

For the ResNet50 experiments the paper "implemented techniques such as
momentum correction and warm-up training [Lin et al., Deep Gradient
Compression] to alleviate" the accuracy loss of aggressive sparsification.
This module provides both:

* **momentum correction** — instead of accumulating raw gradients into the
  error-feedback residual, accumulate the *momentum-corrected velocity*:

      u_t = m * u_{t-1} + g_t          (local momentum)
      acc = residual + lr * u_t        (what TopK selects from)

  Applying momentum before sparsification preserves the direction the
  dense momentum-SGD would take; applying it after (the naive way) damps
  sparse coordinates and hurts convergence.
* **warm-up training** — ramp the sparsity over the first epochs: start
  sending a dense-ish selection and decay the per-bucket k exponentially
  to the target (equivalently, ramp sparsity 75% -> 93.75% -> 98.4% -> ...
  as in DGC).

The driver mirrors :func:`~repro.core.topk_sgd.quantized_topk_sgd` so the
two can be compared head-to-head (benchmarked in the ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..collectives.api import sparse_allreduce
from ..quant import QSGDQuantizer
from ..runtime.comm import Communicator
from .topk import ErrorFeedback, quantize_stream_values
from .topk_sgd import EvalFn, GradFn, TopKSGDResult

__all__ = ["DGCConfig", "WarmupSchedule", "dgc_sgd"]


@dataclass(frozen=True)
class WarmupSchedule:
    """Exponential sparsity warm-up: k decays from dense-ish to the target.

    For step ``t < warmup_steps`` the per-bucket selection is::

        k_t = max(k_target, round(bucket * dense_fraction * decay**t))

    with ``decay`` chosen so that k reaches ``k_target`` at the end of the
    warm-up window; afterwards ``k_t = k_target``.
    """

    k_target: int
    bucket_size: int
    warmup_steps: int = 0
    dense_fraction: float = 0.25

    def k_at(self, step: int) -> int:
        if self.warmup_steps <= 0 or step >= self.warmup_steps:
            return self.k_target
        k0 = max(self.k_target, int(round(self.bucket_size * self.dense_fraction)))
        if k0 <= self.k_target:
            return self.k_target
        # geometric interpolation from k0 down to k_target
        ratio = (self.k_target / k0) ** (step / self.warmup_steps)
        return max(self.k_target, int(round(k0 * ratio)))


@dataclass
class DGCConfig:
    """Hyper-parameters for momentum-corrected sparse SGD."""

    k: int
    bucket_size: int = 512
    lr: float = 0.05
    momentum: float = 0.9
    warmup_steps: int = 0
    warmup_dense_fraction: float = 0.25
    quantizer_bits: int | None = None
    quantizer_bucket: int = 512
    algorithm: str = "auto"
    seed: int = 0
    lr_decay: float = 0.0

    def schedule(self) -> WarmupSchedule:
        return WarmupSchedule(
            k_target=self.k,
            bucket_size=self.bucket_size,
            warmup_steps=self.warmup_steps,
            dense_fraction=self.warmup_dense_fraction,
        )

    def learning_rate(self, step: int) -> float:
        return self.lr / (1.0 + self.lr_decay * step)


def dgc_sgd(
    comm: Communicator,
    grad_fn: GradFn,
    dimension: int,
    steps: int,
    config: DGCConfig,
    eval_fn: EvalFn | None = None,
    eval_every: int = 10,
    init_params: np.ndarray | None = None,
) -> TopKSGDResult:
    """Momentum-corrected TopK SGD with sparsity warm-up.

    All ranks call collectively with identical configuration. Compared to
    plain Algorithm 1, the residual accumulates *velocity* rather than raw
    gradient, and the selection density follows the warm-up schedule.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if not 0.0 <= config.momentum < 1.0:
        raise ValueError(f"momentum must be in [0, 1), got {config.momentum}")
    params = (
        np.zeros(dimension, dtype=np.float32)
        if init_params is None
        else init_params.astype(np.float32, copy=True)
    )
    velocity = np.zeros(dimension, dtype=np.float32)
    ef = ErrorFeedback(dimension, config.k, config.bucket_size, value_dtype=np.float32)
    schedule = config.schedule()
    quantizer = (
        QSGDQuantizer(
            bits=config.quantizer_bits,
            bucket_size=config.quantizer_bucket,
            seed=config.seed * 6271 + comm.rank,
        )
        if config.quantizer_bits is not None
        else None
    )
    result = TopKSGDResult(params=params)

    for step in range(steps):
        lr = config.learning_rate(step)
        grad = grad_fn(params, step).astype(np.float32, copy=False)
        if grad.shape != (dimension,):
            raise ValueError(f"grad_fn returned shape {grad.shape}, expected ({dimension},)")
        comm.compute(grad.nbytes * 4, "grad")
        # momentum correction: accumulate velocity, sparsify the velocity
        velocity *= config.momentum
        velocity += grad
        ef.k = schedule.k_at(step)
        sent = ef.select(lr * velocity)
        if quantizer is not None:
            sent = quantize_stream_values(sent, quantizer)
        result.bytes_sent_per_step.append(sent.nbytes_payload)
        total = sparse_allreduce(comm, sent, algorithm=config.algorithm)
        update = total.to_dense()
        comm.compute(update.nbytes * 2, "apply")
        params -= update
        if eval_fn is not None and (step % eval_every == 0 or step == steps - 1):
            result.history.append({"step": step, **eval_fn(params)})

    result.final_residual_norm = ef.residual_norm
    return result
