"""Quantized TopK SGD — the paper's Algorithm 1.

Every rank ``i`` holds a model replica ``v`` and a residual ``eps_i`` and
iterates::

    acc_i   <- eps_i + lr * grad_i(v)            # accumulate error
    eps_i   <- acc_i - TopK(acc_i)               # update the error
    g_i     <- allreduce(Q(TopK(acc_i)), SUM)    # sparse (quantized) sum
    v       <- v - g_i                           # apply the update

The allreduce is a SparCML sparse collective; the optional quantizer is
applied to the selected values before the reduction (the ``Q`` of
Algorithm 1), and/or inside DSAR's dense stage (§6). Because quantization
happens *before* the sum, every rank computes bit-identical totals and the
replicas stay consistent.

The driver is model-agnostic: it consumes a gradient callback and an
optional evaluation callback, so linear models (:mod:`repro.mlopt`) and
neural networks (:mod:`repro.nn`) reuse the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..collectives.api import dense_allreduce, sparse_allreduce
from ..quant import QSGDQuantizer
from ..runtime.comm import Communicator
from .topk import ErrorFeedback, quantize_stream_values

__all__ = ["TopKSGDConfig", "TopKSGDResult", "quantized_topk_sgd", "dense_sgd"]

#: gradient callback: (params, step) -> stochastic gradient at this rank.
GradFn = Callable[[np.ndarray, int], np.ndarray]
#: evaluation callback: params -> metrics dict (loss/accuracy/...).
EvalFn = Callable[[np.ndarray], dict[str, float]]


@dataclass
class TopKSGDConfig:
    """Hyper-parameters of Algorithm 1.

    ``k``/``bucket_size`` follow the paper's notation "k out of every bucket
    of B consecutive elements" (e.g. k=8, B=512 is ~1.6% density);
    ``bucket_size=None`` selects the k largest entries globally.
    """

    k: int
    bucket_size: int | None = 512
    lr: float = 0.05
    quantizer_bits: int | None = None
    quantizer_bucket: int = 512
    algorithm: str = "auto"
    seed: int = 0
    lr_decay: float = 0.0  # lr_t = lr / (1 + decay * t), Thm 4.1's schedule

    def learning_rate(self, step: int) -> float:
        return self.lr / (1.0 + self.lr_decay * step)


@dataclass
class TopKSGDResult:
    """Outcome of one rank's run (identical params on all ranks)."""

    params: np.ndarray
    history: list[dict[str, Any]] = field(default_factory=list)
    bytes_sent_per_step: list[int] = field(default_factory=list)
    final_residual_norm: float = 0.0

    @property
    def mean_bytes_per_step(self) -> float:
        if not self.bytes_sent_per_step:
            return 0.0
        return float(np.mean(self.bytes_sent_per_step))


def quantized_topk_sgd(
    comm: Communicator,
    grad_fn: GradFn,
    dimension: int,
    steps: int,
    config: TopKSGDConfig,
    eval_fn: EvalFn | None = None,
    eval_every: int = 10,
    init_params: np.ndarray | None = None,
) -> TopKSGDResult:
    """Run Algorithm 1 at one rank for ``steps`` iterations.

    All ranks must call this collectively with the same configuration.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    params = (
        np.zeros(dimension, dtype=np.float32)
        if init_params is None
        else init_params.astype(np.float32, copy=True)
    )
    ef = ErrorFeedback(dimension, config.k, config.bucket_size, value_dtype=np.float32)
    quantizer = (
        QSGDQuantizer(
            bits=config.quantizer_bits,
            bucket_size=config.quantizer_bucket,
            seed=config.seed * 7919 + comm.rank,
        )
        if config.quantizer_bits is not None
        else None
    )
    result = TopKSGDResult(params=params)

    for step in range(steps):
        lr = config.learning_rate(step)
        grad = grad_fn(params, step)
        if grad.shape != (dimension,):
            raise ValueError(f"grad_fn returned shape {grad.shape}, expected ({dimension},)")
        comm.compute(grad.nbytes * 3, "grad")
        sent = ef.select(lr * grad.astype(np.float32, copy=False))
        if quantizer is not None:
            sent = quantize_stream_values(sent, quantizer)
        result.bytes_sent_per_step.append(sent.nbytes_payload)
        total = sparse_allreduce(comm, sent, algorithm=config.algorithm)
        update = total.to_dense()
        comm.compute(update.nbytes * 2, "apply")
        params -= update
        if eval_fn is not None and (step % eval_every == 0 or step == steps - 1):
            metrics = {"step": step, **eval_fn(params)}
            result.history.append(metrics)

    result.final_residual_norm = ef.residual_norm
    return result


def dense_sgd(
    comm: Communicator,
    grad_fn: GradFn,
    dimension: int,
    steps: int,
    lr: float = 0.05,
    lr_decay: float = 0.0,
    algorithm: str = "dense_rabenseifner",
    eval_fn: EvalFn | None = None,
    eval_every: int = 10,
    init_params: np.ndarray | None = None,
) -> TopKSGDResult:
    """The full-precision data-parallel SGD baseline (§2.1)."""
    params = (
        np.zeros(dimension, dtype=np.float32)
        if init_params is None
        else init_params.astype(np.float32, copy=True)
    )
    result = TopKSGDResult(params=params)
    for step in range(steps):
        step_lr = lr / (1.0 + lr_decay * step)
        grad = grad_fn(params, step).astype(np.float32, copy=False)
        comm.compute(grad.nbytes * 3, "grad")
        result.bytes_sent_per_step.append(grad.nbytes + 8)
        total = dense_allreduce(comm, grad, algorithm=algorithm)
        comm.compute(total.nbytes * 2, "apply")
        params -= step_lr * total
        if eval_fn is not None and (step % eval_every == 0 or step == steps - 1):
            result.history.append({"step": step, **eval_fn(params)})
    return result
