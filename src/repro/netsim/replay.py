"""Dependency-respecting trace replay: executed messages -> predicted time.

Given the per-rank operation logs recorded by the runtime and a
:class:`~repro.netsim.model.NetworkModel`, the replayer computes virtual
per-rank clocks:

* ``send``   — the sender's clock advances by ``alpha`` (injection); the
  message becomes available to its receiver at ``sender_clock + beta * L``;
* ``recv``   — the receiver's clock advances to ``max(clock, arrival)``;
* ``compute``— the rank's clock advances by ``gamma * bytes``;
* ``mark``   — zero-cost phase boundary used for per-phase breakdowns.

This is exactly the accounting the paper uses in §5.3 (e.g. a recursive
doubling stage costs ``alpha + beta*L``; the split fan-out costs
``(P-1)*alpha`` in latency), applied to the *actual* message sizes the
algorithms produced — including representation switches and quantization.

The replay is deterministic: matching uses the (src, dst, tag, seq) FIFO
keys recorded at execution time, so thread scheduling during the real run
cannot change the replayed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.trace import COMPUTE, MARK, RECV, SEND, Trace
from .model import NetworkModel

__all__ = ["ReplayResult", "replay", "ReplayDeadlockError", "overlap_step_time"]


class ReplayDeadlockError(RuntimeError):
    """The trace contains a receive with no matching send."""


@dataclass
class ReplayResult:
    """Predicted timing of one replayed trace."""

    finish_times: list[float]
    phase_times: dict[str, float]
    per_rank_phase_times: list[dict[str, float]]
    total_bytes: int
    total_messages: int

    @property
    def makespan(self) -> float:
        """Completion time of the slowest rank — the collective's runtime."""
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def mean_finish(self) -> float:
        if not self.finish_times:
            return 0.0
        return sum(self.finish_times) / len(self.finish_times)

    def phase(self, label: str) -> float:
        """Max-over-ranks time spent in a labelled phase."""
        return self.phase_times.get(label, 0.0)


def replay(trace: Trace, model: NetworkModel) -> ReplayResult:
    """Replay ``trace`` under ``model`` and return predicted times.

    Raises
    ------
    ReplayDeadlockError
        If the log is causally incomplete (a recv whose matching send never
        appears), which indicates a bug in the traced algorithm.
    """
    nranks = trace.nranks
    events = [trace.events(r) for r in range(nranks)]
    pointers = [0] * nranks
    clocks = [0.0] * nranks
    arrivals: dict[tuple[int, int, int, int], float] = {}
    labels = [""] * nranks
    per_rank_phase: list[dict[str, float]] = [dict() for _ in range(nranks)]

    def charge(rank: int, dt: float) -> None:
        clocks[rank] += dt
        label = labels[rank]
        if label:
            bucket = per_rank_phase[rank]
            bucket[label] = bucket.get(label, 0.0) + dt

    remaining = sum(len(e) for e in events)
    while remaining:
        progressed = False
        for rank in range(nranks):
            ptr = pointers[rank]
            lst = events[rank]
            while ptr < len(lst):
                ev = lst[ptr]
                if ev.op == SEND:
                    charge(rank, model.alpha)
                    arrivals[(rank, ev.peer, ev.tag, ev.seq)] = (
                        clocks[rank] + model.beta * ev.nbytes
                    )
                elif ev.op == RECV:
                    key = (ev.peer, rank, ev.tag, ev.seq)
                    if key not in arrivals:
                        break  # stalled: matching send not yet replayed
                    arrival = arrivals.pop(key)
                    if arrival > clocks[rank]:
                        charge(rank, arrival - clocks[rank])
                elif ev.op == COMPUTE:
                    charge(rank, model.gamma * ev.nbytes)
                elif ev.op == MARK:
                    labels[rank] = ev.label
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown trace op {ev.op!r}")
                ptr += 1
                remaining -= 1
                progressed = True
            pointers[rank] = ptr
        if not progressed:
            stuck = [
                (r, events[r][pointers[r]])
                for r in range(nranks)
                if pointers[r] < len(events[r])
            ]
            raise ReplayDeadlockError(
                f"replay stalled with unmatched receives: {stuck[:4]}"
            )

    phase_times: dict[str, float] = {}
    for bucket in per_rank_phase:
        for label, t in bucket.items():
            phase_times[label] = max(phase_times.get(label, 0.0), t)

    return ReplayResult(
        finish_times=clocks,
        phase_times=phase_times,
        per_rank_phase_times=per_rank_phase,
        total_bytes=trace.total_bytes_sent,
        total_messages=trace.total_messages,
    )


def overlap_step_time(compute_s: float, comm_s: float, nonblocking: bool) -> float:
    """Per-step time with or without computation/communication overlap.

    With non-blocking collectives (paper §7) communication hides behind
    computation, so a training step costs ``max``; blocking steps cost the
    sum.
    """
    if compute_s < 0 or comm_s < 0:
        raise ValueError("times must be non-negative")
    return max(compute_s, comm_s) if nonblocking else compute_s + comm_s
