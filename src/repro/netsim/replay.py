"""Dependency-respecting trace replay: executed messages -> predicted time.

Given the per-rank operation logs recorded by the runtime and a
:class:`~repro.netsim.model.NetworkModel`, the replayer computes virtual
per-rank clocks:

* ``send``   — the sender's clock advances by ``alpha`` (injection); the
  message becomes available to its receiver at ``sender_clock + beta * L``;
* ``recv``   — the receiver's clock advances to ``max(clock, arrival)``;
* ``compute``— the rank's clock advances by ``gamma * bytes``;
* ``mark``   — zero-cost phase boundary used for per-phase breakdowns.

This is exactly the accounting the paper uses in §5.3 (e.g. a recursive
doubling stage costs ``alpha + beta*L``; the split fan-out costs
``(P-1)*alpha`` in latency), applied to the *actual* message sizes the
algorithms produced — including representation switches and quantization.

Two-tier replay
---------------
With a :class:`~repro.netsim.model.TieredNetworkModel` and a
:class:`~repro.runtime.topology.Topology`, every message is classified
by the hosts of its (src, dst) ranks: same host -> the intra tier's
alpha/beta, different hosts -> the inter tier's. When the model has
``shared_uplink=True``, inter-host transmissions also serialize on the
source host's egress and destination host's ingress links (one
full-duplex uplink per host): each transmission occupies both uplinks
for ``beta_inter * L`` seconds, starting in the *earliest idle window*
at or after the moment the sender is ready — busy intervals are tracked
explicitly, so a transmission is never delayed by one that could only
start after it finished, regardless of the order the replayer happens to
process ranks in. That is the §6 congestion effect hierarchical
collectives exist to avoid — ``m`` ranks funnelling unions through one
NIC pay ``m`` transmit times where a single leader pays one. An
uncontended message costs ``alpha + beta*L`` exactly, so replay under a
plain :class:`NetworkModel` (or equal tiers with
``shared_uplink=False``) is unchanged by the tiered machinery.

The replay is deterministic: matching uses the (src, dst, tag, seq) FIFO
keys recorded at execution time, so thread scheduling during the real run
cannot change the replayed time. Scheduling is readiness-driven — a rank
leaves the run queue only when it stalls on a not-yet-posted arrival and
re-enters when the matching send is replayed — so a trace replays in
``O(events + stalls)`` work rather than rescanning every rank per pass
(:attr:`ReplayResult.rank_activations` exposes the scheduling count as a
regression canary).
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass
from heapq import merge

from ..runtime.topology import Topology, normalize_topology
from ..runtime.trace import COMPUTE, MARK, RECV, SEND, Trace
from .model import NetworkModel, TieredNetworkModel

__all__ = ["ReplayResult", "replay", "ReplayDeadlockError", "overlap_step_time"]


class ReplayDeadlockError(RuntimeError):
    """The trace contains a receive with no matching send."""


def _reserve_uplinks(
    egress: list[tuple[float, float]],
    ingress: list[tuple[float, float]],
    ready: float,
    duration: float,
) -> float:
    """Book the earliest window of ``duration`` free on *both* uplinks at
    or after ``ready``; returns its start time.

    Busy intervals are kept sorted, so the search is independent of the
    order the replayer processed the reserving sends in: a transmission
    slots into any idle window it would physically have fit into, and is
    never pushed behind one that starts after it could have completed.
    """
    if duration <= 0.0:
        return ready  # zero-byte messages occupy no uplink time
    start = ready
    # both lists are insort-maintained, so a lazy linear merge visits the
    # combined intervals in start order without building a new list
    for a, b in merge(egress, ingress):
        if a >= start + duration:
            break  # intervals are start-sorted: nothing later can overlap
        if b > start:
            start = b
    insort(egress, (start, start + duration))
    insort(ingress, (start, start + duration))
    return start


@dataclass
class ReplayResult:
    """Predicted timing of one replayed trace."""

    finish_times: list[float]
    phase_times: dict[str, float]
    per_rank_phase_times: list[dict[str, float]]
    total_bytes: int
    total_messages: int
    #: number of rank scheduling activations the replay needed; bounded by
    #: ``nranks + number of recv stalls`` (a quadratic-rescan canary).
    rank_activations: int = 0

    @property
    def makespan(self) -> float:
        """Completion time of the slowest rank — the collective's runtime."""
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def mean_finish(self) -> float:
        if not self.finish_times:
            return 0.0
        return sum(self.finish_times) / len(self.finish_times)

    def phase(self, label: str) -> float:
        """Max-over-ranks time spent in a labelled phase."""
        return self.phase_times.get(label, 0.0)


def replay(
    trace: Trace,
    model: "NetworkModel | TieredNetworkModel",
    topology: "Topology | str | int | None" = None,
) -> ReplayResult:
    """Replay ``trace`` under ``model`` and return predicted times.

    Parameters
    ----------
    trace:
        The per-rank operation logs of one executed run.
    model:
        A flat :class:`NetworkModel` (uniform link cost — numerically
        identical to the historical replayer) or a
        :class:`TieredNetworkModel` charging each message by the tier its
        (src, dst) pair crosses.
    topology:
        Rank -> host map classifying links for tiered models (anything
        :func:`~repro.runtime.topology.normalize_topology` accepts, e.g.
        ``"2x4"``). Defaults to a flat single-host world, under which a
        tiered model charges everything at intra rates. Validated against
        ``trace.nranks`` for flat models too.

    Raises
    ------
    ReplayDeadlockError
        If the log is causally incomplete (a recv whose matching send never
        appears), which indicates a bug in the traced algorithm.
    """
    # a CostModel (repro.costmodel) replays under the network it wraps —
    # duck-typed so netsim stays import-independent of the costmodel layer
    model = getattr(model, "network", model)
    nranks = trace.nranks
    events = [trace.events(r) for r in range(nranks)]
    pointers = [0] * nranks
    clocks = [0.0] * nranks
    arrivals: dict[tuple[int, int, int, int], float] = {}
    labels = [""] * nranks
    per_rank_phase: list[dict[str, float]] = [dict() for _ in range(nranks)]

    tiered = isinstance(model, TieredNetworkModel)
    topo = normalize_topology(topology, nranks)
    hosts: tuple[str, ...] | None = None
    if tiered:
        hosts = (topo if topo is not None else Topology.flat(nranks)).hosts
        intra, inter = model.intra, model.inter
        shared = model.shared_uplink
        # per-host uplink busy intervals, one list per direction
        egress: dict[str, list[tuple[float, float]]] = {}
        ingress: dict[str, list[tuple[float, float]]] = {}
    gamma = model.gamma

    def charge(rank: int, dt: float) -> None:
        clocks[rank] += dt
        label = labels[rank]
        if label:
            bucket = per_rank_phase[rank]
            bucket[label] = bucket.get(label, 0.0) + dt

    remaining = sum(len(e) for e in events)
    # readiness-driven scheduling: every rank runs until it stalls on a
    # pending arrival; the matching send re-activates exactly that rank.
    ready: deque[int] = deque(range(nranks))
    waiting: dict[tuple[int, int, int, int], int] = {}
    activations = 0
    while ready:
        rank = ready.popleft()
        activations += 1
        ptr = pointers[rank]
        lst = events[rank]
        while ptr < len(lst):
            ev = lst[ptr]
            if ev.op == SEND:
                key = (rank, ev.peer, ev.tag, ev.seq)
                if hosts is None:
                    charge(rank, model.alpha)
                    arrival = clocks[rank] + model.beta * ev.nbytes
                else:
                    same = hosts[rank] == hosts[ev.peer]
                    tier = intra if same else inter
                    charge(rank, tier.alpha)
                    if same or not shared:
                        arrival = clocks[rank] + tier.beta * ev.nbytes
                    else:
                        # both uplinks reserved over one transmit window so
                        # the uncontended cost stays exactly alpha + beta*L
                        start = _reserve_uplinks(
                            egress.setdefault(hosts[rank], []),
                            ingress.setdefault(hosts[ev.peer], []),
                            clocks[rank],
                            tier.beta * ev.nbytes,
                        )
                        arrival = start + tier.beta * ev.nbytes
                arrivals[key] = arrival
                waiter = waiting.pop(key, None)
                if waiter is not None:
                    ready.append(waiter)
            elif ev.op == RECV:
                key = (ev.peer, rank, ev.tag, ev.seq)
                if key not in arrivals:
                    waiting[key] = rank  # stalled: re-activated by the send
                    break
                arrival = arrivals.pop(key)
                if arrival > clocks[rank]:
                    charge(rank, arrival - clocks[rank])
            elif ev.op == COMPUTE:
                charge(rank, gamma * ev.nbytes)
            elif ev.op == MARK:
                labels[rank] = ev.label
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown trace op {ev.op!r}")
            ptr += 1
            remaining -= 1
        pointers[rank] = ptr

    if remaining:
        stuck = [
            (r, events[r][pointers[r]])
            for r in range(nranks)
            if pointers[r] < len(events[r])
        ]
        raise ReplayDeadlockError(
            f"replay stalled with unmatched receives: {stuck[:4]}"
        )

    phase_times: dict[str, float] = {}
    for bucket in per_rank_phase:
        for label, t in bucket.items():
            phase_times[label] = max(phase_times.get(label, 0.0), t)

    return ReplayResult(
        finish_times=clocks,
        phase_times=phase_times,
        per_rank_phase_times=per_rank_phase,
        total_bytes=trace.total_bytes_sent,
        total_messages=trace.total_messages,
        rank_activations=activations,
    )


def overlap_step_time(
    compute_s: float, comm_s: float, nonblocking: bool, chunks: int = 1
) -> float:
    """Per-step time with or without computation/communication overlap.

    With non-blocking collectives (paper §7) communication hides behind
    computation, so a training step costs ``max``; blocking steps cost the
    sum.

    ``chunks > 1`` models the *chunked* hierarchical schedule
    (``ssar_hier``/``dsar_hier`` with ``chunks=K``): the step is split into
    K equal pieces whose communication overlaps the *next* piece's
    computation (a depth-1 software pipeline). The first piece's compute
    and the last piece's communication cannot be hidden, so the makespan is
    ``c + (K-1) * max(c, m) + m`` with ``c = compute_s / K`` and
    ``m = comm_s / K`` — approaching ``max(compute_s, comm_s)`` from above
    as K grows, which is the ``chunks=1`` non-blocking idealisation. With
    ``nonblocking=False`` chunking buys nothing (every piece is joined
    immediately) and the cost stays the sum.
    """
    if compute_s < 0 or comm_s < 0:
        raise ValueError("times must be non-negative")
    if isinstance(chunks, bool) or not isinstance(chunks, int):
        raise TypeError(f"chunks must be an int, got {chunks!r}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    if not nonblocking:
        return compute_s + comm_s
    if chunks == 1:
        return max(compute_s, comm_s)
    c, m = compute_s / chunks, comm_s / chunks
    return c + (chunks - 1) * max(c, m) + m
