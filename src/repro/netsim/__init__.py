"""Network timing simulation: alpha-beta model + trace replay."""

from .model import (
    ARIES,
    GIGE,
    IB_FDR,
    PRESETS,
    SHM,
    TIERED_ARIES,
    TIERED_GIGE,
    TIERED_IB_FDR,
    NetworkModel,
    TieredNetworkModel,
    load_network,
    resolve_network,
    save_network,
)
from .replay import ReplayDeadlockError, ReplayResult, overlap_step_time, replay

__all__ = [
    "NetworkModel",
    "TieredNetworkModel",
    "ARIES",
    "IB_FDR",
    "GIGE",
    "SHM",
    "TIERED_ARIES",
    "TIERED_IB_FDR",
    "TIERED_GIGE",
    "PRESETS",
    "resolve_network",
    "save_network",
    "load_network",
    "ReplayResult",
    "ReplayDeadlockError",
    "replay",
    "overlap_step_time",
]
