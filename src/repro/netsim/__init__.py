"""Network timing simulation: alpha-beta model + trace replay."""

from .model import ARIES, GIGE, IB_FDR, PRESETS, NetworkModel
from .replay import ReplayDeadlockError, ReplayResult, overlap_step_time, replay

__all__ = [
    "NetworkModel",
    "ARIES",
    "IB_FDR",
    "GIGE",
    "PRESETS",
    "ReplayResult",
    "ReplayDeadlockError",
    "replay",
    "overlap_step_time",
]
