"""Alpha-beta network cost models and machine presets.

The paper analyses every algorithm in the classic latency-bandwidth model:
sending a message of ``L`` bytes costs ``T(L) = alpha + beta * L`` (§5.2).
We adopt the same model for *timing replay* of executed message traces, with
two standard refinements (LogGP-flavoured):

* the sender pays the ``alpha`` term as an injection overhead per message —
  this reproduces the paper's ``(P-1) * alpha`` accounting for the direct
  send fan-out of the split phase;
* local reduction work is charged at ``gamma`` seconds per byte touched
  (dense sums are memory-bound; sparse merges touch index+value pairs).

Presets model the three network classes of the evaluation: a Cray
Aries-class supercomputer interconnect (Piz Daint), InfiniBand FDR, and
Gigabit Ethernet (the "cloud" setting). Values are class-representative,
not measurements of the authors' testbed; the benches compare *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NetworkModel", "ARIES", "IB_FDR", "GIGE", "PRESETS"]


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters for trace replay.

    Attributes
    ----------
    name:
        Preset label used in reports.
    alpha:
        Per-message latency in seconds (also charged as sender injection).
    beta:
        Seconds per byte of message payload (inverse bandwidth).
    gamma:
        Seconds per byte of local reduction/compute work.
    """

    name: str
    alpha: float
    beta: float
    gamma: float = 2.0e-10

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("network model parameters must be non-negative")

    # ------------------------------------------------------------------
    def message_time(self, nbytes: int) -> float:
        """``T(L) = alpha + beta * L`` — one point-to-point message."""
        return self.alpha + self.beta * nbytes

    def compute_time(self, nbytes: int) -> float:
        """Local work time for ``nbytes`` of memory traffic."""
        return self.gamma * nbytes

    @property
    def bandwidth_gbps(self) -> float:
        """Link bandwidth implied by beta, in gigabytes per second."""
        if self.beta == 0:
            return float("inf")
        return 1.0 / self.beta / 1e9

    def with_(self, **kwargs: float) -> "NetworkModel":
        """A copy with some parameters replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (
            f"{self.name}: alpha={self.alpha * 1e6:.2f}us, "
            f"bw={self.bandwidth_gbps:.2f} GB/s, gamma={self.gamma * 1e9:.2f} ns/B"
        )


#: Cray Aries class (Piz Daint-like): ~1.5 us latency, ~10 GB/s per node.
ARIES = NetworkModel(name="aries", alpha=1.5e-6, beta=1.0e-10, gamma=2.0e-10)

#: InfiniBand FDR class (Greina IB): ~2 us latency, ~6.8 GB/s.
IB_FDR = NetworkModel(name="ib_fdr", alpha=2.0e-6, beta=1.47e-10, gamma=2.0e-10)

#: Gigabit Ethernet class (cloud): ~50 us latency, ~118 MB/s.
GIGE = NetworkModel(name="gige", alpha=5.0e-5, beta=8.5e-9, gamma=2.0e-10)

PRESETS: dict[str, NetworkModel] = {m.name: m for m in (ARIES, IB_FDR, GIGE)}
