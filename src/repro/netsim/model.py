"""Alpha-beta network cost models and machine presets.

The paper analyses every algorithm in the classic latency-bandwidth model:
sending a message of ``L`` bytes costs ``T(L) = alpha + beta * L`` (§5.2).
We adopt the same model for *timing replay* of executed message traces, with
two standard refinements (LogGP-flavoured):

* the sender pays the ``alpha`` term as an injection overhead per message —
  this reproduces the paper's ``(P-1) * alpha`` accounting for the direct
  send fan-out of the split phase;
* local reduction work is charged at ``gamma`` seconds per byte touched
  (dense sums are memory-bound; sparse merges touch index+value pairs).

Presets model the three network classes of the evaluation: a Cray
Aries-class supercomputer interconnect (Piz Daint), InfiniBand FDR, and
Gigabit Ethernet (the "cloud" setting). Values are class-representative,
not measurements of the authors' testbed; the benches compare *shapes*.

Two-tier models
---------------
SparCML's large-scale results (§6) come from clusters whose *intra-node*
links (shared memory) are an order of magnitude faster than the network
between nodes. :class:`TieredNetworkModel` composes two flat models —
an intra-node and an inter-node alpha/beta pair — so trace replay can
charge each message by the tier its (src, dst) pair actually crossed
(see :func:`repro.netsim.replay.replay`, which takes a
:class:`~repro.runtime.topology.Topology` to classify links). With
``shared_uplink=True`` (the default) all inter-node transmissions
from/to one host additionally serialize on that host's uplink — the
congestion effect that makes hierarchical schedules win in §6: ``m``
ranks funnelling unions through one NIC pay ``m`` transmit times where
a leader pays one.

Tiered presets compose the shared-memory intra model with each network
class (``tiered_aries``, ``tiered_ib_fdr``, ``tiered_gige``); ad hoc
combinations parse from ``"tiered:INTRA/INTER"`` specs via
:func:`resolve_network` (e.g. ``"tiered:shm/gige"``, or just
``"tiered:gige"`` for the shared-memory default intra tier).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

__all__ = [
    "NetworkModel",
    "TieredNetworkModel",
    "ARIES",
    "IB_FDR",
    "GIGE",
    "SHM",
    "TIERED_ARIES",
    "TIERED_IB_FDR",
    "TIERED_GIGE",
    "PRESETS",
    "resolve_network",
    "save_network",
    "load_network",
]

#: schema version of the calibrated-model JSON written by
#: ``python -m repro calibrate`` (see :func:`save_network`).
NETWORK_JSON_SCHEMA = 1


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters for trace replay.

    Attributes
    ----------
    name:
        Preset label used in reports.
    alpha:
        Per-message latency in seconds (also charged as sender injection).
    beta:
        Seconds per byte of message payload (inverse bandwidth).
    gamma:
        Seconds per byte of local reduction/compute work.
    """

    name: str
    alpha: float
    beta: float
    gamma: float = 2.0e-10

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("network model parameters must be non-negative")

    # ------------------------------------------------------------------
    def message_time(self, nbytes: int) -> float:
        """``T(L) = alpha + beta * L`` — one point-to-point message."""
        return self.alpha + self.beta * nbytes

    def compute_time(self, nbytes: int) -> float:
        """Local work time for ``nbytes`` of memory traffic."""
        return self.gamma * nbytes

    @property
    def bandwidth_gbps(self) -> float:
        """Link bandwidth implied by beta, in gigabytes per second."""
        if self.beta == 0:
            return float("inf")
        return 1.0 / self.beta / 1e9

    def with_(self, **kwargs: float) -> "NetworkModel":
        """A copy with some parameters replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (
            f"{self.name}: alpha={self.alpha * 1e6:.2f}us, "
            f"bw={self.bandwidth_gbps:.2f} GB/s, gamma={self.gamma * 1e9:.2f} ns/B"
        )


#: Cray Aries class (Piz Daint-like): ~1.5 us latency, ~10 GB/s per node.
ARIES = NetworkModel(name="aries", alpha=1.5e-6, beta=1.0e-10, gamma=2.0e-10)

#: InfiniBand FDR class (Greina IB): ~2 us latency, ~6.8 GB/s.
IB_FDR = NetworkModel(name="ib_fdr", alpha=2.0e-6, beta=1.47e-10, gamma=2.0e-10)

#: Gigabit Ethernet class (cloud): ~50 us latency, ~118 MB/s.
GIGE = NetworkModel(name="gige", alpha=5.0e-5, beta=8.5e-9, gamma=2.0e-10)

#: Shared-memory intra-node class: ~0.4 us latency, ~40 GB/s.
SHM = NetworkModel(name="shm", alpha=4.0e-7, beta=2.5e-11, gamma=2.0e-10)


@dataclass(frozen=True)
class TieredNetworkModel:
    """A two-tier cost model: intra-node and inter-node alpha/beta pairs.

    Replay classifies each message by the
    :class:`~repro.runtime.topology.Topology` it is given: a send whose
    source and destination rank share a host is charged at ``intra``
    rates, everything else at ``inter`` rates. Compute work is charged
    at the intra tier's ``gamma`` (reductions are local by definition).

    With ``shared_uplink=True``, inter-node transmissions additionally
    serialize on the source host's egress and the destination host's
    ingress link (full duplex, one reservation per direction): a message
    begins transmitting only once the sender is ready *and* both uplinks
    are free, and occupies them for ``beta_inter * L`` seconds. An
    uncontended message costs exactly ``alpha + beta * L`` — identical
    to the flat formula — so with ``shared_uplink=False`` (or traffic
    that never overlaps on a link) a tiered model with equal tiers
    reproduces the plain :class:`NetworkModel` replay bit for bit.
    """

    name: str
    intra: NetworkModel
    inter: NetworkModel
    shared_uplink: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.intra, NetworkModel) or not isinstance(
            self.inter, NetworkModel
        ):
            raise TypeError("TieredNetworkModel tiers must be NetworkModel instances")

    # ------------------------------------------------------------------
    @property
    def gamma(self) -> float:
        """Seconds per byte of local work (reductions run on the node)."""
        return self.intra.gamma

    def tier(self, same_host: bool) -> NetworkModel:
        """The flat model governing a link (``same_host`` classifies it)."""
        return self.intra if same_host else self.inter

    def message_time(self, nbytes: int, same_host: bool = False) -> float:
        """Uncontended ``T(L) = alpha + beta * L`` on the given tier."""
        return self.tier(same_host).message_time(nbytes)

    def compute_time(self, nbytes: int) -> float:
        return self.gamma * nbytes

    def with_(self, **kwargs) -> "TieredNetworkModel":
        """A copy with some fields replaced (``intra=``, ``inter=``, ...)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        uplink = "shared uplink" if self.shared_uplink else "unshared uplink"
        return (
            f"{self.name}: intra[{self.intra.describe()}] "
            f"inter[{self.inter.describe()}] ({uplink})"
        )


def _tiered(inter: NetworkModel, intra: NetworkModel = SHM) -> TieredNetworkModel:
    return TieredNetworkModel(name=f"tiered_{inter.name}", intra=intra, inter=inter)


#: the canonical two-tier clusters: shared-memory intra + each network class.
TIERED_ARIES = _tiered(ARIES)
TIERED_IB_FDR = _tiered(IB_FDR)
TIERED_GIGE = _tiered(GIGE)

PRESETS: "dict[str, NetworkModel | TieredNetworkModel]" = {
    m.name: m
    for m in (ARIES, IB_FDR, GIGE, SHM, TIERED_ARIES, TIERED_IB_FDR, TIERED_GIGE)
}


def _tier_to_dict(m: NetworkModel) -> dict:
    return {"name": m.name, "alpha": m.alpha, "beta": m.beta, "gamma": m.gamma}


def _tier_from_dict(d: dict, fallback_name: str) -> NetworkModel:
    return NetworkModel(
        name=d.get("name", fallback_name),
        alpha=float(d["alpha"]),
        beta=float(d["beta"]),
        gamma=float(d.get("gamma", 2.0e-10)),
    )


def save_network(
    model: "NetworkModel | TieredNetworkModel",
    path: "str | Path",
    provenance: dict | None = None,
) -> Path:
    """Persist a (possibly tiered) model as the calibrated-model JSON.

    The document round-trips through :func:`load_network` and resolves
    via the ``"calibrated:<path>"`` spec of :func:`resolve_network`;
    ``provenance`` (fit residuals, measurement parameters, host info) is
    carried verbatim for reports and ignored on load.
    """
    path = Path(path)
    doc: dict = {"schema": NETWORK_JSON_SCHEMA, "name": model.name}
    if isinstance(model, TieredNetworkModel):
        doc["kind"] = "tiered"
        doc["shared_uplink"] = model.shared_uplink
        doc["intra"] = _tier_to_dict(model.intra)
        doc["inter"] = _tier_to_dict(model.inter)
    else:
        doc["kind"] = "flat"
        doc.update(_tier_to_dict(model))
    if provenance is not None:
        doc["provenance"] = provenance
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_network(path: "str | Path") -> "NetworkModel | TieredNetworkModel":
    """Load a model written by :func:`save_network` (or hand-authored)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(f"calibrated network file {str(path)!r} does not exist")
    except json.JSONDecodeError as exc:
        raise ValueError(f"calibrated network file {str(path)!r} is not valid JSON: {exc}")
    kind = doc.get("kind", "flat")
    name = doc.get("name", path.stem)
    if kind == "tiered":
        return TieredNetworkModel(
            name=name,
            intra=_tier_from_dict(doc["intra"], f"{name}_intra"),
            inter=_tier_from_dict(doc["inter"], f"{name}_inter"),
            shared_uplink=bool(doc.get("shared_uplink", True)),
        )
    if kind == "flat":
        return _tier_from_dict(doc, name)
    raise ValueError(
        f"calibrated network file {str(path)!r} has unknown kind {kind!r} "
        "(expected 'flat' or 'tiered')"
    )


def resolve_network(
    spec: "str | NetworkModel | TieredNetworkModel",
) -> "NetworkModel | TieredNetworkModel":
    """Resolve a network spec to a model instance.

    Accepts a model instance (returned as-is), a preset name from
    :data:`PRESETS`, a ``"tiered:INTRA/INTER"`` spec composing two
    *flat* presets into a :class:`TieredNetworkModel` on the fly
    (``"tiered:INTER"`` defaults the intra tier to shared memory, e.g.
    ``"tiered:shm/ib_fdr"`` or ``"tiered:gige"``), or a
    ``"calibrated:<path>"`` spec loading a fitted model JSON written by
    ``python -m repro calibrate`` (:func:`save_network`).
    """
    if isinstance(spec, (NetworkModel, TieredNetworkModel)):
        return spec
    if spec in PRESETS:
        return PRESETS[spec]
    if isinstance(spec, str) and spec.startswith("calibrated:"):
        return load_network(spec[len("calibrated:") :])
    if isinstance(spec, str) and spec.startswith("tiered:"):
        body = spec[len("tiered:") :]
        intra_name, sep, inter_name = body.partition("/")
        if not sep:
            intra_name, inter_name = SHM.name, body
        intra = PRESETS.get(intra_name)
        inter = PRESETS.get(inter_name)
        if not isinstance(intra, NetworkModel) or not isinstance(inter, NetworkModel):
            flat = sorted(k for k, v in PRESETS.items() if isinstance(v, NetworkModel))
            raise ValueError(
                f"tiered spec {spec!r} must compose two flat presets "
                f"(tiered:INTRA/INTER or tiered:INTER); choose from {flat}"
            )
        return TieredNetworkModel(name=spec, intra=intra, inter=inter)
    raise ValueError(
        f"unknown network preset {spec!r}; choose from {sorted(PRESETS)}, "
        f"a 'tiered:INTRA/INTER' spec composing two flat presets "
        f"(e.g. 'tiered:shm/gige', or 'tiered:gige' for the shared-memory "
        f"default intra tier), or 'calibrated:<path.json>' loading a model "
        f"fitted by `python -m repro calibrate`"
    )
