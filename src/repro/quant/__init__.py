"""Low-precision (QSGD) support (paper §6)."""

from .packing import pack_integers, packed_nbytes, unpack_integers, SUPPORTED_BITS
from .qsgd import QSGDQuantizer, QuantizedBlock, quantization_variance_bound

__all__ = [
    "pack_integers",
    "packed_nbytes",
    "unpack_integers",
    "SUPPORTED_BITS",
    "QSGDQuantizer",
    "QuantizedBlock",
    "quantization_variance_bound",
]
