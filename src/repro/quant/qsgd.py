"""QSGD stochastic quantization (paper §6, following Alistarh et al. [4]).

Each dense vector is split into buckets of ``B`` consecutive entries (the
paper uses B on the order of 1024); every bucket is quantized independently:
the bucket's l2 norm becomes a full-precision scaling factor and each entry
is stochastically rounded to one of ``s = 2**(bits-1) - 1`` magnitude levels
plus a sign bit. The rounding is *unbiased* — ``E[Q(v)] = v`` — which is the
property Theorem 4.1's convergence proof relies on.

The packed result is a :class:`QuantizedBlock`: a uint8 code buffer (sign and
magnitude packed at ``bits`` per entry) plus one float32 scale per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_QSGD_BUCKET, STREAM_HEADER_BYTES
from .packing import pack_integers, unpack_integers

__all__ = ["QuantizedBlock", "QSGDQuantizer", "quantization_variance_bound"]


@dataclass(frozen=True)
class QuantizedBlock:
    """Wire format of one quantized dense vector.

    Attributes
    ----------
    length:
        Number of encoded scalar entries.
    bits:
        Bits per entry (sign + magnitude).
    bucket_size:
        Entries per independently-scaled bucket.
    packed:
        uint8 buffer of packed codes.
    scales:
        float32 per-bucket scaling factors (the bucket l2 norms).
    value_dtype:
        dtype the decoder should produce.
    """

    length: int
    bits: int
    bucket_size: int
    packed: np.ndarray
    scales: np.ndarray
    value_dtype: np.dtype

    @property
    def nbytes_payload(self) -> int:
        """Wire bytes: header + packed codes + full-precision scales."""
        return STREAM_HEADER_BYTES + int(self.packed.nbytes) + int(self.scales.nbytes)

    def comm_nbytes(self) -> int:
        """Protocol hook used by the runtime to charge wire bytes."""
        return self.nbytes_payload


class QSGDQuantizer:
    """Bucketed stochastic quantizer with ``bits`` ∈ {2, 4, 8}.

    Parameters
    ----------
    bits:
        Total bits per entry; one bit is the sign, the rest encode the
        magnitude level, so ``s = 2**(bits-1) - 1`` levels.
    bucket_size:
        Bucket length ``B``; each bucket gets its own float32 scale.
    seed:
        Seed of the private generator used for stochastic rounding.
    stochastic:
        When False, round to the nearest level instead (biased; used only
        for diagnostics/tests).
    """

    def __init__(
        self,
        bits: int = 4,
        bucket_size: int = DEFAULT_QSGD_BUCKET,
        seed: int | None = None,
        stochastic: bool = True,
    ) -> None:
        if bits not in (2, 4, 8):
            raise ValueError(f"bits must be 2, 4 or 8, got {bits}")
        if bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {bucket_size}")
        self.bits = bits
        self.bucket_size = bucket_size
        self.levels = (1 << (bits - 1)) - 1
        self.stochastic = stochastic
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def quantize(self, vector: np.ndarray) -> QuantizedBlock:
        """Encode a dense 1-D array into a :class:`QuantizedBlock`."""
        vec = np.ascontiguousarray(vector)
        if vec.ndim != 1:
            raise ValueError(f"expected a 1-D vector, got shape {vec.shape}")
        n = vec.shape[0]
        work = vec.astype(np.float64, copy=False)
        starts = np.arange(0, max(n, 1), self.bucket_size)
        if n == 0:
            return QuantizedBlock(
                0, self.bits, self.bucket_size,
                np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.float32),
                np.dtype(vec.dtype),
            )
        norms = np.sqrt(np.add.reduceat(work * work, starts))
        per_entry_norm = np.repeat(norms, _bucket_lengths(n, self.bucket_size))
        safe = np.where(per_entry_norm > 0, per_entry_norm, 1.0)
        ratio = np.abs(work) / safe * self.levels
        if self.stochastic:
            noise = self._rng.random(n)
            level = np.floor(ratio + noise)
        else:
            level = np.rint(ratio)
        np.clip(level, 0, self.levels, out=level)
        level = level.astype(np.uint8)
        sign = (work < 0).astype(np.uint8)
        codes = (sign << np.uint8(self.bits - 1)) | level
        packed = pack_integers(codes, self.bits)
        return QuantizedBlock(
            length=n,
            bits=self.bits,
            bucket_size=self.bucket_size,
            packed=packed,
            scales=norms.astype(np.float32),
            value_dtype=np.dtype(vec.dtype),
        )

    def dequantize(self, block: QuantizedBlock) -> np.ndarray:
        """Decode a :class:`QuantizedBlock` back into a dense array."""
        n = block.length
        if n == 0:
            return np.empty(0, dtype=block.value_dtype)
        codes = unpack_integers(block.packed, block.bits, n)
        mag_mask = np.uint8((1 << (block.bits - 1)) - 1)
        level = (codes & mag_mask).astype(np.float64)
        sign = np.where(codes >> np.uint8(block.bits - 1) == 1, -1.0, 1.0)
        s = (1 << (block.bits - 1)) - 1
        per_entry_norm = np.repeat(
            block.scales.astype(np.float64), _bucket_lengths(n, block.bucket_size)
        )
        out = sign * level / s * per_entry_norm
        return out.astype(block.value_dtype)

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        """Convenience: ``dequantize(quantize(v))``."""
        return self.dequantize(self.quantize(vector))

    def compression_ratio(self, n: int, value_itemsize: int = 4) -> float:
        """Dense bytes divided by quantized bytes for an n-entry vector."""
        if n == 0:
            return 1.0
        from .packing import packed_nbytes

        buckets = (n + self.bucket_size - 1) // self.bucket_size
        qbytes = packed_nbytes(n, self.bits) + buckets * 4
        return n * value_itemsize / qbytes


def quantization_variance_bound(bits: int, bucket_size: int) -> float:
    """Upper bound on the relative second-moment blow-up of QSGD.

    From [4]: for s levels and d-dimensional buckets the quantized vector
    satisfies ``E||Q(v)||^2 <= (1 + min(d/s^2, sqrt(d)/s)) ||v||^2``. The
    convergence proof (Appendix C) folds this factor into the gradient
    second-moment constant M.
    """
    s = (1 << (bits - 1)) - 1
    if s <= 0:
        raise ValueError(f"bits={bits} gives no magnitude levels")
    d = float(bucket_size)
    return 1.0 + min(d / (s * s), np.sqrt(d) / s)


def _bucket_lengths(n: int, bucket: int) -> np.ndarray:
    """Lengths of the buckets covering ``n`` entries (last may be short)."""
    full, rem = divmod(n, bucket)
    if rem:
        lengths = np.full(full + 1, bucket, dtype=np.int64)
        lengths[-1] = rem
    else:
        lengths = np.full(max(full, 0), bucket, dtype=np.int64)
    return lengths
