"""Bit packing for low-precision payloads.

QSGD payloads are small unsigned integers (sign bit + magnitude levels) that
must be packed densely to realise the bandwidth savings: at 4 bits per entry,
two entries share one byte. We support the widths the paper ships (2, 4 and
8 bits per entry) plus 1-bit for sign-only schemes; all of these divide 8,
which keeps the packing a pure reshape/shift — fully vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_integers", "unpack_integers", "packed_nbytes", "SUPPORTED_BITS"]

SUPPORTED_BITS = (1, 2, 4, 8)


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes needed to pack ``count`` integers of ``bits`` bits each."""
    _check_bits(bits)
    per_byte = 8 // bits
    return (count + per_byte - 1) // per_byte


def pack_integers(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack an array of integers in ``[0, 2**bits)`` into a uint8 buffer.

    The layout is little-endian within the byte: element ``i`` of a byte
    occupies bits ``[i*bits, (i+1)*bits)``. Trailing slots of the final byte
    are zero.
    """
    _check_bits(bits)
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.ndim != 1:
        raise ValueError(f"expected 1-D code array, got shape {codes.shape}")
    if codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError(f"code {int(codes.max())} does not fit in {bits} bits")
    per_byte = 8 // bits
    padded_len = packed_nbytes(codes.size, bits) * per_byte
    if padded_len != codes.size:
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[: codes.size] = codes
        codes = padded
    lanes = codes.reshape(-1, per_byte)
    out = np.zeros(lanes.shape[0], dtype=np.uint8)
    for lane in range(per_byte):
        out |= lanes[:, lane] << np.uint8(lane * bits)
    return out


def unpack_integers(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_integers`; returns ``count`` uint8 codes."""
    _check_bits(bits)
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    per_byte = 8 // bits
    if packed.size * per_byte < count:
        raise ValueError(
            f"packed buffer of {packed.size} bytes holds at most "
            f"{packed.size * per_byte} codes, asked for {count}"
        )
    mask = np.uint8((1 << bits) - 1)
    lanes = np.empty((packed.shape[0], per_byte), dtype=np.uint8)
    for lane in range(per_byte):
        lanes[:, lane] = (packed >> np.uint8(lane * bits)) & mask
    return lanes.reshape(-1)[:count].copy()


def _check_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
