"""Self-contained micro-benchmark sweeps (the Fig. 3 experiments as a
library facility).

These are the §8.1 synthetic experiments packaged for direct use: run the
full algorithm set over a grid of node counts or densities, replay under a
network preset, and return structured rows. The command-line interface
(``python -m repro``) renders them as tables; the benchmark harness makes
the same measurements with paper-matched parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    dsar_hierarchical,
    dsar_split_allgather,
    ssar_hierarchical,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from ..costmodel.model import CostModel
from ..netsim import NetworkModel, TieredNetworkModel, replay
from ..runtime import Topology, run_ranks
from ..streams import SparseStream

__all__ = ["SweepPoint", "sweep_node_counts", "sweep_densities", "ALGORITHM_SET"]

ALGORITHM_SET = {
    "ssar_rec_dbl": ("sparse", ssar_recursive_double),
    "ssar_split_ag": ("sparse", ssar_split_allgather),
    "ssar_ring": ("sparse", ssar_ring),
    "ssar_hier": ("sparse", ssar_hierarchical),
    "dsar_split_ag": ("sparse", dsar_split_allgather),
    "dsar_hier": ("sparse", dsar_hierarchical),
    "dense_rabenseifner": ("dense", allreduce_rabenseifner),
    "dense_ring": ("dense", allreduce_ring),
    "dense_rec_dbl": ("dense", allreduce_recursive_doubling),
}


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, parameter) measurement."""

    algorithm: str
    nranks: int
    dimension: int
    nnz: int
    time_s: float
    bytes_sent: int
    messages: int

    @property
    def density(self) -> float:
        return self.nnz / self.dimension if self.dimension else 0.0


def _measure(
    name: str,
    nranks: int,
    dimension: int,
    nnz: int,
    model: "CostModel | NetworkModel | TieredNetworkModel",
    seed: int,
    backend: str = "thread",
    ranks_per_node: int | None = None,
) -> SweepPoint:
    kind, algo = ALGORITHM_SET[name]
    topology = (
        Topology.uniform(nranks, min(ranks_per_node, nranks))
        if ranks_per_node is not None
        else None
    )

    def prog(comm):
        gen = np.random.default_rng(seed + comm.rank)
        stream = SparseStream.random_uniform(dimension, nnz=nnz, rng=gen)
        if kind == "dense":
            return algo(comm, stream.to_dense())
        return algo(comm, stream)

    out = run_ranks(prog, nranks, backend=backend, topology=topology)
    # tiered models classify every message by the simulated topology
    # (no --ranks-per-node means one host: everything at intra rates)
    timing = replay(out.trace, model, topology=topology)
    return SweepPoint(
        algorithm=name,
        nranks=nranks,
        dimension=dimension,
        nnz=nnz,
        time_s=timing.makespan,
        bytes_sent=out.trace.total_bytes_sent,
        messages=out.trace.total_messages,
    )


def sweep_node_counts(
    node_counts: list[int],
    dimension: int = 1 << 20,
    density: float = 0.00781,
    network: str | NetworkModel = "aries",
    algorithms: list[str] | None = None,
    seed: int = 9000,
    backend: str = "thread",
    ranks_per_node: int | None = None,
) -> list[SweepPoint]:
    """Reduction time vs node count (the Fig. 3 left sweep).

    Returns one :class:`SweepPoint` per (algorithm, P); ``backend`` selects
    the runtime transport the measured run executes on. ``ranks_per_node``
    simulates hosts of that many ranks each, making the ``ssar_hier`` /
    ``dsar_hier`` rows exercise a real two-tier schedule. ``network``
    accepts anything :meth:`repro.costmodel.CostModel.resolve` does — a
    model instance, a preset name, a ``"tiered:INTRA/INTER"`` spec, or
    ``"calibrated:<path>"`` — so the sweeps replay under exactly the
    network object the selector reasons with; tiered models replay the
    trace against the simulated topology, so hierarchy is rewarded in
    *time*, not just byte counts.
    """
    model = CostModel.resolve(network)
    algorithms = algorithms or list(ALGORITHM_SET)
    _validate_algorithms(algorithms)
    nnz = max(1, int(dimension * density))
    return [
        _measure(name, P, dimension, nnz, model, seed, backend, ranks_per_node)
        for name in algorithms
        for P in node_counts
    ]


def sweep_densities(
    densities: list[float],
    dimension: int = 1 << 20,
    nranks: int = 8,
    network: str | NetworkModel = "gige",
    algorithms: list[str] | None = None,
    seed: int = 9000,
    backend: str = "thread",
    ranks_per_node: int | None = None,
) -> list[SweepPoint]:
    """Reduction time vs per-node density (the Fig. 3 right sweep)."""
    model = CostModel.resolve(network)
    algorithms = algorithms or list(ALGORITHM_SET)
    _validate_algorithms(algorithms)
    points = []
    for d in densities:
        if not 0.0 < d <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {d}")
        nnz = max(1, int(dimension * d))
        for name in algorithms:
            points.append(
                _measure(name, nranks, dimension, nnz, model, seed, backend, ranks_per_node)
            )
    return points


def _validate_algorithms(algorithms: list[str]) -> None:
    unknown = set(algorithms) - set(ALGORITHM_SET)
    if unknown:
        raise ValueError(
            f"unknown algorithms {sorted(unknown)}; choose from {sorted(ALGORITHM_SET)}"
        )
