"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sweep-nodes``     reduction time vs node count (Fig. 3 left shape)
``sweep-density``   reduction time vs per-node density (Fig. 3 right shape)
``expected-k``      the App. B fill-in table (Fig. 7)
``presets``         show the network model presets
``bench-kernels``   wall-clock microkernel + transport + allreduce bench,
                    written to ``BENCH_microkernels.json`` (perf trajectory)
``calibrate``       fit a tiered network model (per-tier alpha/beta + the
                    summation gamma) from measured transport/microkernel
                    curves; the written JSON is loadable anywhere a
                    ``--network`` flag accepts ``calibrated:<path>``
``serve-rank``      run one rank of a multi-host ``socket``-backend world
                    against a shared rendezvous address

All output is plain ASCII tables; every experiment is deterministic given
``--seed`` (``bench-kernels`` measures real wall clocks and is therefore
machine-dependent by design).
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict

from ..analysis import expected_union_size
from ..netsim import PRESETS, resolve_network
from ..runtime import available_backends
from .sweeps import ALGORITHM_SET, SweepPoint, sweep_densities, sweep_node_counts

__all__ = ["main", "build_parser"]


def _fmt_time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _render_points(points: list[SweepPoint], column: str) -> str:
    """Pivot sweep points into an algorithm x parameter table."""
    by_algo: dict[str, dict] = defaultdict(dict)
    keys: list = []
    for p in points:
        key = getattr(p, column)
        if key not in keys:
            keys.append(key)
        by_algo[p.algorithm][key] = p
    header = ["algorithm"] + [
        f"{column}={k:.3%}" if column == "density" else f"{column}={k}" for k in keys
    ]
    rows = []
    for algo, cells in by_algo.items():
        rows.append([algo] + [_fmt_time(cells[k].time_s) if k in cells else "-" for k in keys])
    widths = [max(len(str(r[c])) for r in [header] + rows) for c in range(len(header))]
    lines = ["  ".join(str(v).ljust(w) for v, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SparCML reproduction: sparse-collective micro-experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    nodes = sub.add_parser("sweep-nodes", help="reduction time vs node count")
    nodes.add_argument("--dimension", type=int, default=1 << 20)
    nodes.add_argument("--density", type=float, default=0.00781)
    nodes.add_argument("--nodes", type=int, nargs="+", default=[2, 4, 8, 16])
    nodes.add_argument(
        "--network", default="aries", metavar="PRESET",
        help=f"network preset ({', '.join(sorted(PRESETS))}), a "
             "'tiered:INTRA/INTER' spec (e.g. tiered:shm/ib_fdr or "
             "tiered:gige), or 'calibrated:<path.json>' fitted by "
             "`python -m repro calibrate`",
    )
    nodes.add_argument("--algorithms", nargs="+", choices=sorted(ALGORITHM_SET), default=None)
    nodes.add_argument("--seed", type=int, default=9000)
    nodes.add_argument(
        "--backend",
        choices=available_backends(),
        default="thread",
        help="runtime backend executing the measured collectives",
    )
    nodes.add_argument(
        "--ranks-per-node", type=int, default=None, metavar="R",
        help="simulate hosts of R ranks each (enables the ssar_hier rows)",
    )

    dens = sub.add_parser("sweep-density", help="reduction time vs density")
    dens.add_argument("--dimension", type=int, default=1 << 20)
    dens.add_argument("--densities", type=float, nargs="+", default=[0.001, 0.01, 0.05, 0.10])
    dens.add_argument("--nranks", type=int, default=8)
    dens.add_argument(
        "--network", default="gige", metavar="PRESET",
        help=f"network preset ({', '.join(sorted(PRESETS))}), a "
             "'tiered:INTRA/INTER' spec (e.g. tiered:shm/ib_fdr or "
             "tiered:gige), or 'calibrated:<path.json>' fitted by "
             "`python -m repro calibrate`",
    )
    dens.add_argument("--algorithms", nargs="+", choices=sorted(ALGORITHM_SET), default=None)
    dens.add_argument("--seed", type=int, default=9000)
    dens.add_argument(
        "--backend",
        choices=available_backends(),
        default="thread",
        help="runtime backend executing the measured collectives",
    )
    dens.add_argument(
        "--ranks-per-node", type=int, default=None, metavar="R",
        help="simulate hosts of R ranks each (enables the ssar_hier rows)",
    )

    ek = sub.add_parser("expected-k", help="App. B expected reduced size table")
    ek.add_argument("--dimension", type=int, default=512)
    ek.add_argument("--k-values", type=int, nargs="+", default=[1, 4, 16, 64, 128, 256])
    ek.add_argument("--nodes", type=int, nargs="+", default=[2, 4, 8, 16, 32, 64])

    bench = sub.add_parser(
        "bench-kernels",
        help="time merge/encode/decode microkernels and per-backend allreduce",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small sizes, one repeat: a seconds-long smoke pass",
    )
    bench.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_microkernels.json at the repo root)",
    )
    bench.add_argument("--dimension", type=int, default=None)
    bench.add_argument("--densities", type=float, nargs="+", default=None)
    bench.add_argument("--nranks", type=int, default=None)
    bench.add_argument(
        "--backends", nargs="+", choices=available_backends(), default=None
    )
    bench.add_argument(
        "--topology", default=None, metavar="HxR",
        help="simulated world for the allreduce/hierarchy layers, e.g. 2x2 "
             "(must describe --nranks ranks; default: two hosts, even split)",
    )
    bench.add_argument(
        "--chunks", type=int, default=4,
        help="pipeline depth of the overlap layer's chunked ssar_hier",
    )
    from .benchkernels import LAYERS

    bench.add_argument(
        "--layers", nargs="+", choices=list(LAYERS), default=None,
        help="measure only these layers (default: all)",
    )

    cal = sub.add_parser(
        "calibrate",
        help="fit alpha/beta/gamma from measured curves -> calibrated JSON",
        description=(
            "Measure (or reuse from a bench-kernels JSON) the per-backend "
            "transport round-trip curve and the summation microkernels, fit "
            "per-tier alpha/beta by least squares and gamma from the merge "
            "kernel, and write the tiered model as JSON. Load it anywhere a "
            "--network flag is accepted with 'calibrated:<path>'."
        ),
    )
    cal.add_argument(
        "--quick", action="store_true",
        help="fewer iterations and sizes: a seconds-long smoke fit",
    )
    cal.add_argument(
        "--out", default=None,
        help="output JSON path (default: results/calibrated_network.json)",
    )
    cal.add_argument(
        "--bench", default=None, metavar="JSON",
        help="reuse the transport/microkernel curves of an existing "
             "bench-kernels document instead of re-measuring (falls back to "
             "measuring if it lacks enough transport sizes)",
    )
    cal.add_argument(
        "--name", default="calibrated",
        help="model name embedded in the JSON (default: calibrated)",
    )
    cal.add_argument(
        "--dimension", type=int, default=None,
        help="vector dimension the measurement streams are drawn from",
    )

    serve = sub.add_parser(
        "serve-rank",
        help="run one rank of a multi-host socket-backend world",
        description=(
            "Join a socket-backend world from this machine. Rank 0 listens: it "
            "binds the rendezvous address and serves the (rank, host, port) "
            "exchange; every other rank points at the same --rendezvous. "
            "Example (two hosts):  host A:  python -m repro serve-rank "
            "--rendezvous hostA:29400 --rank 0 --nranks 2 --host hostA   "
            "host B:  python -m repro serve-rank --rendezvous hostA:29400 "
            "--rank 1 --nranks 2 --host hostB"
        ),
    )
    serve.add_argument(
        "--rendezvous", required=True, metavar="HOST:PORT",
        help="rendezvous address (rank 0 binds it; everyone else connects)",
    )
    serve.add_argument("--rank", type=int, required=True, help="this rank's id")
    serve.add_argument("--nranks", type=int, required=True, help="world size P")
    serve.add_argument(
        "--program", default=None, metavar="MODULE:FUNCTION",
        help="rank program fn(comm) to run (default: built-in sparse-allreduce demo)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address peers use to reach this rank (the machine's routable IP "
             "on a real cluster; the loopback default only spans one host)",
    )
    serve.add_argument(
        "--timeout", type=float, default=60.0,
        help="seconds to wait for the whole world to assemble",
    )
    serve.add_argument(
        "--topology", default=None, metavar="HxR",
        help="override the rendezvous-derived rank->host map with a "
             "simulated one (e.g. 2x2; must describe --nranks ranks)",
    )
    serve.add_argument(
        "--op-timeout", type=float, default=None, metavar="SECONDS",
        help="per-operation send/recv deadline: a stalled peer raises "
             "CommTimeoutError instead of hanging for the whole run",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="inject deterministic faults into this rank's transport, e.g. "
             "'seed=7,drop=0.02,delay=0.1/0.005,kill=1@5' "
             "(see repro.runtime.faults.FaultPlan.from_spec)",
    )
    serve.add_argument(
        "--elastic", action="store_true",
        help="(rank 0 only) keep the rendezvous alive after assembly so "
             "dead ranks can come back: the world can shrink() past a "
             "failure and later readmit a --rejoin rank",
    )
    serve.add_argument(
        "--rejoin", action="store_true",
        help="re-enter a running world that shrank past this rank's death "
             "(requires the world to have been assembled with --elastic); "
             "the program receives the regrown communicator once the "
             "survivors commit the join at their next ElasticContext.step()",
    )

    sub.add_parser("presets", help="show network model presets")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "presets":
        for model in PRESETS.values():
            print(model.describe())
        return 0

    if args.command in ("sweep-nodes", "sweep-density"):
        # validate the network spec up front for an argparse-style error
        try:
            resolve_network(args.network)
        except ValueError as exc:
            print(f"--network: {exc}", file=sys.stderr)
            return 2

    if args.command == "expected-k":
        n = args.dimension
        header = ["k \\ P"] + [str(p) for p in args.nodes]
        print("  ".join(h.ljust(8) for h in header))
        for k in args.k_values:
            if k > n:
                print(f"(skipping k={k} > N={n})", file=sys.stderr)
                continue
            row = [str(k)] + [f"{expected_union_size(k, n, p):.1f}" for p in args.nodes]
            print("  ".join(v.ljust(8) for v in row))
        return 0

    if args.command == "serve-rank":
        from ..runtime.socket_backend import serve_rank

        host, sep, port = args.rendezvous.rpartition(":")
        if not sep or not host or not port.isdigit():
            print(
                f"--rendezvous must look like HOST:PORT, got {args.rendezvous!r}",
                file=sys.stderr,
            )
            return 2
        if args.rejoin and args.rank == 0:
            print(
                "--rejoin cannot be used by rank 0: it owns the rendezvous "
                "the surviving world is reachable through",
                file=sys.stderr,
            )
            return 2
        from ..runtime import RunConfig

        result = serve_rank(
            (host, int(port)),
            args.rank,
            args.nranks,
            program=args.program,
            host=args.host,
            rendezvous_timeout=args.timeout,
            verbose=True,  # log the assembled (rank, host) grouping
            config=RunConfig(
                topology=args.topology,
                op_timeout=args.op_timeout,
                fault_plan=args.fault_plan,
            ),
            elastic=args.elastic,
            rejoin=args.rejoin,
        )
        print(f"rank {args.rank}/{args.nranks} finished: {result!r}")
        return 0

    if args.command == "bench-kernels":
        from .benchkernels import render_summary, run_bench, write_bench

        doc = run_bench(
            quick=args.quick,
            dimension=args.dimension,
            densities=args.densities,
            nranks=args.nranks,
            backends=args.backends,
            topology=args.topology,
            chunks=args.chunks,
            layers=args.layers,
        )
        path = write_bench(doc, args.out)
        print(render_summary(doc))
        print(f"\nwrote {path}")
        return 0

    if args.command == "calibrate":
        from ..costmodel.calibrate import run_calibration

        model, path, provenance = run_calibration(
            out=args.out,
            quick=args.quick,
            dimension=args.dimension,
            bench=args.bench,
            name=args.name,
        )
        print(model.describe())
        fits = provenance.get("fits", {})
        for tier in ("intra", "inter"):
            fit = fits.get(tier)
            if fit:
                print(
                    f"  {tier}: backend={fit['backend']}  "
                    f"points={len(fit['points'])}"
                )
        print(f"wrote {path}  (load with --network calibrated:{path})")
        return 0

    if args.command == "sweep-nodes":
        points = sweep_node_counts(
            args.nodes,
            dimension=args.dimension,
            density=args.density,
            network=args.network,
            algorithms=args.algorithms,
            seed=args.seed,
            backend=args.backend,
            ranks_per_node=args.ranks_per_node,
        )
        print(
            f"reduction time vs node count (N={args.dimension}, "
            f"d={args.density:.3%}, {args.network})"
        )
        print(_render_points(points, "nranks"))
        return 0

    if args.command == "sweep-density":
        points = sweep_densities(
            args.densities,
            dimension=args.dimension,
            nranks=args.nranks,
            network=args.network,
            algorithms=args.algorithms,
            seed=args.seed,
            backend=args.backend,
            ranks_per_node=args.ranks_per_node,
        )
        print(
            f"reduction time vs density (N={args.dimension}, "
            f"P={args.nranks}, {args.network})"
        )
        print(_render_points(points, "density"))
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
