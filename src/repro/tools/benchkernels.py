"""Wall-clock perf harness: ``python -m repro bench-kernels``.

Times the library's hot paths with real clocks (no replay model) and
writes the results as one JSON document, ``BENCH_microkernels.json`` at
the repo root by default, so successive PRs have a numeric trajectory to
diff against. Five layers are measured (``--layers`` selects a subset):

``microkernels``
    the §5.1 summation kernels (sparse merge with and without a reused
    :class:`~repro.streams.MergeScratch`, in-place stream addition) and
    the wire codec (vectored encode, single-copy decode);
``transport``
    per-backend point-to-point round-trip latency of a sparse stream
    between two real ranks — the purest backend comparison (the
    ``process``/``shmem`` gap is the pipe-vs-shared-memory story; the
    ``socket`` rows put the TCP loopback mesh on the same axis);
``allreduce``
    per-backend, per-algorithm end-to-end sparse allreduce time at the
    paper's micro-benchmark shape (N = 2^20, uniform random support)
    across densities, measured as sustained back-to-back operations
    inside the ranks (robust to barrier skew and process start-up). The
    world carries a simulated two-host topology so ``ssar_hier`` rows
    measure the real hierarchical schedule. Since schema 5 every measured
    row carries ``predicted_s`` — the
    :class:`~repro.costmodel.CostModel` allreduce time under the tiered
    replay preset on the same topology — and the document records an
    ``allreduce_ordering_check`` comparing the predicted and measured
    algorithm *orderings* (absolute times differ wildly between a real
    laptop and the modeled cluster; the ordering of clearly-separated
    predictions should not);
``hierarchy``
    byte accounting per algorithm on the simulated two-host world at the
    headline density: total vs *inter-node* traffic (the volume
    hierarchical reduction exists to shrink), the two-tier Appendix-B
    expectations for reference, and — new in schema 3 — the replayed
    makespan of each algorithm's trace under a flat preset
    (``replay_flat_s``) and under the matching tiered preset with the
    simulated topology (``replay_tiered_s``), so the perf trajectory
    captures whether the two-tier replay rewards hierarchy, not just
    whether fewer bytes crossed the slow tier;
``overlap``
    new in schema 4: achieved compute/communication overlap per backend
    for the *chunked* non-blocking hierarchical allreduce (§7). Each rank
    times a fixed numpy busywork loop alone, the blocking chunked
    ``ssar_hier`` alone, the two run back to back, and the overlapped
    schedule (launch through ``i_collective``, compute, join); the
    ``overlap_fraction`` column is the share of the hideable time —
    ``min(compute, comm)`` — actually hidden. Next to the measurements
    sits the *predicted* pipelined makespan: the tiered-replay time of the
    chunked trace fed through
    :func:`~repro.netsim.replay.overlap_step_time`, so prediction and
    reality live in the same figure.

Every measurement reports ``best`` (minimum) and ``median`` seconds.
``--quick`` shrinks sizes and iteration counts to a few seconds total for
CI smoke use; the committed baseline is produced by a full run.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..analysis.density import expected_two_tier_sizes
from ..collectives import (
    dsar_hierarchical,
    dsar_split_allgather,
    ssar_hierarchical,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from ..costmodel.model import CostModel, Instance
from ..netsim import IB_FDR, TIERED_IB_FDR, replay
from ..netsim.replay import overlap_step_time
from ..runtime import Topology, bytes_by_tier, normalize_topology, run_ranks
from ..runtime.nonblocking import i_collective
from ..runtime.wire import decode_message, encode_message
from ..streams import MergeScratch, SparseStream, add_streams_, merge_sparse_pairs

__all__ = ["run_bench", "write_bench", "DEFAULT_OUT", "LAYERS"]

#: the selectable measurement layers, in document order.
LAYERS = ("microkernels", "transport_roundtrip", "allreduce", "hierarchy", "overlap")

#: schema version of the JSON document (bump on layout changes).
#: 3: dsar rows in the allreduce/hierarchy layers + replayed makespans
#: (flat vs tiered preset) per hierarchy row.
#: 4: the ``overlap`` layer (measured compute/comm overlap per backend for
#: the chunked non-blocking hierarchy + the predicted pipelined makespan)
#: and optional layer selection (absent layers are simply omitted).
#: 5: ``predicted_s`` (CostModel time under the tiered replay preset) on
#: every allreduce row + the ``allreduce_ordering_check`` block.
SCHEMA = 5

#: repo root (src/repro/tools/ -> three levels up).
DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_microkernels.json"

ALGOS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
    "ssar_hier": ssar_hierarchical,
    "dsar_split_ag": dsar_split_allgather,
    "dsar_hier": dsar_hierarchical,
}

#: the replay models of the hierarchy layer: one flat preset and its
#: tiered counterpart (shared-memory intra + the same inter tier).
REPLAY_FLAT = IB_FDR
REPLAY_TIERED = TIERED_IB_FDR


def _two_host_topology(nranks: int) -> Topology:
    """The simulated cluster of the bench: two hosts, ranks split evenly."""
    return Topology.uniform(nranks, max(1, (nranks + 1) // 2))


def _stats(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {"best_s": float(arr.min()), "median_s": float(np.median(arr)), "n": int(arr.size)}


def _time(fn: Callable[[], Any], iters: int, warmup: int = 2) -> dict[str, float]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(iters):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return _stats(samples)


# ----------------------------------------------------------------------
# layer 1: microkernels
# ----------------------------------------------------------------------
def _time_add_streams(a: SparseStream, b: SparseStream, scratch: MergeScratch, iters: int) -> dict[str, float]:
    """Time the in-place add alone: the fresh accumulator each iteration
    needs is prepared *outside* the clocked window."""
    samples = []
    for _ in range(iters + 2):
        acc = a.copy()
        t0 = time.perf_counter()
        add_streams_(acc, b, scratch=scratch)
        samples.append(time.perf_counter() - t0)
    return _stats(samples[2:])  # first two are warmup


def _bench_microkernels(dimension: int, nnz: int, iters: int) -> dict[str, Any]:
    gen = np.random.default_rng(11)
    a = SparseStream.random_uniform(dimension, nnz, gen)
    b = SparseStream.random_uniform(dimension, nnz, gen)
    scratch = MergeScratch()
    blob = bytes(encode_message(1, 0, a.nbytes_payload, a))

    out: dict[str, Any] = {
        "merge_sparse_pairs": _time(
            lambda: merge_sparse_pairs(a.indices, a.values, b.indices, b.values), iters
        ),
        "merge_sparse_pairs_scratch": _time(
            lambda: merge_sparse_pairs(
                a.indices, a.values, b.indices, b.values, scratch=scratch
            ),
            iters,
        ),
        "add_streams_sparse_sparse": _time_add_streams(a, b, scratch, iters),
        "encode_message_stream": _time(
            lambda: encode_message(1, 0, a.nbytes_payload, a), iters
        ),
        "decode_message_stream": _time(lambda: decode_message(blob), iters),
        "decode_message_stream_zero_copy": _time(
            lambda: decode_message(blob, copy=False), iters
        ),
    }
    out["params"] = {"dimension": dimension, "nnz": nnz, "wire_bytes": len(blob)}
    return out


# ----------------------------------------------------------------------
# layer 2: transport round trip (module-level so spawn platforms work)
# ----------------------------------------------------------------------
def _pingpong_rank(comm, dimension: int, nnz: int, iters: int):
    gen = np.random.default_rng(7)
    s = SparseStream.random_uniform(dimension, nnz, gen)
    peer = 1 - comm.rank
    def once():
        if comm.rank == 0:
            comm.send(s, peer, tag=2)
            comm.recv(peer, tag=2)
        else:
            comm.recv(peer, tag=2)
            comm.send(s, peer, tag=2)
    for _ in range(3):
        once()
    samples = []
    for _ in range(iters):
        t0 = time.perf_counter()
        once()
        samples.append(time.perf_counter() - t0)
    return samples


def _bench_transport(
    backends: list[str], dimension: int, nnz_list: list[int], iters: int
) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for backend in backends:
        if backend == "thread":
            continue  # in-process: no transport to speak of; e2e covers it
        per_size = {}
        for nnz in nnz_list:
            res = run_ranks(
                _pingpong_rank, 2, dimension, nnz, iters, backend=backend, timeout=300.0
            )
            per_size[f"nnz_{nnz}"] = _stats(res[0])
        out[backend] = per_size
    return out


# ----------------------------------------------------------------------
# layer 3: end-to-end allreduce
# ----------------------------------------------------------------------
def _allreduce_rank(comm, algo_name: str, dimension: int, nnz: int, iters: int):
    algo = ALGOS[algo_name]
    gen = np.random.default_rng(100 + comm.rank)
    s = SparseStream.random_uniform(dimension, nnz, gen)
    for _ in range(2):
        algo(comm, s)
    comm.barrier()
    t0 = time.perf_counter()
    for _ in range(iters):
        algo(comm, s)
    comm.barrier()
    return (time.perf_counter() - t0) / iters


def _bench_allreduce(
    backends: list[str],
    algos: list[str],
    dimension: int,
    densities: list[float],
    nranks: int,
    iters: int,
    repeats: int,
    topology: Topology,
) -> dict[str, Any]:
    model = CostModel(REPLAY_TIERED)
    out: dict[str, Any] = {}
    for backend in backends:
        per_algo: dict[str, Any] = {}
        for algo in algos:
            per_density = {}
            for density in densities:
                nnz = max(1, int(round(dimension * density)))
                samples = []
                for _ in range(repeats):
                    res = run_ranks(
                        _allreduce_rank, nranks, algo, dimension, nnz, iters,
                        backend=backend, timeout=600.0, topology=topology,
                    )
                    samples.append(max(res.results))  # slowest rank = op latency
                row = _stats(samples)
                # backend-independent analytic prediction next to the
                # measurement, so the trajectory shows model vs reality
                row["predicted_s"] = model.predict(
                    Instance(dimension, nranks, nnz), algo, topology=topology
                ).time_s
                per_density[f"density_{density:g}"] = row
            per_algo[algo] = per_density
        out[backend] = per_algo
    return out


def _check_allreduce_ordering(
    allreduce: dict[str, Any], ratio_band: float = 10.0, slack: float = 1.5
) -> dict[str, Any]:
    """Compare the CostModel's algorithm *ordering* against the clock.

    Absolute predicted times model a cluster, not this machine, so they
    are not asserted. What must hold is the ordering of clearly-separated
    pairs: when the model says algorithm A beats algorithm B by at least
    ``ratio_band`` (predicted_b / predicted_a >= band), the measured
    clock must not show the opposite by more than ``slack`` (measured_a
    > slack * measured_b). Pairs inside the band are noise and skipped.
    """
    violations: list[dict[str, Any]] = []
    pairs_checked = 0
    for backend, per_algo in allreduce.items():
        density_keys = set()
        for rows in per_algo.values():
            density_keys.update(rows)
        for dkey in sorted(density_keys):
            rows = {
                algo: per_algo[algo][dkey]
                for algo in per_algo
                if dkey in per_algo[algo] and "predicted_s" in per_algo[algo][dkey]
            }
            names = sorted(rows)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    pa, pb = rows[a]["predicted_s"], rows[b]["predicted_s"]
                    if min(pa, pb) <= 0:
                        continue
                    fast, slow = (a, b) if pa <= pb else (b, a)
                    if max(pa, pb) / min(pa, pb) < ratio_band:
                        continue
                    pairs_checked += 1
                    m_fast = rows[fast]["best_s"]
                    m_slow = rows[slow]["best_s"]
                    if m_fast > slack * m_slow:
                        violations.append({
                            "backend": backend,
                            "density": dkey,
                            "predicted_fast": fast,
                            "predicted_slow": slow,
                            "predicted_ratio": round(max(pa, pb) / min(pa, pb), 2),
                            "measured_fast_s": m_fast,
                            "measured_slow_s": m_slow,
                        })
    return {
        "ratio_band": ratio_band,
        "measured_slack": slack,
        "pairs_checked": pairs_checked,
        "violations": violations,
        "ok": not violations,
    }


# ----------------------------------------------------------------------
# layer 4: per-tier byte accounting on the simulated two-host world
# ----------------------------------------------------------------------
def _one_allreduce_rank(comm, algo_name: str, dimension: int, nnz: int):
    algo = ALGOS[algo_name]
    gen = np.random.default_rng(100 + comm.rank)
    algo(comm, SparseStream.random_uniform(dimension, nnz, gen))


def _bench_hierarchy(
    algos: list[str], dimension: int, nnz: int, nranks: int, topology: Topology
) -> dict[str, Any]:
    """Classify each algorithm's traffic into intra-/inter-host bytes and
    replay it under a flat and a tiered preset.

    Byte accounting and traces are backend-invariant (pinned by the
    equivalence suite), so one thread-backend run per algorithm suffices.
    Two columns matter: *inter-node bytes* — the volume hierarchical
    reduction shrinks — and ``replay_tiered_s``, the predicted time under
    the two-tier model (shared-memory intra + IB inter, shared per-host
    uplink) where that shrinkage must show up as a speedup over the
    ``replay_flat_s`` ordering.
    """
    k_local, k_total = expected_two_tier_sizes(
        nnz, dimension, nranks, topology.max_ranks_per_node
    )
    out: dict[str, Any] = {
        "topology": topology.describe(),
        "nnz_per_rank": nnz,
        "expected_k_local": round(k_local, 1),
        "expected_k_total": round(k_total, 1),
        "replay_flat_preset": REPLAY_FLAT.name,
        "replay_tiered_preset": REPLAY_TIERED.name,
        "per_algorithm": {},
    }
    for algo in algos:
        res = run_ranks(
            _one_allreduce_rank, nranks, algo, dimension, nnz,
            backend="thread", timeout=600.0, topology=topology,
        )
        intra, inter = bytes_by_tier(res.trace, topology)
        out["per_algorithm"][algo] = {
            "total_bytes": intra + inter,
            "intra_node_bytes": intra,
            "inter_node_bytes": inter,
            "messages": res.trace.total_messages,
            "replay_flat_s": replay(res.trace, REPLAY_FLAT).makespan,
            "replay_tiered_s": replay(
                res.trace, REPLAY_TIERED, topology=topology
            ).makespan,
        }
    return out


# ----------------------------------------------------------------------
# layer 5: achieved vs predicted compute/communication overlap
# ----------------------------------------------------------------------
def _overlap_rank(comm, dimension: int, nnz: int, chunks: int, iters: int):
    """Time compute alone, comm alone, the two back to back, and overlapped.

    The busywork is repeated large dot products — BLAS releases the GIL,
    so the background collective makes genuine progress underneath it on
    every backend. The repetition count is *calibrated* in-rank so the
    compute window roughly matches one collective's wall time: overlap is
    only measurable when there is a comparable amount of work to hide
    behind, whatever the backend's absolute speed is.
    """
    gen = np.random.default_rng(100 + comm.rank)
    s = SparseStream.random_uniform(dimension, nnz, gen)
    work = np.random.default_rng(7).standard_normal(max(dimension, 1 << 18))

    float(np.dot(work, work))  # BLAS warmup before calibration
    t0 = time.perf_counter()
    ssar_hierarchical(comm, s, chunks=chunks)
    t_comm = time.perf_counter() - t0
    t0 = time.perf_counter()
    float(np.dot(work, work))
    t_dot = time.perf_counter() - t0
    reps = min(10_000, max(1, int(round(t_comm / max(t_dot, 1e-9)))))

    def busywork() -> float:
        acc = 0.0
        for _ in range(reps):
            acc += float(np.dot(work, work))
        return acc

    busywork()
    comm.barrier()
    out: dict[str, list[float]] = {
        "compute_s": [], "comm_s": [], "blocking_s": [], "overlapped_s": []
    }
    for _ in range(iters):
        t0 = time.perf_counter()
        busywork()
        out["compute_s"].append(time.perf_counter() - t0)
        comm.barrier()
        t0 = time.perf_counter()
        ssar_hierarchical(comm, s, chunks=chunks)
        out["comm_s"].append(time.perf_counter() - t0)
        comm.barrier()
        t0 = time.perf_counter()
        ssar_hierarchical(comm, s, chunks=chunks)
        busywork()
        out["blocking_s"].append(time.perf_counter() - t0)
        comm.barrier()
        t0 = time.perf_counter()
        handle = i_collective(comm, s, "ssar_hier", chunks=chunks)
        busywork()
        handle.wait()
        out["overlapped_s"].append(time.perf_counter() - t0)
        comm.barrier()
    out["compute_reps"] = reps
    return out


def _one_chunked_rank(comm, dimension: int, nnz: int, chunks: int):
    gen = np.random.default_rng(100 + comm.rank)
    ssar_hierarchical(
        comm, SparseStream.random_uniform(dimension, nnz, gen), chunks=chunks
    )


def _bench_overlap(
    backends: list[str],
    dimension: int,
    nnz: int,
    nranks: int,
    chunks: int,
    iters: int,
    topology: Topology,
) -> dict[str, Any]:
    """Measured overlap per backend + the tiered-replay prediction.

    ``overlap_fraction`` is ``(blocking - overlapped) / min(compute, comm)``
    on the medians: 1.0 means the entire hideable window was hidden, 0
    means the non-blocking schedule bought nothing. The ``predicted``
    block replays the chunked thread-backend trace under the tiered preset
    and feeds it through :func:`~repro.netsim.replay.overlap_step_time`,
    putting the analytic pipelined makespan next to the measured rows.
    """
    out: dict[str, Any] = {
        "algorithm": "ssar_hier",
        "chunks": chunks,
        "nnz_per_rank": nnz,
        "topology": topology.describe(),
        "per_backend": {},
    }
    for backend in backends:
        res = run_ranks(
            _overlap_rank, nranks, dimension, nnz, chunks, iters,
            backend=backend, timeout=600.0, topology=topology,
        )
        metrics: dict[str, Any] = {
            "compute_reps": max(r["compute_reps"] for r in res.results),
        }
        for key in ("compute_s", "comm_s", "blocking_s", "overlapped_s"):
            # slowest rank per iteration = the op's latency that iteration
            metrics[key] = _stats(
                [max(r[key][i] for r in res.results) for i in range(iters)]
            )
        hideable = min(metrics["compute_s"]["median_s"], metrics["comm_s"]["median_s"])
        saved = metrics["blocking_s"]["median_s"] - metrics["overlapped_s"]["median_s"]
        metrics["overlap_fraction"] = (
            round(saved / hideable, 3) if hideable > 0 else 0.0
        )
        out["per_backend"][backend] = metrics

    trace_run = run_ranks(
        _one_chunked_rank, nranks, dimension, nnz, chunks,
        backend="thread", timeout=600.0, topology=topology,
    )
    comm_pred = replay(trace_run.trace, REPLAY_TIERED, topology=topology).makespan
    first = next(iter(out["per_backend"].values()), None)
    compute_ref = first["compute_s"]["median_s"] if first else 0.0
    out["predicted"] = {
        "replay_tiered_preset": REPLAY_TIERED.name,
        "comm_tiered_s": comm_pred,
        "compute_ref_s": compute_ref,
        "blocking_makespan_s": overlap_step_time(compute_ref, comm_pred, False),
        "pipelined_makespan_s": overlap_step_time(compute_ref, comm_pred, True, chunks),
    }
    return out


# ----------------------------------------------------------------------
# harness entry points
# ----------------------------------------------------------------------
def run_bench(
    quick: bool = False,
    *,
    dimension: int | None = None,
    densities: list[float] | None = None,
    nranks: int | None = None,
    backends: list[str] | None = None,
    algos: list[str] | None = None,
    topology: str | None = None,
    chunks: int = 4,
    layers: list[str] | None = None,
) -> dict[str, Any]:
    """Execute the selected layers and return the JSON-ready document.

    ``topology`` is an ``HxR`` spec for the simulated world the allreduce
    and hierarchy layers run on (it must describe ``nranks`` ranks);
    default is two hosts with the ranks split evenly. ``chunks`` is the
    pipeline depth of the overlap layer's chunked hierarchy; ``layers``
    selects a subset of :data:`LAYERS` (default: all) — omitted layers
    are simply absent from the document.
    """
    layers = list(layers) if layers else list(LAYERS)
    unknown = sorted(set(layers) - set(LAYERS))
    if unknown:
        raise ValueError(f"unknown bench layers {unknown}; choose from {list(LAYERS)}")
    if quick:
        dimension = dimension or (1 << 16)
        densities = densities or [0.01]
        # 4 ranks so the default two-host world is genuinely hierarchical
        # (2 hosts x 2 ranks) and the ssar_hier rows exercise the real
        # tree-reduce/leader/bcast schedule even in the CI smoke pass
        nranks = nranks or 4
        micro_iters, rt_iters, e2e_iters, repeats = 3, 3, 1, 1
        overlap_iters = 3
        rt_sizes = [max(1, dimension // 100)]
    else:
        dimension = dimension or (1 << 20)
        densities = densities or [0.001, 0.01, 0.05]
        nranks = nranks or 4
        micro_iters, rt_iters, e2e_iters, repeats = 30, 40, 15, 3
        overlap_iters = 10
        rt_sizes = [1311, 10486, 41943]  # ~10 KB / ~84 KB / ~335 KB frames
    backends = backends or ["thread", "process", "shmem", "socket"]
    algos = algos or sorted(ALGOS)
    headline_nnz = int(round(dimension * 0.01))
    topo = (
        normalize_topology(topology, nranks)
        if topology is not None
        else _two_host_topology(nranks)
    )

    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "quick": quick,
        "params": {
            "dimension": dimension,
            "densities": densities,
            "nranks": nranks,
            "backends": backends,
            "algorithms": algos,
            "topology": topo.describe(),
            "layers": layers,
            "cpu_count": __import__("os").cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    if "microkernels" in layers:
        doc["microkernels"] = _bench_microkernels(dimension, headline_nnz, micro_iters)
    if "transport_roundtrip" in layers:
        doc["transport_roundtrip"] = _bench_transport(
            backends, dimension, rt_sizes, rt_iters
        )
    if "allreduce" in layers:
        doc["allreduce"] = _bench_allreduce(
            backends, algos, dimension, densities, nranks, e2e_iters, repeats, topo
        )
        check = _check_allreduce_ordering(doc["allreduce"])
        check["predicted_network"] = REPLAY_TIERED.name
        doc["allreduce_ordering_check"] = check
        if quick and not check["ok"]:
            raise AssertionError(
                "CostModel vs measured algorithm ordering disagrees beyond the "
                f"tolerance band: {check['violations']}"
            )
    if "hierarchy" in layers:
        doc["hierarchy"] = _bench_hierarchy(algos, dimension, headline_nnz, nranks, topo)
    if "overlap" in layers:
        doc["overlap"] = _bench_overlap(
            backends, dimension, headline_nnz, nranks, chunks, overlap_iters, topo
        )

    # headline comparison: shmem vs process at the reference point
    # (N = 2^20 in full mode, density 1 %): end-to-end per algorithm plus
    # the transport round trip at the closest measured frame size
    headline: dict[str, Any] = {}
    allreduce = doc.get("allreduce", {})
    key = f"density_{0.01:g}"
    if "process" in allreduce and "shmem" in allreduce:
        for algo in algos:
            p = allreduce["process"][algo].get(key)
            s = allreduce["shmem"][algo].get(key)
            if p and s:
                headline[f"e2e_{algo}_speedup_shmem_vs_process"] = round(
                    p["best_s"] / s["best_s"], 3
                )
    transport = doc.get("transport_roundtrip", {})
    if "process" in transport and "shmem" in transport:
        for size_key in transport["process"]:
            p, s = transport["process"][size_key], transport["shmem"][size_key]
            headline[f"transport_{size_key}_speedup_shmem_vs_process"] = round(
                p["median_s"] / s["median_s"], 3
            )
    doc["headline"] = headline
    return doc


def write_bench(doc: dict[str, Any], out_path: str | Path | None = None) -> Path:
    path = Path(out_path) if out_path is not None else DEFAULT_OUT
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def render_summary(doc: dict[str, Any]) -> str:
    """Human-readable digest of a bench document (for the CLI)."""
    lines = []
    p = doc["params"]
    lines.append(
        f"bench-kernels  N={p['dimension']}  P={p['nranks']}  "
        f"quick={doc['quick']}  cpus={p.get('cpu_count')}"
    )
    mk = doc.get("microkernels")
    if mk:
        lines.append("microkernels (best):")
        for name, st in mk.items():
            if name == "params":
                continue
            lines.append(f"  {name:34s} {st['best_s'] * 1e6:9.1f}us")
    tr = doc.get("transport_roundtrip", {})
    if tr:
        lines.append("transport round trip, 2 ranks (median):")
        sizes = next(iter(tr.values())).keys()
        for size_key in sizes:
            row = "  ".join(
                f"{bk}={tr[bk][size_key]['median_s'] * 1e6:8.1f}us" for bk in tr
            )
            lines.append(f"  {size_key:12s} {row}")
    if doc.get("allreduce"):
        lines.append("allreduce end-to-end (best, per op; predicted in parens):")
        for bk, per_algo in doc["allreduce"].items():
            for algo, per_d in per_algo.items():
                row = "  ".join(
                    f"{dk.split('_', 1)[1]}={st['best_s'] * 1e3:8.2f}ms"
                    + (
                        f" ({st['predicted_s'] * 1e3:.2f}ms)"
                        if "predicted_s" in st
                        else ""
                    )
                    for dk, st in per_d.items()
                )
                lines.append(f"  {bk:8s} {algo:14s} {row}")
        check = doc.get("allreduce_ordering_check")
        if check:
            lines.append(
                f"  ordering check vs {check.get('predicted_network', '?')}: "
                f"{check['pairs_checked']} separated pairs, "
                f"{len(check['violations'])} violations"
            )
    hier = doc.get("hierarchy")
    if hier:
        has_replay = "replay_tiered_preset" in hier  # schema >= 3
        replay_note = (
            f", replay {hier['replay_flat_preset']} flat vs "
            f"{hier['replay_tiered_preset']} tiered"
            if has_replay
            else ""
        )
        lines.append(
            f"byte accounting on {hier['topology']} (inter-node / total{replay_note}):"
        )
        for algo, row in hier["per_algorithm"].items():
            replay_cols = (
                f"  {row['replay_flat_s'] * 1e3:8.2f}ms flat"
                f"  {row['replay_tiered_s'] * 1e3:8.2f}ms tiered"
                if has_replay
                else ""
            )
            lines.append(
                f"  {algo:14s} {row['inter_node_bytes'] / 1e3:9.1f}kB / "
                f"{row['total_bytes'] / 1e3:9.1f}kB{replay_cols}"
            )
    ov = doc.get("overlap")
    if ov:
        lines.append(
            f"overlap ({ov['algorithm']}, chunks={ov['chunks']}, "
            f"{ov['topology']}; median):"
        )
        for bk, m in ov["per_backend"].items():
            lines.append(
                f"  {bk:8s} compute={m['compute_s']['median_s'] * 1e3:7.2f}ms"
                f"  comm={m['comm_s']['median_s'] * 1e3:7.2f}ms"
                f"  blocking={m['blocking_s']['median_s'] * 1e3:7.2f}ms"
                f"  overlapped={m['overlapped_s']['median_s'] * 1e3:7.2f}ms"
                f"  hidden={m['overlap_fraction'] * 100:5.1f}%"
            )
        pred = ov.get("predicted")
        if pred:
            lines.append(
                f"  predicted ({pred['replay_tiered_preset']} tiered):"
                f" blocking={pred['blocking_makespan_s'] * 1e3:7.2f}ms"
                f"  pipelined={pred['pipelined_makespan_s'] * 1e3:7.2f}ms"
            )
    if doc.get("headline"):
        lines.append("headline speedups (shmem vs process):")
        for k, v in doc["headline"].items():
            lines.append(f"  {k:48s} {v:.2f}x")
    return "\n".join(lines)
