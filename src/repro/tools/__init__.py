"""User-facing experiment tooling: sweeps, the perf harness and the CLI."""

from .benchkernels import run_bench, write_bench
from .cli import build_parser, main
from .sweeps import ALGORITHM_SET, SweepPoint, sweep_densities, sweep_node_counts

__all__ = [
    "build_parser",
    "main",
    "run_bench",
    "write_bench",
    "ALGORITHM_SET",
    "SweepPoint",
    "sweep_densities",
    "sweep_node_counts",
]
