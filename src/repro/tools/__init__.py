"""User-facing experiment tooling: sweeps and the ``python -m repro`` CLI."""

from .cli import build_parser, main
from .sweeps import ALGORITHM_SET, SweepPoint, sweep_densities, sweep_node_counts

__all__ = [
    "build_parser",
    "main",
    "ALGORITHM_SET",
    "SweepPoint",
    "sweep_densities",
    "sweep_node_counts",
]
