"""LSTM sequence classifier with full BPTT (the recurrent workloads).

Stands in for the paper's encoder LSTMs (ATIS/Hansards, Fig. 4b; the ASR
attention model, §8.4). One LSTM layer over the token sequence, softmax
classification from the final hidden state. Gate order in the fused
weight matrices is (input, forget, output, candidate).

Exposes the same flat-parameter interface as
:class:`~repro.nn.network.Sequential`, so the data-parallel trainers and
TopK SGD drive both identically.
"""

from __future__ import annotations

import numpy as np

from .network import softmax_cross_entropy

__all__ = ["LSTMClassifier"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LSTMClassifier:
    """Embedding -> LSTM -> Dense softmax classifier."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        hidden_dim: int,
        n_classes: int,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        if min(vocab_size, embed_dim, hidden_dim, n_classes) < 1:
            raise ValueError("all LSTM dimensions must be positive")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.n_classes = n_classes
        d, h = embed_dim, hidden_dim
        self.E = (rng.standard_normal((vocab_size, d)) * 0.1).astype(dtype)
        self.Wx = (rng.standard_normal((d, 4 * h)) / np.sqrt(d)).astype(dtype)
        self.Wh = (rng.standard_normal((h, 4 * h)) / np.sqrt(h)).astype(dtype)
        self.b = np.zeros(4 * h, dtype=dtype)
        self.b[h: 2 * h] = 1.0  # forget-gate bias init
        self.Wo = (rng.standard_normal((h, n_classes)) / np.sqrt(h)).astype(dtype)
        self.bo = np.zeros(n_classes, dtype=dtype)
        self.params = [self.E, self.Wx, self.Wh, self.b, self.Wo, self.bo]
        self.grads = [np.zeros_like(p) for p in self.params]
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    def forward(self, tokens: np.ndarray, train: bool = True) -> np.ndarray:
        """Logits for integer token batches of shape (batch, seq_len)."""
        if tokens.ndim != 2:
            raise ValueError(f"expected (batch, seq_len) tokens, got {tokens.shape}")
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.vocab_size):
            raise IndexError("token id out of vocabulary range")
        B, T = tokens.shape
        h_dim = self.hidden_dim
        h = np.zeros((B, h_dim), dtype=self.E.dtype)
        c = np.zeros((B, h_dim), dtype=self.E.dtype)
        steps = []
        for t in range(T):
            x_t = self.E[tokens[:, t]]
            z = x_t @ self.Wx + h @ self.Wh + self.b
            i = _sigmoid(z[:, :h_dim])
            f = _sigmoid(z[:, h_dim: 2 * h_dim])
            o = _sigmoid(z[:, 2 * h_dim: 3 * h_dim])
            g = np.tanh(z[:, 3 * h_dim:])
            c_new = f * c + i * g
            tc = np.tanh(c_new)
            h_new = o * tc
            if train:
                steps.append((tokens[:, t], x_t, h, c, i, f, o, g, tc))
            h, c = h_new, c_new
        logits = h @ self.Wo + self.bo
        if train:
            self._cache = {"steps": steps, "h_final": h}
        return logits

    # ------------------------------------------------------------------
    def loss_and_grad(self, tokens: np.ndarray, y: np.ndarray) -> float:
        """Mean CE loss; gradients accumulate into ``self.grads``."""
        self.zero_grads()
        logits = self.forward(tokens, train=True)
        loss, dlogits = softmax_cross_entropy(logits, y)
        cache = self._cache
        assert cache is not None
        dE, dWx, dWh, db, dWo, dbo = self.grads

        h_final = cache["h_final"]
        dWo += h_final.T @ dlogits
        dbo += dlogits.sum(axis=0)
        dh = dlogits @ self.Wo.T
        dc = np.zeros_like(dh)

        for token_ids, x_t, h_prev, c_prev, i, f, o, g, tc in reversed(cache["steps"]):
            do = dh * tc
            dc = dc + dh * o * (1.0 - tc**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g**2),
                ],
                axis=1,
            )
            dWx += x_t.T @ dz
            dWh += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx = dz @ self.Wx.T
            np.add.at(dE, token_ids, dx)
            dh = dz @ self.Wh.T
            dc = dc * f
        return loss

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def predict(self, tokens: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(tokens, train=False), axis=1)

    def accuracy(self, tokens: np.ndarray, y: np.ndarray, batch: int = 256) -> float:
        correct = 0
        for lo in range(0, tokens.shape[0], batch):
            correct += int(np.sum(self.predict(tokens[lo: lo + batch]) == y[lo: lo + batch]))
        return correct / max(tokens.shape[0], 1)

    def loss(self, tokens: np.ndarray, y: np.ndarray, batch: int = 256) -> float:
        total, count = 0.0, 0
        for lo in range(0, tokens.shape[0], batch):
            logits = self.forward(tokens[lo: lo + batch], train=False)
            l, _ = softmax_cross_entropy(logits, y[lo: lo + batch])
            total += l * logits.shape[0]
            count += logits.shape[0]
        return total / max(count, 1)

    # ------------------------------------------------------------------
    # flat parameter views (same contract as Sequential)
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params)

    def param_vector(self) -> np.ndarray:
        return np.concatenate([p.ravel() for p in self.params]).astype(np.float64)

    def grad_vector(self) -> np.ndarray:
        return np.concatenate([g.ravel() for g in self.grads]).astype(np.float64)

    def set_param_vector(self, vec: np.ndarray) -> None:
        if vec.shape != (self.n_params,):
            raise ValueError(f"parameter vector shape {vec.shape} != ({self.n_params},)")
        offset = 0
        for p in self.params:
            p[...] = vec[offset: offset + p.size].reshape(p.shape).astype(p.dtype)
            offset += p.size

    def batch_grad(self, tokens: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        loss = self.loss_and_grad(tokens, y)
        return loss, self.grad_vector()
