"""NumPy neural-network substrate (the CNTK stand-in, §7/§8.3)."""

from .layers import Conv2D, Dense, Dropout, Flatten, Layer, ReLU, Tanh
from .lstm import LSTMClassifier
from .network import Sequential, softmax_cross_entropy
from .training import (
    make_cnn_lite,
    make_eval_fn,
    make_grad_fn,
    make_lstm,
    make_mlp,
    make_sequence_eval_fn,
    make_sequence_grad_fn,
)

__all__ = [
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "ReLU",
    "Tanh",
    "LSTMClassifier",
    "Sequential",
    "softmax_cross_entropy",
    "make_cnn_lite",
    "make_eval_fn",
    "make_grad_fn",
    "make_lstm",
    "make_mlp",
    "make_sequence_eval_fn",
    "make_sequence_grad_fn",
]
