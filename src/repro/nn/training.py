"""Data-parallel DNN training glue (the CNTK integration analog, §8.3).

Connects the NN substrate to Algorithm 1: builds the per-rank gradient
callback (sampling from the rank's data shard), the shared evaluation
callback, and standard model factories for the experiment families:

* :func:`make_mlp` — MLP classifier (CIFAR-like / wide-"ResNet"-like runs;
  ``width_multiplier`` plays the role of the 4x widening of Fig. 5);
* :func:`make_cnn_lite` — a small conv net (Fig. 1 gradient-density
  measurements);
* :class:`~repro.nn.lstm.LSTMClassifier` — recurrent runs (Fig. 4b).

Model construction is seeded, so every rank builds bit-identical initial
replicas — the data-parallel invariant TopK SGD preserves.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mlopt.datasets import DenseDataset, SequenceDataset, partition_rows
from ..runtime.comm import Communicator
from .layers import Conv2D, Dense, Flatten, ReLU
from .network import Sequential
from .lstm import LSTMClassifier

__all__ = [
    "make_mlp",
    "make_cnn_lite",
    "make_lstm",
    "make_grad_fn",
    "make_eval_fn",
    "make_sequence_grad_fn",
    "make_sequence_eval_fn",
]


def make_mlp(
    n_features: int,
    n_classes: int,
    hidden: tuple[int, ...] = (256, 128),
    width_multiplier: int = 1,
    seed: int = 0,
) -> Sequential:
    """An MLP classifier; ``width_multiplier`` widens every hidden layer
    (the Fig. 5 wide-residual-network analog: same depth, k-times wider)."""
    rng = np.random.default_rng(seed)
    layers = []
    prev = n_features
    for h in hidden:
        h_eff = h * width_multiplier
        layers += [Dense(prev, h_eff, rng), ReLU()]
        prev = h_eff
    layers.append(Dense(prev, n_classes, rng))
    return Sequential(layers)


def make_cnn_lite(
    image_hw: int,
    in_channels: int,
    n_classes: int,
    channels: tuple[int, ...] = (8, 16),
    seed: int = 0,
) -> Sequential:
    """A small strided CNN (ResNet-20-like workload shape at toy scale)."""
    rng = np.random.default_rng(seed)
    layers: list = []
    prev_c, hw = in_channels, image_hw
    for c in channels:
        layers += [Conv2D(prev_c, c, ksize=3, rng=rng, stride=2, pad=1), ReLU()]
        prev_c = c
        hw = (hw + 2 - 3) // 2 + 1
    layers += [Flatten(), Dense(prev_c * hw * hw, n_classes, rng)]
    return Sequential(layers)


def make_lstm(
    vocab_size: int,
    n_classes: int,
    embed_dim: int = 32,
    hidden_dim: int = 64,
    seed: int = 0,
) -> LSTMClassifier:
    """An LSTM classifier with seeded initialisation."""
    return LSTMClassifier(
        vocab_size, embed_dim, hidden_dim, n_classes, np.random.default_rng(seed)
    )


# ----------------------------------------------------------------------
# gradient / evaluation callbacks for the Algorithm 1 driver
# ----------------------------------------------------------------------
def make_grad_fn(
    net: Sequential,
    dataset: DenseDataset,
    comm: Communicator,
    batch_size: int,
    seed: int = 0,
    reshape: tuple[int, ...] | None = None,
    compute_bytes_per_sample: int = 0,
) -> Callable[[np.ndarray, int], np.ndarray]:
    """Per-rank stochastic gradient callback over this rank's shard.

    ``reshape`` converts flat rows into e.g. NCHW images for conv nets;
    ``compute_bytes_per_sample`` adds model-compute cost to the trace
    (the replay model's gamma charges it), letting benches set realistic
    communication/computation ratios.
    """
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    X = dataset.X[shard]
    y = dataset.y[shard]
    if X.shape[0] == 0:
        raise ValueError(f"rank {comm.rank} received an empty shard")
    rng = np.random.default_rng(seed * 65537 + comm.rank)

    def grad_fn(params: np.ndarray, step: int) -> np.ndarray:
        net.set_param_vector(params.astype(np.float64))
        rows = rng.choice(X.shape[0], size=min(batch_size, X.shape[0]), replace=False)
        xb = X[rows]
        if reshape is not None:
            xb = xb.reshape((xb.shape[0], *reshape))
        _, grad = net.batch_grad(xb, y[rows])
        if compute_bytes_per_sample:
            comm.compute(compute_bytes_per_sample * rows.size, "model")
        return grad.astype(np.float32)

    return grad_fn


def make_eval_fn(
    net: Sequential,
    dataset: DenseDataset,
    max_samples: int = 1024,
    reshape: tuple[int, ...] | None = None,
) -> Callable[[np.ndarray], dict[str, float]]:
    """Loss/accuracy on a fixed evaluation slice (same on all ranks)."""
    X = dataset.X[:max_samples]
    if reshape is not None:
        X = X.reshape((X.shape[0], *reshape))
    y = dataset.y[:max_samples]

    def eval_fn(params: np.ndarray) -> dict[str, float]:
        net.set_param_vector(params.astype(np.float64))
        return {"loss": net.loss(X, y), "accuracy": net.accuracy(X, y)}

    return eval_fn


def make_sequence_grad_fn(
    net: LSTMClassifier,
    dataset: SequenceDataset,
    comm: Communicator,
    batch_size: int,
    seed: int = 0,
    compute_bytes_per_sample: int = 0,
) -> Callable[[np.ndarray, int], np.ndarray]:
    """Gradient callback for sequence batches (LSTM workloads)."""
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    tokens = dataset.tokens[shard]
    y = dataset.y[shard]
    if tokens.shape[0] == 0:
        raise ValueError(f"rank {comm.rank} received an empty shard")
    rng = np.random.default_rng(seed * 92821 + comm.rank)

    def grad_fn(params: np.ndarray, step: int) -> np.ndarray:
        net.set_param_vector(params.astype(np.float64))
        rows = rng.choice(tokens.shape[0], size=min(batch_size, tokens.shape[0]), replace=False)
        _, grad = net.batch_grad(tokens[rows], y[rows])
        if compute_bytes_per_sample:
            comm.compute(compute_bytes_per_sample * rows.size, "model")
        return grad.astype(np.float32)

    return grad_fn


def make_sequence_eval_fn(
    net: LSTMClassifier, dataset: SequenceDataset, max_samples: int = 512
) -> Callable[[np.ndarray], dict[str, float]]:
    tokens = dataset.tokens[:max_samples]
    y = dataset.y[:max_samples]

    def eval_fn(params: np.ndarray) -> dict[str, float]:
        net.set_param_vector(params.astype(np.float64))
        return {"loss": net.loss(tokens, y), "accuracy": net.accuracy(tokens, y)}

    return eval_fn
