"""Sequential network with softmax cross-entropy and flat parameter views.

The bridge between the NN substrate and the communication library: TopK
SGD (Algorithm 1) treats the model as one flat vector, so the network
exposes ``param_vector`` / ``set_param_vector`` / ``grad_vector``. The
flattening order is deterministic (layer order, then each layer's params),
which also defines the coordinate space the per-bucket TopK operates on —
consecutive coordinates belong to the same tensor, exactly like the
paper's layer-wise buckets.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer

__all__ = ["Sequential", "softmax_cross_entropy"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean CE loss and gradient wrt logits for integer labels."""
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    eps = np.finfo(probs.dtype).tiny
    loss = float(-np.mean(np.log(probs[np.arange(n), labels] + eps)))
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    return loss, dlogits / n


class Sequential:
    """A stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = layers

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x, train=False), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch: int = 512) -> float:
        correct = 0
        for lo in range(0, x.shape[0], batch):
            correct += int(np.sum(self.predict(x[lo: lo + batch]) == y[lo: lo + batch]))
        return correct / max(x.shape[0], 1)

    def loss(self, x: np.ndarray, y: np.ndarray, batch: int = 512) -> float:
        total, count = 0.0, 0
        for lo in range(0, x.shape[0], batch):
            logits = self.forward(x[lo: lo + batch], train=False)
            l, _ = softmax_cross_entropy(logits, y[lo: lo + batch])
            total += l * logits.shape[0]
            count += logits.shape[0]
        return total / max(count, 1)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> float:
        """Forward + backward on one batch; grads accumulate in the layers."""
        self.zero_grads()
        logits = self.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, y)
        grad = dlogits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return loss

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------
    # flat parameter views
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def param_vector(self) -> np.ndarray:
        """All parameters concatenated into one float64 vector (copy)."""
        parts = [p.ravel() for layer in self.layers for p in layer.params]
        if not parts:
            return np.empty(0)
        return np.concatenate(parts).astype(np.float64)

    def grad_vector(self) -> np.ndarray:
        """All gradients concatenated, in the same order (copy)."""
        parts = [g.ravel() for layer in self.layers for g in layer.grads]
        if not parts:
            return np.empty(0)
        return np.concatenate(parts).astype(np.float64)

    def set_param_vector(self, vec: np.ndarray) -> None:
        """Scatter a flat vector back into the layers' parameter arrays."""
        expected = self.n_params
        if vec.shape != (expected,):
            raise ValueError(f"parameter vector shape {vec.shape} != ({expected},)")
        offset = 0
        for layer in self.layers:
            for p in layer.params:
                p[...] = vec[offset: offset + p.size].reshape(p.shape).astype(p.dtype)
                offset += p.size

    def batch_grad(self, x: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        """Convenience: loss and flat gradient of one batch."""
        loss = self.loss_and_grad(x, y)
        return loss, self.grad_vector()
