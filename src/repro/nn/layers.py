"""Neural-network layers with explicit forward/backward passes.

A minimal but real NumPy substrate standing in for CNTK (§7): enough to
train the model families the paper's DNN experiments use — MLPs, small
convolutional nets (ResNet-style workloads of Figs. 1, 4a, 5) and LSTMs
(Fig. 4b, §8.4). Every layer owns its parameter and gradient arrays;
:mod:`repro.nn.network` flattens them into the single parameter vector the
TopK SGD algorithm operates on.

No autograd: backward passes are hand-derived (and verified against finite
differences in the test suite).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "Conv2D", "Flatten", "Dropout"]


class Layer(abc.ABC):
    """Base layer: ``forward`` caches what ``backward`` needs.

    ``params`` and ``grads`` are parallel lists of arrays (possibly empty
    for stateless layers).
    """

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    @abc.abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Compute the layer output; cache intermediates when ``train``."""

    @abc.abstractmethod
    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient wrt the input."""

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params)

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He initialisation."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator, dtype=np.float64) -> None:
        super().__init__()
        scale = np.sqrt(2.0 / n_in)
        self.W = (rng.standard_normal((n_in, n_out)) * scale).astype(dtype)
        self.b = np.zeros(n_out, dtype=dtype)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._x = x
        return x @ self.W + self.b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.grads[0] += self._x.T @ dout
        self.grads[1] += dout.sum(axis=0)
        return dout @ self.W.T


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return dout * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.tanh(x)
        if train:
            self._out = out
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._out is not None, "backward before forward"
        return dout * (1.0 - self._out**2)


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward before forward"
        return dout.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout (identity at evaluation time)."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask


class Conv2D(Layer):
    """2-D convolution via im2col (NCHW layout), stride and zero padding.

    Deliberately compact — this backs the small CNN workloads whose
    *gradient density* behaviour Fig. 1 measures; it is not a performance
    kernel.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        ksize: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
        dtype=np.float64,
    ) -> None:
        super().__init__()
        if ksize < 1 or stride < 1 or pad < 0:
            raise ValueError("invalid conv hyper-parameters")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.ksize = ksize
        self.stride = stride
        self.pad = pad
        scale = np.sqrt(2.0 / (in_channels * ksize * ksize))
        self.W = (rng.standard_normal((out_channels, in_channels, ksize, ksize)) * scale).astype(dtype)
        self.b = np.zeros(out_channels, dtype=dtype)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        oh = (h + 2 * self.pad - self.ksize) // self.stride + 1
        ow = (w + 2 * self.pad - self.ksize) // self.stride + 1
        if oh < 1 or ow < 1:
            raise ValueError("input smaller than receptive field")
        return oh, ow

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        oh, ow = self._out_hw(h, w)
        if self.pad:
            x = np.pad(x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)))
        k, s = self.ksize, self.stride
        cols = np.empty((n, c, k, k, oh, ow), dtype=x.dtype)
        for i in range(k):
            i_max = i + s * oh
            for j in range(k):
                j_max = j + s * ow
                cols[:, :, i, j, :, :] = x[:, :, i:i_max:s, j:j_max:s]
        return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1)

    def _col2im(self, cols: np.ndarray, x_shape: tuple[int, ...]) -> np.ndarray:
        n, c, h, w = x_shape
        oh, ow = self._out_hw(h, w)
        k, s, p = self.ksize, self.stride, self.pad
        cols = cols.reshape(n, oh, ow, c, k, k).transpose(0, 3, 4, 5, 1, 2)
        x = np.zeros((n, c, h + 2 * p, w + 2 * p), dtype=cols.dtype)
        for i in range(k):
            i_max = i + s * oh
            for j in range(k):
                j_max = j + s * ow
                x[:, :, i:i_max:s, j:j_max:s] += cols[:, :, i, j, :, :]
        if p:
            return x[:, :, p:-p, p:-p]
        return x

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected NCHW input with {self.in_channels} channels, got {x.shape}"
            )
        n, _, h, w = x.shape
        oh, ow = self._out_hw(h, w)
        cols = self._im2col(x)
        out = cols @ self.W.reshape(self.out_channels, -1).T + self.b
        if train:
            self._cols = cols
            self._x_shape = x.shape
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, oc, oh, ow = dout.shape
        dflat = dout.transpose(0, 2, 3, 1).reshape(-1, oc)
        self.grads[0] += (dflat.T @ self._cols).reshape(self.W.shape)
        self.grads[1] += dflat.sum(axis=0)
        dcols = dflat @ self.W.reshape(oc, -1)
        return self._col2im(dcols, self._x_shape)
