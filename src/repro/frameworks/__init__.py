"""Comparison framework baselines (the Spark analog, §8.2)."""

from .spark_like import coordinator_allreduce, tree_aggregate

__all__ = ["coordinator_allreduce", "tree_aggregate"]
