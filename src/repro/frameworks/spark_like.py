"""Coordinator-based dense aggregation: the Apache Spark baseline (§8.2).

Spark's parameter aggregation (``treeAggregate`` + driver broadcast) is a
coordinator pattern: workers ship *dense* partial gradients up a reduction
tree rooted at the driver, the driver applies the update, and the new model
is broadcast back. It has no sparsity support — exactly the property the
paper's comparison isolates (the Spark numbers are quoted "with a grain of
salt" since Spark also pays for fault tolerance; our baseline reproduces
only the communication pattern).

``coordinator_allreduce`` is a drop-in allreduce with this pattern so the
MPI-OPT drivers can run unchanged against it.
"""

from __future__ import annotations

import numpy as np

from ..runtime.comm import Communicator

__all__ = ["coordinator_allreduce", "tree_aggregate"]


def tree_aggregate(
    comm: Communicator, vec: np.ndarray, branching: int = 2, root: int = 0
) -> np.ndarray | None:
    """Tree reduction of dense vectors to ``root`` (treeAggregate analog).

    Ranks are organised as a ``branching``-ary tree rooted at ``root``
    (rank ids relative to the root). Returns the sum at the root, ``None``
    elsewhere.
    """
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    base = comm.next_collective_tag()
    comm.mark("tree_aggregate")
    rel = (comm.rank - root) % comm.size
    acc = np.array(vec, copy=True)
    # children of rel are branching*rel + 1 .. branching*rel + branching
    for child_slot in range(1, branching + 1):
        child_rel = branching * rel + child_slot
        if child_rel < comm.size:
            child = (child_rel + root) % comm.size
            incoming = comm.recv(child, base)
            comm.compute(acc.nbytes * 2, "reduce")
            acc += incoming
    if rel != 0:
        parent_rel = (rel - 1) // branching
        parent = (parent_rel + root) % comm.size
        comm.send(acc, parent, base)
        return None
    return acc


def coordinator_allreduce(
    comm: Communicator, vec: np.ndarray, branching: int = 2, root: int = 0
) -> np.ndarray:
    """Dense allreduce through a coordinator: tree-gather then broadcast."""
    total = tree_aggregate(comm, vec, branching=branching, root=root)
    comm.mark("driver_broadcast")
    result = comm.bcast(total, root=root)
    return result
