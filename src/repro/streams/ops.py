"""Coordinate-wise reduction operations over sparse streams (§5.2).

The paper supports "arbitrary coordinate-wise associative reduction
operations for which a neutral-element can be defined. (By neutral we mean
that the element which does not change the result of the underlying
operation, e.g., 0 for the sum operation.)" — following Träff's
neutral-element elimination, a sparse stream under an operation ``op``
represents the vector whose *missing* coordinates hold ``op.neutral``;
only non-neutral entries travel on the wire.

Shipped operations: SUM (neutral 0), MAX (neutral 0 — correct for
non-negative data, e.g. counts/indicators), MIN (neutral 0 — correct for
non-positive data), and PROD (neutral 1) for completeness. Custom
operations are one :class:`ReduceOp` away as long as the ufunc is
associative, commutative and supports ``reduceat``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ReduceOp", "SUM", "MAX", "MIN", "PROD", "REDUCE_OPS"]


@dataclass(frozen=True)
class ReduceOp:
    """An associative, commutative element-wise reduction.

    Attributes
    ----------
    name:
        Identifier used in APIs and error messages.
    ufunc:
        A binary numpy ufunc implementing the operation (must support
        ``reduceat`` for the sparse duplicate-collapse kernel).
    neutral:
        The neutral element: missing sparse entries are assumed to hold
        this value, and contributing it leaves results unchanged.
    """

    name: str
    ufunc: np.ufunc
    neutral: float

    def combine(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Element-wise ``a op b``."""
        return self.ufunc(a, b, out=out)

    def collapse_duplicates(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Reduce runs of values sharing an index (sorted segment starts)."""
        return self.ufunc.reduceat(values, starts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


SUM = ReduceOp("sum", np.add, 0.0)
MAX = ReduceOp("max", np.maximum, 0.0)
MIN = ReduceOp("min", np.minimum, 0.0)
PROD = ReduceOp("prod", np.multiply, 1.0)

REDUCE_OPS: dict[str, ReduceOp] = {op.name: op for op in (SUM, MAX, MIN, PROD)}
