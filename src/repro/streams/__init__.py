"""Sparse stream data representation (paper §5.1)."""

from .ops import MAX, MIN, PROD, REDUCE_OPS, SUM, ReduceOp
from .stream import SparseStream
from .summation import (
    MergeScratch,
    add_streams,
    add_streams_,
    concat_disjoint,
    merge_sparse_pairs,
    reduce_streams,
    reduction_work_bytes,
)

__all__ = [
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "REDUCE_OPS",
    "SparseStream",
    "MergeScratch",
    "add_streams",
    "add_streams_",
    "concat_disjoint",
    "merge_sparse_pairs",
    "reduce_streams",
    "reduction_work_bytes",
]
