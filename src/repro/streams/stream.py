"""Sparse streams: the data representation at the heart of SparCML (§5.1).

A :class:`SparseStream` stores a length-``N`` vector either

* **sparse** — as parallel arrays of sorted unique ``uint32`` indices and
  their values, or
* **dense** — as a contiguous value array of length ``N``.

Every stream carries the sparse/dense flag that the paper stores in the first
word of the buffer; representation switching happens automatically when the
estimated fill-in exceeds the threshold ``delta = N*isize/(c+isize)``.

The class is deliberately *value-semantics friendly*: arithmetic helpers
return new streams (or mutate ``self`` explicitly via the ``i``-prefixed
methods) and never alias caller-provided arrays unless ``copy=False`` is
requested.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..config import (
    INDEX_BYTES,
    INDEX_DTYPE,
    STREAM_HEADER_BYTES,
    DEFAULT_VALUE_DTYPE,
    delta_threshold,
    validate_value_dtype,
)

__all__ = ["SparseStream"]


class SparseStream:
    """A vector of dimension ``N`` stored sparse or dense with a flag header.

    Parameters
    ----------
    dimension:
        Universe size ``N``.
    indices, values:
        Sparse payload. ``indices`` must be convertible to sorted unique
        ``uint32``; ``values`` must have the same length.
    dense:
        Dense payload (mutually exclusive with ``indices``/``values``).
    value_dtype:
        Value representation; one of float16/float32/float64.
    copy:
        If False, trusts and aliases the provided arrays (they must already
        be of the correct dtype, and indices sorted unique).
    """

    __slots__ = ("dimension", "value_dtype", "_indices", "_values", "_dense", "value_wire_bytes")

    def __init__(
        self,
        dimension: int,
        *,
        indices: np.ndarray | Iterable[int] | None = None,
        values: np.ndarray | Iterable[float] | None = None,
        dense: np.ndarray | None = None,
        value_dtype: np.dtype | type = DEFAULT_VALUE_DTYPE,
        copy: bool = True,
    ) -> None:
        if dimension < 0:
            raise ValueError(f"dimension must be non-negative, got {dimension}")
        self.dimension = int(dimension)
        self.value_dtype = validate_value_dtype(value_dtype)
        #: effective wire bytes per value when the values travel quantized
        #: (Algorithm 1 sends Q(TopK(acc)): low-precision values with full
        #: uint32 indices). None means full-precision values on the wire.
        self.value_wire_bytes: float | None = None

        if dense is not None:
            if indices is not None or values is not None:
                raise ValueError("provide either dense or (indices, values), not both")
            arr = np.asarray(dense, dtype=self.value_dtype)
            if arr.ndim != 1 or arr.shape[0] != self.dimension:
                raise ValueError(
                    f"dense payload must be 1-D of length {self.dimension}, got shape {arr.shape}"
                )
            self._dense = np.array(arr, copy=True) if copy else arr
            self._indices = None
            self._values = None
            return

        if (indices is None) != (values is None):
            raise ValueError("indices and values must be provided together")
        if indices is None:
            indices = np.empty(0, dtype=INDEX_DTYPE)
            values = np.empty(0, dtype=self.value_dtype)

        if copy:
            idx = np.asarray(indices)
            val = np.asarray(values, dtype=self.value_dtype)
            if idx.shape != val.shape or idx.ndim != 1:
                raise ValueError(
                    f"indices and values must be 1-D of equal length, got {idx.shape} vs {val.shape}"
                )
            if idx.size and (idx.min() < 0 or idx.max() >= self.dimension):
                raise IndexError(
                    f"indices out of range for dimension {self.dimension}: "
                    f"[{idx.min()}, {idx.max()}]"
                )
            idx = idx.astype(INDEX_DTYPE, copy=True)
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            val = np.array(val[order], copy=True)
            if idx.size > 1 and np.any(idx[1:] == idx[:-1]):
                raise ValueError("duplicate indices in sparse stream payload")
        else:
            idx = indices  # type: ignore[assignment]
            val = values  # type: ignore[assignment]
        self._indices = idx
        self._values = val
        self._dense = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, dimension: int, value_dtype: np.dtype | type = DEFAULT_VALUE_DTYPE) -> "SparseStream":
        """An empty (all-zero) sparse stream."""
        return cls(dimension, value_dtype=value_dtype)

    @classmethod
    def from_dense(
        cls,
        array: np.ndarray,
        *,
        value_dtype: np.dtype | type | None = None,
        keep_dense: bool = False,
        zero_tol: float = 0.0,
    ) -> "SparseStream":
        """Build a stream from a dense array.

        By default the non-zero entries are extracted into a sparse payload
        (dropping entries with ``|x| <= zero_tol``); with ``keep_dense=True``
        the stream stays in dense representation.
        """
        arr = np.asarray(array)
        dt = validate_value_dtype(value_dtype if value_dtype is not None else arr.dtype
                                  if np.dtype(arr.dtype) in (np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.float64))
                                  else DEFAULT_VALUE_DTYPE)
        arr = arr.astype(dt, copy=False)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
        if keep_dense:
            return cls(arr.shape[0], dense=arr, value_dtype=dt)
        if zero_tol > 0:
            mask = np.abs(arr) > zero_tol
        else:
            mask = arr != 0
        idx = np.nonzero(mask)[0].astype(INDEX_DTYPE)
        return cls(arr.shape[0], indices=idx, values=arr[idx], value_dtype=dt, copy=False)

    @classmethod
    def random_uniform(
        cls,
        dimension: int,
        nnz: int,
        rng: np.random.Generator,
        *,
        value_dtype: np.dtype | type = DEFAULT_VALUE_DTYPE,
        scale: float = 1.0,
    ) -> "SparseStream":
        """Stream with ``nnz`` uniformly random support and N(0, scale) values.

        This matches the synthetic workload of the paper's micro-benchmarks
        ("k indices out of N are selected uniformly at random at each node and
        are assigned a random value", §8.1).
        """
        if not 0 <= nnz <= dimension:
            raise ValueError(f"nnz must be in [0, {dimension}], got {nnz}")
        idx = rng.choice(dimension, size=nnz, replace=False).astype(INDEX_DTYPE)
        idx.sort()
        val = (rng.standard_normal(nnz) * scale).astype(value_dtype)
        return cls(dimension, indices=idx, values=val, value_dtype=value_dtype, copy=False)

    # ------------------------------------------------------------------
    # representation queries
    # ------------------------------------------------------------------
    @property
    def is_dense(self) -> bool:
        """The header flag: True when the payload is a dense value block."""
        return self._dense is not None

    @property
    def nnz(self) -> int:
        """Number of stored elements (dense streams count every slot)."""
        if self.is_dense:
            return self.dimension
        return int(self._indices.shape[0])

    @property
    def stored_nonzeros(self) -> int:
        """Number of entries that are actually non-zero."""
        if self.is_dense:
            return int(np.count_nonzero(self._dense))
        return int(np.count_nonzero(self._values))

    @property
    def density(self) -> float:
        """``nnz / N`` (1.0 for dense streams; 0.0 for empty universes)."""
        if self.dimension == 0:
            return 0.0
        return self.nnz / self.dimension

    @property
    def indices(self) -> np.ndarray:
        """Sorted unique non-zero indices (sparse representation only)."""
        if self.is_dense:
            raise ValueError("dense stream has no explicit index array")
        return self._indices

    @property
    def values(self) -> np.ndarray:
        """Values aligned with :attr:`indices` (sparse representation only)."""
        if self.is_dense:
            raise ValueError("dense stream has no explicit value array; use to_dense()")
        return self._values

    @property
    def dense_payload(self) -> np.ndarray:
        """The dense block (dense representation only)."""
        if not self.is_dense:
            raise ValueError("stream is sparse; call densify() or to_dense()")
        return self._dense

    @property
    def delta(self) -> int:
        """The sparse-efficiency threshold for this stream's dimension/dtype."""
        return delta_threshold(self.dimension, self.value_dtype.itemsize, INDEX_BYTES)

    @property
    def nbytes_payload(self) -> int:
        """Bytes this stream occupies on the wire (header + payload).

        Sparse: ``header + nnz*(c + isize)``; dense: ``header + N*isize``.
        This is the quantity all the cost-model formulas reason about.
        """
        isize: float = self.value_dtype.itemsize
        if self.is_dense:
            return STREAM_HEADER_BYTES + self.dimension * isize
        if self.value_wire_bytes is not None:
            isize = self.value_wire_bytes
        return STREAM_HEADER_BYTES + int(np.ceil(self.nnz * (INDEX_BYTES + isize)))

    def comm_nbytes(self) -> int:
        """Protocol hook used by the runtime to charge wire bytes."""
        return self.nbytes_payload

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        """Materialise the stream as a fresh dense numpy array.

        ``fill`` is the value of the *missing* coordinates — 0 for sum
        semantics, the operation's neutral element in general (§5.2).
        """
        if self.is_dense:
            return self._dense.copy()
        if fill == 0.0:
            out = np.zeros(self.dimension, dtype=self.value_dtype)
        else:
            out = np.full(self.dimension, fill, dtype=self.value_dtype)
        if self._indices.size:
            out[self._indices] = self._values
        return out

    def densify(self, fill: float = 0.0) -> "SparseStream":
        """Switch *this* stream to the dense representation in place."""
        if not self.is_dense:
            self._dense = self.to_dense(fill)
            self._indices = None
            self._values = None
        return self

    def sparsify(self) -> "SparseStream":
        """Switch *this* stream to the sparse representation in place.

        Entries exactly equal to zero are dropped (index cancellation); the
        paper ignores cancellation in the analysis but the representation
        supports it.
        """
        if self.is_dense:
            idx = np.nonzero(self._dense)[0].astype(INDEX_DTYPE)
            self._indices = idx
            self._values = self._dense[idx].copy()
            self._dense = None
        return self

    def should_switch_to_dense(self, extra_nnz: int = 0) -> bool:
        """The switch test from §5.1: ``|H1| + |H2| > delta``.

        The exact union size is never computed ("This is costly, and thus we
        only upper bound this result by |H1| + |H2|").
        """
        if self.is_dense:
            return False
        return self.nnz + extra_nnz > self.delta

    def set_pairs(self, indices: np.ndarray, values: np.ndarray) -> "SparseStream":
        """Adopt sparse pair arrays in place — trusted, zero-copy.

        The hot-path counterpart of building a new stream with
        ``copy=False``: the reduction kernels replace a stream's payload
        every round and reuse the stream object. ``indices`` must already
        be sorted unique :data:`~repro.config.INDEX_DTYPE` and ``values``
        aligned with them in this stream's value dtype; no validation is
        performed.
        """
        self._indices = indices
        self._values = values
        self._dense = None
        return self

    # ------------------------------------------------------------------
    # arithmetic helpers (the heavy lifting lives in streams.summation)
    # ------------------------------------------------------------------
    def copy(self) -> "SparseStream":
        """Deep copy preserving the representation and wire annotations."""
        if self.is_dense:
            out = SparseStream(self.dimension, dense=self._dense, value_dtype=self.value_dtype)
        else:
            out = SparseStream(
                self.dimension,
                indices=self._indices.copy(),
                values=self._values.copy(),
                value_dtype=self.value_dtype,
                copy=False,
            )
        out.value_wire_bytes = self.value_wire_bytes
        return out

    def iscale(self, factor: float) -> "SparseStream":
        """Multiply all stored values by ``factor`` in place."""
        if self.is_dense:
            self._dense *= self.value_dtype.type(factor)
        else:
            self._values *= self.value_dtype.type(factor)
        return self

    def allclose(self, other: "SparseStream | np.ndarray", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Numerically compare against another stream or dense vector."""
        ref = other.to_dense() if isinstance(other, SparseStream) else np.asarray(other)
        return bool(np.allclose(self.to_dense(), ref, rtol=rtol, atol=atol))

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.dimension

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dense" if self.is_dense else "sparse"
        return (
            f"SparseStream(N={self.dimension}, {kind}, nnz={self.nnz}, "
            f"dtype={self.value_dtype}, bytes={self.nbytes_payload})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseStream):
            return NotImplemented
        return (
            self.dimension == other.dimension
            and self.value_dtype == other.value_dtype
            and bool(np.array_equal(self.to_dense(), other.to_dense()))
        )

    __hash__ = None  # type: ignore[assignment]
