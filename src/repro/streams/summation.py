"""Efficient summation of sparse streams (§5.1, "Efficient Summation").

The paper distinguishes four cases when summing two vectors ``u1 + u2``:

1. both sparse, overlapping indices — merge index sets, summing duplicates;
   switch to dense first when the ``|H1| + |H2| > delta`` upper bound fires;
2. one sparse, one dense — scatter-add the sparse one into the dense one;
3. both dense — vectorised dense addition in place, no new allocation;
4. disjoint index ranges (the dimension-partitioned case) — plain
   concatenation, no arithmetic needed.

All kernels operate on :class:`~repro.streams.stream.SparseStream` and keep
its invariants (sorted unique indices). Reduction *work* estimates (used by
the network/compute replay model) are returned alongside results by the
``*_with_work`` variants.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import INDEX_DTYPE
from .ops import SUM, ReduceOp
from .stream import SparseStream

__all__ = [
    "MergeScratch",
    "add_streams",
    "add_streams_",
    "concat_disjoint",
    "merge_sparse_pairs",
    "reduce_streams",
    "reduction_work_bytes",
]


class MergeScratch:
    """Reusable workspace for :func:`merge_sparse_pairs` intermediates.

    One merge allocates five throwaway arrays (two concatenations, two
    sorted gathers, one boundary mask) before producing its two outputs.
    A scratch object keeps those intermediates alive between calls —
    recursive doubling, the sparse ring and the split phase reuse one
    workspace across all their rounds, so per-round allocation drops to
    the argsort permutation and the actual outputs. Buffers grow
    geometrically and are reallocated when the value dtype changes.

    Not thread-safe; use one scratch per collective invocation.
    """

    __slots__ = ("_idx", "_val", "_idx2", "_val2", "_bound")

    def __init__(self) -> None:
        self._idx = self._val = self._idx2 = self._val2 = self._bound = None

    def _buf(self, slot: str, n: int, dtype: np.dtype) -> np.ndarray:
        arr = getattr(self, slot)
        if arr is None or arr.size < n or arr.dtype != dtype:
            grown = max(n, 1024, 2 * arr.size if arr is not None else 0)
            arr = np.empty(grown, dtype=dtype)
            setattr(self, slot, arr)
        return arr[:n]


def merge_sparse_pairs(
    idx_a: np.ndarray,
    val_a: np.ndarray,
    idx_b: np.ndarray,
    val_b: np.ndarray,
    op: ReduceOp = SUM,
    *,
    copy: bool = True,
    scratch: MergeScratch | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted-unique (index, value) pair lists, summing overlaps.

    Returns sorted unique indices and summed values. This is the sparse+sparse
    kernel; complexity O((n_a + n_b) log(n_a + n_b)) using a concatenate+sort
    strategy, which vectorises far better in NumPy than a two-pointer walk.

    Parameters
    ----------
    copy:
        Governs the empty-side fast path only: with ``copy=True`` (the
        default) the non-empty side comes back as fresh arrays; with
        ``copy=False`` it comes back as-is — zero-copy, but the result then
        aliases the caller's input, so only owners may pass False.
    scratch:
        Optional reusable workspace for the intermediates (see
        :class:`MergeScratch`). Results are bit-identical either way.
    """
    if idx_a.size == 0:
        return (idx_b.copy(), val_b.copy()) if copy else (idx_b, val_b)
    if idx_b.size == 0:
        return (idx_a.copy(), val_a.copy()) if copy else (idx_a, val_a)
    n = idx_a.shape[0] + idx_b.shape[0]
    if scratch is not None and val_a.dtype == val_b.dtype and idx_a.dtype == idx_b.dtype:
        cat_idx = scratch._buf("_idx", n, idx_a.dtype)
        cat_val = scratch._buf("_val", n, val_a.dtype)
        np.concatenate([idx_a, idx_b], out=cat_idx)
        np.concatenate([val_a, val_b], out=cat_val)
        order = np.argsort(cat_idx, kind="stable")
        idx = np.take(cat_idx, order, out=scratch._buf("_idx2", n, idx_a.dtype))
        val = np.take(cat_val, order, out=scratch._buf("_val2", n, val_a.dtype))
        boundary = scratch._buf("_bound", n, np.dtype(bool))
    else:
        idx = np.concatenate([idx_a, idx_b])
        val = np.concatenate([val_a, val_b])
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        val = val[order]
        boundary = np.empty(n, dtype=bool)
    # collapse duplicates: segment boundaries where the index changes
    boundary[0] = True
    np.not_equal(idx[1:], idx[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    combined = op.collapse_duplicates(val, starts)
    return idx[starts], combined.astype(val.dtype, copy=False)


def add_streams(a: SparseStream, b: SparseStream, op: ReduceOp = SUM) -> SparseStream:
    """Pure reduction ``a op b`` returning a new stream; inputs unchanged."""
    out = a.copy()
    return add_streams_(out, b, op)


def add_streams_(
    acc: SparseStream,
    other: SparseStream,
    op: ReduceOp = SUM,
    *,
    scratch: MergeScratch | None = None,
    own_other: bool = False,
) -> SparseStream:
    """In-place sum ``acc += other`` with automatic representation switching.

    Follows the decision tree of §5.1:

    * dense += dense: vectorised add into ``acc``'s buffer;
    * dense += sparse: scatter-add;
    * sparse += dense: densify ``acc`` then scatter-add the old sparse part
      (equivalently: copy dense and add — we scatter into a copy);
    * sparse += sparse: if ``|H1| + |H2| > delta`` densify first (the paper's
      cheap upper-bound test), otherwise merge the pair lists.

    Parameters
    ----------
    scratch:
        Optional :class:`MergeScratch` reused across successive calls
        (collectives keep one per invocation instead of allocating merge
        intermediates every round).
    own_other:
        Declare that ``other`` is owned by this reduction (e.g. a freshly
        received, decoded message nobody else holds). When ``acc`` is
        empty, the merge then *adopts* ``other``'s arrays instead of
        copying them. Leave False when ``other`` must stay independent —
        aliasing would let later in-place updates of ``acc`` corrupt it.
    """
    if acc.dimension != other.dimension:
        raise ValueError(f"dimension mismatch: {acc.dimension} vs {other.dimension}")
    if acc.value_dtype != other.value_dtype:
        raise TypeError(f"value dtype mismatch: {acc.value_dtype} vs {other.value_dtype}")
    # summed values are full precision again, whatever travelled on the wire
    acc.value_wire_bytes = None

    if acc.is_dense and other.is_dense:
        op.combine(acc.dense_payload, other.dense_payload, out=acc.dense_payload)
        return acc

    if acc.is_dense and not other.is_dense:
        if other.indices.size:
            idx = other.indices
            acc.dense_payload[idx] = op.ufunc(acc.dense_payload[idx], other.values)
        return acc

    if not acc.is_dense and other.is_dense:
        # keep the dense operand's layout: build dense result from it
        dense = other.dense_payload.copy()
        if acc.indices.size:
            idx = acc.indices
            dense[idx] = op.ufunc(dense[idx], acc.values)
        acc._dense = dense  # noqa: SLF001 - intentional internal switch
        acc._indices = None  # noqa: SLF001
        acc._values = None  # noqa: SLF001
        return acc

    # sparse (op)= sparse
    if acc.should_switch_to_dense(extra_nnz=other.nnz):
        acc.densify(fill=op.neutral)
        if other.indices.size:
            idx = other.indices
            acc.dense_payload[idx] = op.ufunc(acc.dense_payload[idx], other.values)
        return acc

    idx, val = merge_sparse_pairs(
        acc.indices, acc.values, other.indices, other.values, op,
        copy=not own_other, scratch=scratch,
    )
    acc.set_pairs(idx.astype(INDEX_DTYPE, copy=False), val)
    # the merge may still have overshot delta (exact union known only now)
    if acc.nnz > acc.delta:
        acc.densify(fill=op.neutral)
    return acc


def concat_disjoint(streams: Sequence[SparseStream], dimension: int) -> SparseStream:
    """Sum streams whose index sets live in disjoint ranges (§5.1 case 2).

    Used by the split/allgather algorithms where the dimension has been
    partitioned by rank: the "sum" is a concatenation. The inputs must be
    sparse; the caller guarantees disjointness (checked cheaply via total
    count vs. union count in debug mode).
    """
    sparse_parts = [s for s in streams if s.nnz > 0]
    if not sparse_parts:
        return SparseStream.zeros(dimension, value_dtype=streams[0].value_dtype if streams else np.float32)
    vdt = sparse_parts[0].value_dtype
    idx = np.concatenate([s.indices for s in sparse_parts])
    val = np.concatenate([s.values for s in sparse_parts])
    order = np.argsort(idx, kind="stable")
    idx = idx[order]
    val = val[order]
    if idx.size > 1 and np.any(idx[1:] == idx[:-1]):
        raise ValueError("concat_disjoint called with overlapping index sets")
    return SparseStream(dimension, indices=idx, values=val, value_dtype=vdt, copy=False)


def reduce_streams(streams: Sequence[SparseStream], op: ReduceOp = SUM) -> SparseStream:
    """Left-fold reduction of a list of streams (reference reduction)."""
    if not streams:
        raise ValueError("reduce_streams needs at least one stream")
    acc = streams[0].copy()
    scratch = MergeScratch()  # one workspace across the whole fold
    for s in streams[1:]:
        add_streams_(acc, s, op, scratch=scratch)
    return acc


def reduction_work_bytes(a: SparseStream, b: SparseStream) -> int:
    """Estimate of bytes touched when summing ``a + b``.

    Used by the replay model to charge local-reduction compute time. Sparse
    merges touch every stored pair of both operands; dense adds touch the
    full dense block; mixed cases touch the sparse side plus scatter targets.
    """
    isize = a.value_dtype.itemsize
    pair = isize + 4
    if a.is_dense and b.is_dense:
        return a.dimension * isize * 2
    if a.is_dense != b.is_dense:
        sp = b if a.is_dense else a
        return sp.nnz * pair * 2
    return (a.nnz + b.nnz) * pair * 2
