"""Socket backend: one OS process per rank, payloads framed over TCP.

This is the distributed-memory variant of the process family: the same
§5.1 wire format (:mod:`repro.runtime.wire`), the same mailbox/pump
architecture (:class:`~repro.runtime.process_backend.PumpedComm`), but
the transport is a full mesh of TCP connections instead of pipes — so
ranks no longer have to share a kernel. SparCML's headline numbers (§6)
come from cluster runs; this backend is the repo's path to that setting
while staying a drop-in choice for single-host runs::

    run_ranks(program, nranks=4, backend="socket")          # single host
    python -m repro serve-rank --rendezvous host:port ...   # join from anywhere

Architecture (per run of ``P`` ranks)
-------------------------------------
* **rendezvous**: rank 0's launcher listens at a known TCP address; every
  rank binds a private *mesh listener* on an ephemeral port, registers
  ``(rank, host, port)`` with the rendezvous, and receives the full
  address map back once all ``P`` ranks have checked in. On a single
  host, :class:`SocketBackend` plays the rendezvous server in the parent
  (the ``mpiexec`` analog); in the multi-host mode the ``serve-rank``
  process of rank 0 hosts it, exactly as §6's cluster runs would;
* **mesh build**: every rank connects outward to each peer's mesh
  listener and sends a one-off hello frame naming its rank, giving one
  unidirectional TCP connection per directed pair — the socket analog of
  the process backend's ``P * (P-1)`` pipe mesh (``TCP_NODELAY`` set, so
  small frames are not Nagle-delayed);
* **framing**: each message is ``<u64 frame length> <frame bytes>`` where
  the frame is the ordinary :func:`~repro.runtime.wire.encode_frame_parts`
  encoding — vectored on the way out (one gather copy into a single
  ``sendall`` buffer), received with ``recv_into`` into one reusable
  grow-on-demand buffer so steady-state receive allocates nothing per
  message but the decoded arrays themselves;
* one daemon pump thread per peer (inherited from
  :class:`~repro.runtime.process_backend.PumpedComm`) drains that peer's
  connection into the per-(source, tag) mailboxes, standing in for MPI's
  progress engine.

Failure handling mirrors the shmem doorbell-EOF semantics: a dying rank's
sockets close, its peers' pumps observe EOF *without* a preceding FIN
frame, flag the world aborted and unwind blocked collectives with
:class:`WorldAbortedError`. EOF after FIN is a normal wind-down. A rank
that finished cleanly keeps its pumps draining for a grace period after
reporting its result, so a peer's late buffered send larger than the TCP
window can never block forever (the socket analog of the parent draining
finished ranks' pipes).
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import pickle
import socket
import struct
import sys
import threading
import time
from multiprocessing.connection import Connection
from typing import Any, Callable

import numpy as np

from .backend import ParallelResult, register_backend
from .comm import CommTimeoutError, RankFailedError, StaleEpochError, WorldAbortedError
from .process_backend import (
    _FIN_TAG,
    _START_METHOD,
    ProcessBackend,
    PumpedComm,
    _check_spawn_picklable,
    _finalize_run,
    _portable_exception,
)
from .runconfig import _UNSET, RunConfig
from .topology import Topology, normalize_topology
from .trace import Trace
from .wire import decode_message, encode_frame_parts

__all__ = [
    "ElasticRendezvous",
    "RendezvousError",
    "RendezvousTimeoutError",
    "SocketBackend",
    "SocketComm",
    "SocketWorld",
    "serve_rank",
    "demo_program",
]

#: length prefix of every frame on a mesh/rendezvous connection.
_LEN = struct.Struct("<Q")

#: sanity bound on an announced frame length: anything larger means a
#: corrupt or hostile peer, not a real payload — fail fast, don't allocate.
_MAX_FRAME = 1 << 40

#: mesh handshake: magic + the connecting (source) rank.
_HELLO = struct.Struct("<4sI")
_MAGIC = b"SPCM"

#: elastic rejoin handshake, sent by a *member* dialing a rejoined rank's
#: listener: magic + member rank + channel direction + commit epoch.
#: Members close their mesh listeners after assembly, so the joiner cannot
#: dial them — instead each member opens both directed channels itself
#: (direction 0 carries member->joiner traffic, 1 carries joiner->member).
_EHELLO = struct.Struct("<4sIIq")
_EMAGIC = b"SPCE"

#: default wall-clock budget for rendezvous + mesh build (seconds).
DEFAULT_RENDEZVOUS_TIMEOUT = 60.0

#: how long a cleanly-finished rank keeps its pumps draining after
#: reporting its result, so peers' late buffered sends complete (seconds).
_LINGER_S = 30.0

#: connect-retry backoff while a peer's listener is not up yet (seconds):
#: start fast (peers usually appear within milliseconds on one host), back
#: off exponentially to the cap so a rank started long before rank 0 binds
#: the rendezvous waits out the whole timeout budget without busy-dialing.
_RETRY_MIN_S = 0.05
_RETRY_MAX_S = 1.0

#: per-connection cap on the tiny registration/hello reads. Without it a
#: stray connection that sends nothing would hold the (serial) accept
#: loops for the whole remaining deadline and starve the real ranks.
_HANDSHAKE_S = 2.0


class RendezvousError(RuntimeError):
    """World assembly through the rendezvous failed.

    The family every rendezvous-stage failure belongs to, so callers can
    catch one type: timeouts raise the :class:`RendezvousTimeoutError`
    subclass, non-timeout protocol failures (e.g. a malformed address
    map) raise this class directly.
    """


class RendezvousTimeoutError(RendezvousError, TimeoutError):
    """The world never fully assembled within the rendezvous timeout."""


# ----------------------------------------------------------------------
# low-level socket helpers
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` from ``sock``; raises EOFError on a closed peer."""
    got = 0
    while got < len(view):
        n = sock.recv_into(view[got:])
        if n == 0:
            raise EOFError("peer closed the connection")
        got += n


def _send_blob(sock: socket.socket, payload: bytes) -> None:
    """One length-prefixed control frame (rendezvous traffic)."""
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_blob(sock: socket.socket) -> bytearray:
    """Inverse of :func:`_send_blob` (fresh buffer: control traffic is rare)."""
    header = bytearray(_LEN.size)
    _recv_exact(sock, memoryview(header))
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise ValueError(f"corrupt frame: announced length {length}")
    buf = bytearray(length)
    _recv_exact(sock, memoryview(buf))
    return buf


def _bind_listener(host: str, port: int, nranks: int) -> socket.socket:
    """A listening TCP socket whose backlog covers the whole world.

    The backlog matters: mesh peers connect before this rank starts
    accepting, and a backlog smaller than ``P`` would refuse some of them.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(nranks + 8)
    return sock


def _connect_retry(addr: tuple[str, int], deadline: float, what: str) -> socket.socket:
    """Connect to ``addr``, retrying with bounded exponential backoff.

    The peer may be late — e.g. every non-zero rank of a ``serve-rank``
    world started before rank 0 binds the rendezvous address. Retries
    continue until ``deadline`` (the caller's rendezvous timeout budget),
    with the sleep doubling from :data:`_RETRY_MIN_S` up to
    :data:`_RETRY_MAX_S` so long waits do not busy-dial the network.
    """
    backoff = _RETRY_MIN_S
    while True:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(max(0.1, min(1.0, deadline - time.monotonic())))
            sock.connect(addr)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            sock.close()
            now = time.monotonic()
            if now >= deadline:
                raise RendezvousTimeoutError(
                    f"could not reach {what} at {addr[0]}:{addr[1]} before the "
                    "rendezvous timeout; is it running and reachable?"
                ) from exc
            time.sleep(min(backoff, max(0.0, deadline - now)))
            backoff = min(backoff * 2.0, _RETRY_MAX_S)


# ----------------------------------------------------------------------
# rendezvous: (rank, host, port) exchange through one known address
# ----------------------------------------------------------------------
def _serve_rendezvous(listener: socket.socket, nranks: int, timeout: float) -> None:
    """Collect ``P`` registrations, then send everyone the full address map.

    Runs in a daemon thread of the launcher (single host) or of rank 0's
    ``serve-rank`` process (multi host). A registration is one control
    frame ``pickle((rank, nranks, host, port))``; the reply is
    ``pickle([(host, port), ...])`` indexed by rank. On timeout the server
    just returns — every waiting client observes its own
    :class:`RendezvousTimeoutError`, which surfaces as the rank failure.
    """
    deadline = time.monotonic() + timeout
    conns: dict[int, socket.socket] = {}
    addrs: dict[int, tuple[str, int]] = {}
    try:
        listener.settimeout(0.2)
        while len(conns) < nranks:
            if time.monotonic() > deadline:
                return
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us (run torn down)
            try:
                conn.settimeout(min(_HANDSHAKE_S, max(0.1, deadline - time.monotonic())))
                rank, world, host, port = pickle.loads(bytes(_recv_blob(conn)))
                if world != nranks or not 0 <= rank < nranks or rank in conns:
                    raise ValueError(f"bad registration: rank {rank} of {world}")
                conn.settimeout(max(0.1, deadline - time.monotonic()))
            except Exception:
                conn.close()  # stray/misconfigured client; keep serving
                continue
            conns[rank] = conn
            addrs[rank] = (host, port)
        reply = pickle.dumps([addrs[r] for r in range(nranks)])
        for conn in conns.values():
            try:
                _send_blob(conn, reply)
            except OSError:
                pass  # its rank will time out and report the failure
    finally:
        for conn in conns.values():
            conn.close()
        listener.close()


def _rendezvous_client(
    rdv_addr: tuple[str, int],
    rank: int,
    nranks: int,
    mesh_addr: tuple[str, int],
    timeout: float,
) -> list[tuple[str, int]]:
    """Register this rank's mesh listener; return the full address map."""
    deadline = time.monotonic() + timeout
    sock = _connect_retry(rdv_addr, deadline, "the rendezvous server")
    try:
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        _send_blob(sock, pickle.dumps((rank, nranks, *mesh_addr)))
        try:
            addrs = pickle.loads(bytes(_recv_blob(sock)))
        except (TimeoutError, EOFError, OSError) as exc:
            raise RendezvousTimeoutError(
                f"rank {rank}: the world of {nranks} ranks never fully "
                f"assembled at {rdv_addr[0]}:{rdv_addr[1]} within {timeout:.1f}s"
            ) from exc
    finally:
        sock.close()
    if len(addrs) != nranks:
        raise RendezvousError(
            f"rendezvous returned {len(addrs)} addresses, expected {nranks}"
        )
    return [tuple(a) for a in addrs]


def _connect_mesh(
    rank: int,
    nranks: int,
    listener: socket.socket,
    addrs: list[tuple[str, int]],
    timeout: float,
) -> tuple[list[socket.socket | None], list[socket.socket | None]]:
    """Build the full TCP mesh: one outbound connection per directed pair.

    Outbound connects come first (they complete against the peers'
    listen backlogs without anyone accepting, so there is no ordering
    deadlock), then ``P - 1`` inbound accepts, each identified by its
    hello frame.
    """
    deadline = time.monotonic() + timeout
    out_socks: list[socket.socket | None] = [None] * nranks
    in_socks: list[socket.socket | None] = [None] * nranks
    try:
        for peer in range(nranks):
            if peer == rank:
                continue
            sock = _connect_retry(addrs[peer], deadline, f"rank {peer}")
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(_HELLO.pack(_MAGIC, rank))
            out_socks[peer] = sock

        listener.settimeout(0.2)
        hello = bytearray(_HELLO.size)
        accepted = 0
        while accepted < nranks - 1:
            if time.monotonic() > deadline:
                raise RendezvousTimeoutError(
                    f"rank {rank}: only {accepted} of {nranks - 1} peers "
                    f"connected within {timeout:.1f}s"
                )
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            conn.settimeout(min(_HANDSHAKE_S, max(0.1, deadline - time.monotonic())))
            try:
                _recv_exact(conn, memoryview(hello))
                magic, src = _HELLO.unpack(hello)
                if magic != _MAGIC or not 0 <= src < nranks or in_socks[src] is not None:
                    raise ValueError(f"bad mesh handshake from {src}")
            except Exception:
                conn.close()
                continue  # stray connection; the real peer will retry
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            in_socks[src] = conn
            accepted += 1
    except BaseException:
        for sock in out_socks + in_socks:
            if sock is not None:
                sock.close()
        raise
    return out_socks, in_socks


# ----------------------------------------------------------------------
# the communicator
# ----------------------------------------------------------------------
class SocketComm(PumpedComm):
    """Per-rank communicator over the TCP mesh.

    ``out_socks[d]`` / ``in_socks[s]`` are this rank's connections to and
    from each peer (``None`` at its own slot).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        out_socks: list[socket.socket | None],
        in_socks: list[socket.socket | None],
        trace: Trace,
        op_timeout: float | None = None,
    ) -> None:
        self._init_mesh(rank, size, trace, op_timeout)
        self._out_socks = out_socks
        self._in_socks = in_socks
        self._out_locks = [threading.Lock() if s is not None else None for s in out_socks]
        for src, sock in enumerate(in_socks):
            if sock is not None:
                self._start_pump(src, sock)

    # ------------------------------------------------------------------
    # inbound progress engine
    # ------------------------------------------------------------------
    def _pump(self, src: int, sock: socket.socket) -> None:
        """Receiver thread: drain one peer's connection into the mailboxes.

        Frames are read with ``recv_into`` into one reusable buffer (grown
        geometrically on demand), so steady-state receive performs no
        per-message bytes allocation — the only fresh buffers are the
        decoded arrays themselves. EOF without a FIN first means the peer
        died mid-run: abort the world, exactly like the shmem progress
        engine observing doorbell EOF.
        """
        header = bytearray(_LEN.size)
        buf = bytearray(1 << 16)
        while True:
            try:
                _recv_exact(sock, memoryview(header))
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    raise ValueError(f"corrupt frame length {length}")
                if length > len(buf):
                    buf = bytearray(max(length, 2 * len(buf)))
                frame = memoryview(buf)[:length]
                _recv_exact(sock, frame)
            except (EOFError, OSError):
                # EOF (or a reset) with no FIN first: the peer died mid-run —
                # blocked peers unwind with a RankFailedError naming it
                self._abort(failed_rank=src)
                return
            except (ValueError, MemoryError):
                # corrupt frame length (a MemoryError: a length under
                # _MAX_FRAME can still be unallocatable) — abort the world
                # rather than dying silently; the culprit is unattributable
                self._abort()
                return
            try:
                # copy=True (default): the scratch buffer is reused, so the
                # decoded arrays must own their memory
                tag, seq, nbytes, epoch, payload = decode_message(frame)
            except Exception:
                # undecodable frame: fail fast instead of silently stopping
                # the progress engine and hanging the run
                self._abort()
                return
            if epoch < self.epoch:
                # frame from a dead world epoch (in flight across a shrink):
                # drop it so post-shrink collectives never see old traffic
                self._count_stale_frame()
                continue
            if tag == _FIN_TAG:
                return  # peer finished cleanly; its channel is drained
            self._mailbox(src, tag).put(payload, nbytes, seq)

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    @staticmethod
    def _frame_blob(tag: int, seq: int, nbytes: int, obj: Any, epoch: int = 0) -> bytearray:
        """Length prefix + frame, gathered into one send buffer.

        Like :func:`~repro.runtime.wire.encode_message` this copies each
        payload byte exactly once, and one ``sendall`` per message keeps
        the frame contiguous on the stream without per-part syscalls.
        """
        total, parts = encode_frame_parts(tag, seq, nbytes, obj, epoch)
        out = bytearray(_LEN.size + total)
        _LEN.pack_into(out, 0, total)
        pos = _LEN.size
        for part in parts:
            n = len(part)
            out[pos:pos + n] = part
            pos += n
        return out

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        blob = self._frame_blob(tag, seq, nbytes, obj, self.epoch)
        sock = self._out_socks[dest]
        lock = self._out_locks[dest]
        try:
            with lock:
                if self.op_timeout is None:
                    sock.sendall(blob)
                else:
                    sock.settimeout(self.op_timeout)
                    try:
                        sock.sendall(blob)
                    finally:
                        sock.settimeout(None)
        except TimeoutError as exc:  # socket.timeout: the peer stopped reading
            self._abort()
            raise CommTimeoutError(
                f"send to rank {dest} (tag {tag}) made no progress within "
                f"op_timeout={self.op_timeout}s",
                source=dest,
                tag=tag,
                timeout=self.op_timeout,
            ) from exc
        except OSError as exc:
            self._abort(failed_rank=dest)
            raise RankFailedError(dest, f"rank {dest} is gone; send failed") from exc

    def shutdown(self) -> None:
        """Graceful wind-down: tell every peer this rank is done sending."""
        fin = self._frame_blob(_FIN_TAG, -1, 0, None, self.epoch)
        for dest, sock in enumerate(self._out_socks):
            if sock is None:
                continue
            try:
                with self._out_locks[dest]:
                    sock.sendall(fin)
            except OSError:  # peer already gone
                pass

    def join_pumps(self, timeout: float) -> None:
        """Wait for every peer's FIN (or death) before closing the sockets.

        A finished rank that closed immediately would reset a peer's late
        buffered send; keeping the pumps draining until each peer FINs is
        the socket analog of the parent draining finished ranks' pipes.
        """
        deadline = time.monotonic() + timeout
        for t in self._receivers:
            if self.aborted.is_set():
                return
            t.join(max(0.0, deadline - time.monotonic()))

    def close(self) -> None:
        for sock in self._out_socks + self._in_socks:
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def _install_peer(
        self, peer: int, out_sock: socket.socket, in_sock: socket.socket
    ) -> None:
        """Wire a rejoined peer back into the mesh (elastic grow commit).

        Replaces the dead connections at the slot — their pumps already
        exited on EOF — and starts a fresh pump on the new inbound
        channel. Called by :meth:`~repro.runtime.elastic.ElasticContext.step`
        through :func:`elastic_dial_join`.
        """
        for sock in (self._out_socks[peer], self._in_socks[peer]):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        self._out_socks[peer] = out_sock
        self._out_locks[peer] = threading.Lock()
        self._in_socks[peer] = in_sock
        self._start_pump(peer, in_sock)


def _join_world(
    rank: int,
    nranks: int,
    rdv_addr: tuple[str, int],
    host: str,
    timeout: float,
    trace: Trace,
    topology: Topology | None = None,
    op_timeout: float | None = None,
) -> SocketComm:
    """Bind a mesh listener, rendezvous, build the mesh, return the comm.

    The rendezvous reply is the full ``rank -> (host, port)`` map; its host
    column *is* the world's topology, so instead of discarding it after
    mesh assembly it is kept on the communicator (``comm.topology``) for
    topology-aware collectives. An explicit ``topology`` (e.g. a simulated
    multi-host world over loopback) overrides the derived one.
    """
    listener = _bind_listener(host, 0, nranks)
    try:
        mesh_addr = (host, listener.getsockname()[1])
        addrs = _rendezvous_client(rdv_addr, rank, nranks, mesh_addr, timeout)
        out_socks, in_socks = _connect_mesh(rank, nranks, listener, addrs, timeout)
    finally:
        listener.close()
    comm = SocketComm(rank, nranks, out_socks, in_socks, trace, op_timeout)
    comm.topology = (
        topology if topology is not None else Topology(tuple(h for h, _p in addrs))
    )
    return comm


# ----------------------------------------------------------------------
# elastic rejoin: a restarted rank re-registers into the next epoch
# ----------------------------------------------------------------------
class ElasticRendezvous:
    """Persistent rendezvous of an elastic world (hosted by rank 0).

    Phase one is the ordinary address exchange of :func:`_serve_rendezvous`;
    afterwards the listener stays open and a restarted rank can re-register
    with a ``("rejoin", rank, nranks, host, port)`` control frame. Rejoin
    requests are queued until the elastic leader commits one between
    iterations (:meth:`~repro.runtime.elastic.ElasticContext.step`) and
    replies with the new ``(epoch, members, hosts)``. Runs in its own
    daemon thread; :meth:`poll`/:meth:`reply` are called from the leader's
    rank program.
    """

    def __init__(self, listener: socket.socket, nranks: int, timeout: float) -> None:
        self._listener = listener
        self._nranks = nranks
        self._timeout = timeout
        self._lock = threading.Lock()
        self._pending: list[tuple[int, tuple[str, int], socket.socket]] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, name="elastic-rendezvous", daemon=True
        )
        self._thread.start()

    # -- server thread --------------------------------------------------
    def _serve(self) -> None:
        nranks = self._nranks
        deadline = time.monotonic() + self._timeout
        conns: dict[int, socket.socket] = {}
        addrs: dict[int, tuple[str, int]] = {}
        listener = self._listener
        listener.settimeout(0.2)
        # phase 1: initial world assembly (protocol of _serve_rendezvous)
        while len(conns) < nranks:
            if time.monotonic() > deadline or self._closed:
                for conn in conns.values():
                    conn.close()
                return
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us
            try:
                conn.settimeout(min(_HANDSHAKE_S, max(0.1, deadline - time.monotonic())))
                reg = pickle.loads(bytes(_recv_blob(conn)))
                if self._queue_if_rejoin(reg, conn):
                    continue  # a restarted rank beat the initial assembly
                rank, world, host, port = reg
                if world != nranks or not 0 <= rank < nranks or rank in conns:
                    raise ValueError(f"bad registration: rank {rank} of {world}")
                conn.settimeout(max(0.1, deadline - time.monotonic()))
            except Exception:
                conn.close()  # stray/misconfigured client; keep serving
                continue
            conns[rank] = conn
            addrs[rank] = (host, port)
        reply = pickle.dumps([addrs[r] for r in range(nranks)])
        for conn in conns.values():
            try:
                _send_blob(conn, reply)
            except OSError:
                pass  # its rank will time out and report the failure
            conn.close()
        # phase 2: accept rejoin registrations until the world winds down
        while not self._closed:
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                conn.settimeout(_HANDSHAKE_S)
                reg = pickle.loads(bytes(_recv_blob(conn)))
                if not self._queue_if_rejoin(reg, conn):
                    raise ValueError("not a rejoin registration")
            except Exception:
                conn.close()
                continue

    def _queue_if_rejoin(self, reg: Any, conn: socket.socket) -> bool:
        if not (isinstance(reg, tuple) and len(reg) == 5 and reg[0] == "rejoin"):
            return False
        _, rank, world, host, port = reg
        if world != self._nranks or not 0 <= int(rank) < self._nranks:
            raise ValueError(f"bad rejoin registration: rank {rank} of {world}")
        conn.settimeout(None)
        with self._lock:
            self._pending.append((int(rank), (host, int(port)), conn))
        return True

    # -- leader-side API -------------------------------------------------
    def poll(self, eligible: Any) -> "tuple[int, tuple[str, int], socket.socket] | None":
        """Pop the first queued rejoin whose rank is in ``eligible`` (the
        world's dead set); ``None`` if nothing is committable yet."""
        with self._lock:
            for i, item in enumerate(self._pending):
                if item[0] in eligible:
                    return self._pending.pop(i)
        return None

    def reply(self, conn: socket.socket, payload: Any) -> None:
        """Answer a polled rejoiner (its new epoch/membership) and detach."""
        try:
            _send_blob(conn, pickle.dumps(payload))
        except OSError:
            pass  # the joiner gave up; its next attempt re-registers
        finally:
            conn.close()

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread.join(timeout=1.0)
        with self._lock:
            for _, _, conn in self._pending:
                conn.close()
            self._pending.clear()


def elastic_dial_join(
    comm: SocketComm, joiner: int, addr: tuple[str, int], epoch: int, timeout: float
) -> None:
    """Member side of a grow commit: open both directed channels to ``joiner``.

    The hello names this member, the channel direction and the commit
    epoch, so the joiner can reject a stale or foreign dial with a typed
    error instead of wiring a dead world into its mesh.
    """
    deadline = time.monotonic() + timeout
    out_sock = _connect_retry(tuple(addr), deadline, f"rejoining rank {joiner}")
    in_sock: socket.socket | None = None
    try:
        out_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        out_sock.sendall(_EHELLO.pack(_EMAGIC, comm.rank, 0, epoch))
        in_sock = _connect_retry(tuple(addr), deadline, f"rejoining rank {joiner}")
        in_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        in_sock.sendall(_EHELLO.pack(_EMAGIC, comm.rank, 1, epoch))
    except BaseException:
        out_sock.close()
        if in_sock is not None:
            in_sock.close()
        raise
    comm._install_peer(joiner, out_sock, in_sock)


def _accept_rejoin_mesh(
    rank: int,
    nranks: int,
    members: Any,
    epoch: int,
    listener: socket.socket,
    deadline: float,
) -> tuple[list[socket.socket | None], list[socket.socket | None]]:
    """Joiner side: accept both directed channels from every member."""
    out_socks: list[socket.socket | None] = [None] * nranks
    in_socks: list[socket.socket | None] = [None] * nranks
    members_set = {int(m) for m in members}
    want = 2 * (len(members_set) - 1)
    got = 0
    listener.settimeout(0.2)
    hello = bytearray(_EHELLO.size)
    try:
        while got < want:
            if time.monotonic() > deadline:
                raise RendezvousTimeoutError(
                    f"rank {rank}: only {got} of {want} rejoin channels "
                    "connected before the timeout"
                )
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                continue
            conn.settimeout(min(_HANDSHAKE_S, max(0.1, deadline - time.monotonic())))
            try:
                _recv_exact(conn, memoryview(hello))
                magic, src, direction, hello_epoch = _EHELLO.unpack(hello)
            except Exception:
                conn.close()
                continue  # stray connection; the real member will retry
            if (
                magic != _EMAGIC
                or src not in members_set
                or src == rank
                or direction not in (0, 1)
            ):
                conn.close()
                continue
            if hello_epoch != epoch:
                conn.close()
                raise StaleEpochError(
                    f"rank {src} dialed rejoining rank {rank} with epoch "
                    f"{hello_epoch}, but the committed rejoin epoch is {epoch}",
                    frame_epoch=int(hello_epoch),
                    current_epoch=int(epoch),
                )
            # direction 0 = member->joiner traffic: our inbound channel
            slot = in_socks if direction == 0 else out_socks
            if slot[src] is not None:
                conn.close()
                continue
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            slot[src] = conn
            got += 1
    except BaseException:
        for sock in out_socks + in_socks:
            if sock is not None:
                sock.close()
        raise
    return out_socks, in_socks


def _rejoin_world(
    rank: int,
    nranks: int,
    rdv_addr: tuple[str, int],
    host: str,
    timeout: float,
    trace: Trace,
    op_timeout: float | None = None,
) -> SocketComm:
    """Re-register a restarted rank and assemble its half of the mesh.

    Binds a fresh mesh listener, registers ``("rejoin", ...)`` with the
    elastic rendezvous, blocks until a member's
    :meth:`~repro.runtime.elastic.ElasticContext.step` commits the join
    and replies ``(epoch, members, hosts)``, then accepts both directed
    channels from every member. Returns the backend communicator already
    moved to the committed epoch, with the working
    :class:`~repro.runtime.elastic.ElasticWorld` attached as
    ``comm._elastic_world`` (dead ranks of the epoch recorded, so their
    late EOFs cannot abort the regrown world).
    """
    from .elastic import ElasticWorld

    deadline = time.monotonic() + timeout
    listener = _bind_listener(host, 0, 2 * nranks)
    try:
        mesh_addr = (host, listener.getsockname()[1])
        sock = _connect_retry(rdv_addr, deadline, "the elastic rendezvous")
        try:
            sock.settimeout(max(0.1, deadline - time.monotonic()))
            _send_blob(sock, pickle.dumps(("rejoin", rank, nranks, *mesh_addr)))
            try:
                epoch, members, hosts = pickle.loads(bytes(_recv_blob(sock)))
            except (TimeoutError, EOFError, OSError) as exc:
                raise RendezvousTimeoutError(
                    f"rank {rank}: the rejoin was not committed within "
                    f"{timeout:.1f}s (is the world calling "
                    "ElasticContext.step() between iterations?)"
                ) from exc
        finally:
            sock.close()
        members = [int(m) for m in members]
        if rank not in members:
            raise RendezvousError(
                f"rejoin reply does not include rank {rank}: members {members}"
            )
        out_socks, in_socks = _accept_rejoin_mesh(
            rank, nranks, members, int(epoch), listener, deadline
        )
    finally:
        listener.close()
    comm = SocketComm(rank, nranks, out_socks, in_socks, trace, op_timeout)
    comm.epoch = int(epoch)
    comm.dead_ranks = set(range(nranks)) - set(members)
    comm.topology = Topology(tuple(hosts)) if hosts else None
    comm._elastic_world = ElasticWorld(comm, members, int(epoch))
    return comm


# ----------------------------------------------------------------------
# single-host launcher (run_ranks backend)
# ----------------------------------------------------------------------
class SocketWorld:
    """Parent-side record of one socket-backend run (for ParallelResult)."""

    def __init__(
        self, size: int, start_method: str, pids: list[int], rendezvous: tuple[str, int]
    ) -> None:
        self.size = size
        self.start_method = start_method
        self.pids = pids
        self.rendezvous = rendezvous

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SocketWorld(size={self.size}, start_method={self.start_method!r}, "
            f"rendezvous={self.rendezvous[0]}:{self.rendezvous[1]})"
        )


def _socket_child_main(
    rank: int,
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    rdv_addr: tuple[str, int],
    setup_timeout: float,
    result_conn: Connection,
    close_list: list,
    topology: Topology | None = None,
    op_timeout: float | None = None,
) -> None:
    """Entry point of one rank process."""
    # under fork every result-pipe end and the rendezvous listener were
    # inherited; drop the foreign ones so EOF semantics stay crisp
    for conn in close_list:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    trace = Trace(nranks)
    try:
        comm = _join_world(
            rank, nranks, rdv_addr, "127.0.0.1", setup_timeout, trace, topology,
            op_timeout,
        )
    except BaseException as exc:  # noqa: BLE001 - setup failure is the rank failure
        result_conn.send(("error", rank, _portable_exception(exc), []))
        result_conn.close()
        return
    try:
        result = fn(comm, *args, **kwargs)
        comm.shutdown()
        payload = ("ok", rank, result, trace.events(rank))
    except WorldAbortedError:
        payload = ("aborted", rank, None, trace.events(rank))
    except BaseException as exc:  # noqa: BLE001 - must propagate rank errors
        payload = ("error", rank, _portable_exception(exc), trace.events(rank))
    try:
        result_conn.send(payload)
    except Exception as exc:  # unpicklable result/exception
        result_conn.send(("error", rank, _portable_exception(exc), None))
    finally:
        result_conn.close()
    if payload[0] == "ok":
        # keep draining peers' traffic until they FIN, so a late buffered
        # send to this finished rank never hits a reset connection
        comm.join_pumps(_LINGER_S)
    comm.close()


class SocketBackend(ProcessBackend):
    """Multi-host-capable backend: one OS process per rank, TCP transport.

    ``run`` launches all ranks on this host (rendezvous served by the
    parent over loopback) — the same collectives then span machines by
    starting each rank with ``python -m repro serve-rank`` against a
    shared rendezvous address instead.
    """

    name = "socket"

    def __init__(self, rendezvous_timeout: float = DEFAULT_RENDEZVOUS_TIMEOUT) -> None:
        self.rendezvous_timeout = float(rendezvous_timeout)

    def _setup_timeout(self, timeout: float | None) -> float:
        """World-assembly budget: the rendezvous timeout, capped by the
        run timeout so a failed setup never outlives the run watchdog."""
        if timeout is None:
            return self.rendezvous_timeout
        return min(self.rendezvous_timeout, timeout)

    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,  # serialization always isolates; accepted for API parity
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Topology | None = None,
        **kwargs: Any,
    ) -> ParallelResult:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        ctx = mp.get_context(_START_METHOD)
        _check_spawn_picklable(fn, args, kwargs, self.name)
        setup_timeout = self._setup_timeout(timeout)

        listener = _bind_listener("127.0.0.1", 0, nranks)
        rdv_addr = ("127.0.0.1", listener.getsockname()[1])
        result_pipes: list[tuple[Connection, Connection]] = []
        procs: list[mp.Process] = []
        server: threading.Thread | None = None
        try:
            result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
            for rank in range(nranks):
                close_list: list = []
                if _START_METHOD == "fork":
                    # spawn children only inherit what we pass; fork children
                    # inherit everything and must close foreign ends explicitly
                    own = id(result_pipes[rank][1])
                    close_list = [
                        c for r, w in result_pipes for c in (r, w) if id(c) != own
                    ]
                    close_list.append(listener)
                p = ctx.Process(
                    target=_socket_child_main,
                    args=(
                        rank,
                        nranks,
                        fn,
                        args,
                        kwargs,
                        rdv_addr,
                        setup_timeout,
                        result_pipes[rank][1],
                        close_list,
                        topology,
                        op_timeout,
                    ),
                    name=f"rank-{rank}",
                    daemon=True,
                )
                p.start()
                procs.append(p)
        except BaseException:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for r, w in result_pipes:
                r.close()
                w.close()
            listener.close()
            raise

        # serve the rendezvous only after forking: children queue their
        # connects against the listen backlog in the meantime, and the
        # parent never forks while its own service thread is mid-flight
        server = threading.Thread(
            target=_serve_rendezvous,
            args=(listener, nranks, setup_timeout),
            name="socket-rendezvous",
            daemon=True,
        )
        server.start()
        for _, w in result_pipes:
            w.close()

        try:
            no_conns = [[None] * nranks for _ in range(nranks)]
            outcome = self._collect(
                procs, [r for r, _ in result_pipes], nranks, timeout, no_conns
            )
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for r, _ in result_pipes:
                r.close()
            listener.close()  # idempotent; normally the server closed it
            server.join(timeout=1.0)

        world = SocketWorld(nranks, _START_METHOD, [p.pid for p in procs], rdv_addr)
        return _finalize_run(outcome, trace, nranks, world)


# ----------------------------------------------------------------------
# multi-host entry point (``python -m repro serve-rank``)
# ----------------------------------------------------------------------
def demo_program(comm) -> dict:
    """Default ``serve-rank`` program: one sparse allreduce, digest out.

    Every rank contributes a seeded random stream, so the reduced
    checksum is identical on every host — a quick end-to-end proof that
    a freshly assembled multi-host world computes the right thing.
    """
    from ..collectives.sparse import ssar_recursive_double
    from ..streams import SparseStream

    gen = np.random.default_rng(4242 + comm.rank)
    stream = SparseStream.random_uniform(1 << 16, nnz=600, rng=gen)
    out = ssar_recursive_double(comm, stream)
    dense = out.to_dense()
    return {
        "rank": comm.rank,
        "size": comm.size,
        "nnz": int(out.nnz),
        "checksum": float(dense.sum()),
        "bytes_sent": int(comm.trace.bytes_sent_by(comm.rank)),
    }


def _resolve_program(spec: str | None) -> Callable[..., Any]:
    """``module:function`` -> the rank program (default: the demo)."""
    if spec is None:
        return demo_program
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"program spec must look like 'package.module:function', got {spec!r}"
        )
    fn = getattr(importlib.import_module(module_name), attr)
    if not callable(fn):
        raise ValueError(f"{spec!r} resolved to a non-callable {fn!r}")
    return fn


def serve_rank(
    rendezvous: tuple[str, int],
    rank: int,
    nranks: int,
    program: "str | Callable[..., Any] | None" = None,
    host: str = "127.0.0.1",
    rendezvous_timeout: float = DEFAULT_RENDEZVOUS_TIMEOUT,
    verbose: bool = False,
    config: "RunConfig | None" = None,
    topology: "Topology | str | int | None" = _UNSET,
    op_timeout: float | None = _UNSET,
    fault_plan: Any = _UNSET,
    elastic: bool = False,
    rejoin: bool = False,
) -> Any:
    """Run one rank of a multi-host socket world and return its result.

    Rank 0 listens: it binds the rendezvous address itself and serves the
    address exchange while also participating as an ordinary rank. Every
    other rank — on this machine or any other — points at the same
    ``rendezvous`` address. ``host`` is the address *peers* use to reach
    this rank's mesh listener, so on a real cluster pass the machine's
    routable IP (the loopback default only assembles single-host worlds).

    The rank program sees the assembled ``(rank, host)`` map as
    ``comm.topology``, so topology-aware collectives (``ssar_hier``)
    exploit host locality automatically; an explicit ``topology`` (any
    spelling :func:`~repro.runtime.topology.normalize_topology` accepts)
    overrides the rendezvous-derived map — it is validated against
    ``nranks`` before any socket work starts, with the same error every
    launcher raises. ``verbose=True`` additionally logs the host grouping
    to stderr once the world assembles.

    ``op_timeout`` bounds every blocked send/recv of this rank
    (:class:`~repro.runtime.comm.CommTimeoutError` past it); ``fault_plan``
    (a :class:`~repro.runtime.faults.FaultPlan` or its spec string, e.g.
    ``"seed=7,drop=0.01"``) runs the program through the fault-injecting
    communicator for manual chaos runs. A
    :class:`~repro.runtime.RunConfig` passed as ``config=`` supplies
    ``topology``/``op_timeout``/``fault_plan`` when they are not given
    explicitly (explicit kwargs win, matching ``run_ranks``).

    ``elastic=True`` (rank 0 only) keeps the rendezvous open after
    assembly so killed ranks can be revived: restart the dead rank's
    ``serve-rank`` command with ``rejoin=True`` (CLI: ``--rejoin``) and it
    registers into the next world epoch; the survivors commit the join at
    their next :meth:`~repro.runtime.elastic.ElasticContext.step`. Rank 0
    hosts the rendezvous, so it cannot itself be revived. Two-host recipe
    (after rank 1's host died mid-run and the survivors shrank)::

        # host B, reviving rank 1 of the original 4-rank world
        python -m repro serve-rank --rendezvous hostA:29400 \\
            --rank 1 --nranks 4 --host hostB --rejoin
    """
    if not 0 <= rank < nranks:
        raise ValueError(f"rank {rank} out of range [0, {nranks})")
    cfg = (config if config is not None else RunConfig()).merged(
        topology=topology, op_timeout=op_timeout, fault_plan=fault_plan
    )
    topology, op_timeout, fault_plan = cfg.topology, cfg.op_timeout, cfg.fault_plan
    topo = normalize_topology(topology, nranks)
    fn = program if callable(program) else _resolve_program(program)
    if fault_plan is not None:
        from .faults import FaultPlan, FaultyComm

        plan = (
            FaultPlan.from_spec(fault_plan) if isinstance(fault_plan, str) else fault_plan
        )
        inner_fn = fn

        def fn(comm, *fargs, **fkwargs):  # noqa: F811 - deliberate wrap
            return inner_fn(FaultyComm(comm, plan), *fargs, **fkwargs)

    server: threading.Thread | None = None
    elastic_server: ElasticRendezvous | None = None
    trace = Trace(nranks)
    if rejoin:
        if rank == 0:
            raise ValueError(
                "rank 0 hosts the elastic rendezvous and cannot rejoin; "
                "revive a non-zero rank"
            )
        comm = _rejoin_world(
            rank, nranks, rendezvous, host, rendezvous_timeout, trace, op_timeout
        )
        if topo is not None:
            comm.topology = topo
        if verbose:
            print(
                f"[serve-rank {rank}/{nranks}] rejoined at epoch {comm.epoch}: "
                f"members {sorted(set(range(nranks)) - comm.dead_ranks)}",
                file=sys.stderr,
            )
    else:
        if rank == 0:
            rdv_listener = _bind_listener(rendezvous[0], rendezvous[1], nranks)
            if elastic:
                elastic_server = ElasticRendezvous(
                    rdv_listener, nranks, rendezvous_timeout
                )
            else:
                server = threading.Thread(
                    target=_serve_rendezvous,
                    args=(rdv_listener, nranks, rendezvous_timeout),
                    name="socket-rendezvous",
                    daemon=True,
                )
                server.start()
        comm = _join_world(
            rank, nranks, rendezvous, host, rendezvous_timeout, trace, topo, op_timeout
        )
        if elastic_server is not None:
            # the elastic leader's rank program polls this for rejoins
            comm._elastic_rendezvous = elastic_server
        if verbose:
            print(
                f"[serve-rank {rank}/{nranks}] world assembled: "
                f"{comm.topology.describe()}",
                file=sys.stderr,
            )
    try:
        result = fn(comm)
        comm.shutdown()
        comm.join_pumps(_LINGER_S)
        return result
    finally:
        comm.close()
        if server is not None:
            server.join(timeout=1.0)
        if elastic_server is not None:
            elastic_server.close()


register_backend(SocketBackend.name, SocketBackend)
