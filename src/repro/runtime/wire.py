"""Wire format of the process backend: real serialized message framing.

Every message the :mod:`~repro.runtime.process_backend` moves between rank
processes is one byte blob::

    <frame header: tag, seq, nbytes>  <payload>

The payload encoding has a fast path for the library's own
:class:`~repro.streams.SparseStream`, laid out the way §5.1 of the paper
describes the buffer: the *first word* is the sparse/dense flag, followed
by the dimension, dtype and the raw index/value buffers. Everything else
(scalars, arrays, tuples, quantized blocks, containers that happen to hold
streams) falls back to pickle — the transport is "pickle over pipe" with a
binary stream format where it matters for fidelity.

Decoded arrays are always fresh writable copies, so the process backend
gets MPI's independent-buffer guarantee directly from (de)serialization —
no explicit payload copy is needed on send.
"""

from __future__ import annotations

import math
import pickle
import struct
from typing import Any

import numpy as np

from ..streams import SparseStream

__all__ = [
    "encode_message",
    "decode_message",
    "encode_payload",
    "decode_payload",
    "FLAG_SPARSE",
    "FLAG_DENSE",
]

#: frame header: tag (q), seq (q), accounted wire bytes (q).
_FRAME = struct.Struct("<qqq")

#: payload kind discriminator (one byte).
_KIND_PICKLE = 0
_KIND_STREAM = 1

#: §5.1 header word values: the first word of a stream buffer.
FLAG_SPARSE = 0
FLAG_DENSE = 1

#: stream header: flag word (Q), dimension (Q), nnz/payload length (Q),
#: value dtype char (c), value_wire_bytes annotation (d; NaN = unset).
_STREAM_HEADER = struct.Struct("<QQQcd")

_DTYPE_CODES = {
    np.dtype(np.float16): b"e",
    np.dtype(np.float32): b"f",
    np.dtype(np.float64): b"d",
}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}


def encode_payload(obj: Any) -> bytes:
    """Serialize one payload (stream fast path, pickle fallback)."""
    if isinstance(obj, SparseStream):
        return bytes([_KIND_STREAM]) + _encode_stream(obj)
    return bytes([_KIND_PICKLE]) + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_payload(blob: bytes | memoryview) -> Any:
    """Inverse of :func:`encode_payload`."""
    view = memoryview(blob)
    kind = view[0]
    body = view[1:]
    if kind == _KIND_STREAM:
        return _decode_stream(body)
    if kind == _KIND_PICKLE:
        return pickle.loads(body)
    raise ValueError(f"corrupt payload: unknown kind byte {kind}")


def encode_message(tag: int, seq: int, nbytes: int, obj: Any) -> bytes:
    """Frame one point-to-point message for the pipe."""
    return _FRAME.pack(tag, seq, nbytes) + encode_payload(obj)


def decode_message(blob: bytes) -> tuple[int, int, int, Any]:
    """Returns ``(tag, seq, nbytes, payload)``."""
    tag, seq, nbytes = _FRAME.unpack_from(blob)
    return tag, seq, nbytes, decode_payload(memoryview(blob)[_FRAME.size:])


# ----------------------------------------------------------------------
# SparseStream <-> bytes (§5.1 buffer layout)
# ----------------------------------------------------------------------
def _encode_stream(s: SparseStream) -> bytes:
    dtype_code = _DTYPE_CODES[s.value_dtype]
    wire = float("nan") if s.value_wire_bytes is None else float(s.value_wire_bytes)
    if s.is_dense:
        payload = s.dense_payload
        header = _STREAM_HEADER.pack(FLAG_DENSE, s.dimension, payload.size, dtype_code, wire)
        return header + payload.tobytes()
    header = _STREAM_HEADER.pack(FLAG_SPARSE, s.dimension, s.nnz, dtype_code, wire)
    return header + s.indices.tobytes() + s.values.tobytes()


def _decode_stream(view: memoryview) -> SparseStream:
    flag, dimension, count, dtype_code, wire = _STREAM_HEADER.unpack_from(view)
    value_dtype = _CODE_DTYPES[bytes(dtype_code)]
    body = view[_STREAM_HEADER.size:]
    if flag == FLAG_DENSE:
        dense = np.frombuffer(body, dtype=value_dtype, count=count).copy()
        out = SparseStream(dimension, dense=dense, value_dtype=value_dtype, copy=False)
    elif flag == FLAG_SPARSE:
        from ..config import INDEX_DTYPE

        idx_bytes = count * INDEX_DTYPE.itemsize
        indices = np.frombuffer(body[:idx_bytes], dtype=INDEX_DTYPE).copy()
        values = np.frombuffer(body[idx_bytes:], dtype=value_dtype, count=count).copy()
        out = SparseStream(
            dimension, indices=indices, values=values, value_dtype=value_dtype, copy=False
        )
    else:
        raise ValueError(f"corrupt stream payload: header flag word {flag}")
    out.value_wire_bytes = None if math.isnan(wire) else wire
    return out
