"""Wire format of the process-family backends: serialized message framing.

Every message the :mod:`~repro.runtime.process_backend` and
:mod:`~repro.runtime.shmem_backend` move between rank processes is one
byte frame::

    <frame header: tag, seq, nbytes, epoch>  <payload>

The payload encoding has a fast path for the library's own
:class:`~repro.streams.SparseStream`, laid out the way §5.1 of the paper
describes the buffer: the *first word* is the sparse/dense flag, followed
by the dimension, dtype and the raw index/value buffers. Everything else
(scalars, arrays, tuples, quantized blocks, containers that happen to hold
streams) falls back to pickle — the transport is "pickle over pipe" with a
binary stream format where it matters for fidelity.

Allocation discipline
---------------------
The encoder is *vectored*: :func:`encode_frame_parts` returns the frame as
a list of buffer segments — a small header plus direct (zero-copy) views
of the stream's index/value arrays.  Transports that can scatter/gather
(the shared-memory ring backend) write the parts straight into their
destination with no intermediate blob; the pipe transport joins them into
one preallocated ``bytearray``, so every payload byte is copied exactly
once on the way out.

The decoder reads arrays with ``np.frombuffer(view, offset=...)``: with
``copy=True`` (the default) each array is materialised with a single copy
out of the source buffer, giving the receiver MPI's independent-buffer
guarantee; with ``copy=False`` the arrays are *views* into the caller's
buffer — valid only as long as that buffer is, and writable only if it is.
"""

from __future__ import annotations

import math
import pickle
import struct
from typing import Any

import numpy as np

from ..streams import SparseStream

__all__ = [
    "encode_message",
    "decode_message",
    "encode_payload",
    "decode_payload",
    "encode_payload_parts",
    "encode_frame_parts",
    "decode_frame_epoch",
    "FRAME_HEADER_SIZE",
    "FLAG_SPARSE",
    "FLAG_DENSE",
]

#: frame header: tag (q), seq (q), accounted wire bytes (q), world epoch (q).
#: The epoch is the elastic world version (see :mod:`~repro.runtime.elastic`):
#: a frame stamped with an epoch older than the receiver's current world is
#: from a membership that no longer exists and must not be delivered.
_FRAME = struct.Struct("<qqqq")

#: size of the frame header in bytes (transports size their buffers with it).
FRAME_HEADER_SIZE = _FRAME.size

#: payload kind discriminator (one byte).
_KIND_PICKLE = 0
_KIND_STREAM = 1

#: §5.1 header word values: the first word of a stream buffer.
FLAG_SPARSE = 0
FLAG_DENSE = 1

#: stream header: flag word (Q), dimension (Q), nnz/payload length (Q),
#: value dtype char (c), value_wire_bytes annotation (d; NaN = unset).
_STREAM_HEADER = struct.Struct("<QQQcd")

_DTYPE_CODES = {
    np.dtype(np.float16): b"e",
    np.dtype(np.float32): b"f",
    np.dtype(np.float64): b"d",
}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}


def _array_buffer(arr: np.ndarray):
    """A zero-copy byte view of ``arr``'s buffer (copies only if needed)."""
    if arr.flags.c_contiguous:
        return memoryview(arr).cast("B")
    return arr.tobytes()  # non-contiguous: no byte view exists


# ----------------------------------------------------------------------
# vectored encode
# ----------------------------------------------------------------------
def encode_payload_parts(obj: Any) -> tuple[int, list]:
    """Serialize one payload as ``(total_bytes, [buffer, ...])``.

    Stream payloads come back as a small header plus direct views of the
    index/value arrays — nothing is copied here. Everything else is one
    pickle blob. Transports copy each part exactly once, into the pipe
    blob or straight into the shared-memory ring.
    """
    if isinstance(obj, SparseStream):
        wire = float("nan") if obj.value_wire_bytes is None else float(obj.value_wire_bytes)
        dtype_code = _DTYPE_CODES[obj.value_dtype]
        if obj.is_dense:
            payload = obj.dense_payload
            header = bytes([_KIND_STREAM]) + _STREAM_HEADER.pack(
                FLAG_DENSE, obj.dimension, payload.size, dtype_code, wire
            )
            parts = [header, _array_buffer(payload)]
        else:
            header = bytes([_KIND_STREAM]) + _STREAM_HEADER.pack(
                FLAG_SPARSE, obj.dimension, obj.nnz, dtype_code, wire
            )
            parts = [header, _array_buffer(obj.indices), _array_buffer(obj.values)]
    else:
        parts = [
            bytes([_KIND_PICKLE]),
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
        ]
    return sum(len(p) for p in parts), parts


def encode_frame_parts(
    tag: int, seq: int, nbytes: int, obj: Any, epoch: int = 0
) -> tuple[int, list]:
    """One framed message as ``(total_bytes, [buffer, ...])`` (vectored)."""
    payload_len, parts = encode_payload_parts(obj)
    return FRAME_HEADER_SIZE + payload_len, [_FRAME.pack(tag, seq, nbytes, epoch), *parts]


def encode_payload(obj: Any) -> bytes:
    """Serialize one payload (stream fast path, pickle fallback)."""
    total, parts = encode_payload_parts(obj)
    return b"".join(bytes(p) if isinstance(p, memoryview) else p for p in parts)


def encode_message(
    tag: int, seq: int, nbytes: int, obj: Any, epoch: int = 0
) -> bytearray:
    """Frame one point-to-point message for a byte-stream transport.

    Gathers the vectored parts into a single preallocated ``bytearray``
    (accepted by ``Connection.send_bytes``), so each payload byte is
    copied exactly once — no ``tobytes()`` staging, no ``+`` chains.
    """
    total, parts = encode_frame_parts(tag, seq, nbytes, obj, epoch)
    out = bytearray(total)
    pos = 0
    for part in parts:
        n = len(part)
        out[pos:pos + n] = part
        pos += n
    return out


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
def decode_payload(blob: bytes | bytearray | memoryview, copy: bool = True) -> Any:
    """Inverse of :func:`encode_payload`.

    With ``copy=True`` decoded arrays are fresh writable buffers; with
    ``copy=False`` stream payloads are zero-copy views into ``blob``
    (read-only when ``blob`` is) — the shared-memory fast path.
    """
    view = memoryview(blob)
    kind = view[0]
    if kind == _KIND_STREAM:
        return _decode_stream(view, copy)
    if kind == _KIND_PICKLE:
        return pickle.loads(view[1:])
    raise ValueError(f"corrupt payload: unknown kind byte {kind}")


def decode_message(
    blob: bytes | bytearray | memoryview, copy: bool = True
) -> tuple[int, int, int, int, Any]:
    """Returns ``(tag, seq, nbytes, epoch, payload)``."""
    tag, seq, nbytes, epoch = _FRAME.unpack_from(blob)
    return (
        tag,
        seq,
        nbytes,
        epoch,
        decode_payload(memoryview(blob)[FRAME_HEADER_SIZE:], copy),
    )


def decode_frame_epoch(blob: bytes | bytearray | memoryview) -> int:
    """The world epoch stamped on a framed message, without decoding it."""
    return _FRAME.unpack_from(blob)[3]


# ----------------------------------------------------------------------
# SparseStream <-> bytes (§5.1 buffer layout)
# ----------------------------------------------------------------------
def _read_array(
    view: memoryview, offset: int, dtype: np.dtype, count: int, copy: bool
) -> np.ndarray:
    """One array out of ``view`` — a single copy, or a zero-copy view."""
    arr = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
    return arr.copy() if copy else arr


def _decode_stream(view: memoryview, copy: bool = True) -> SparseStream:
    # view[0] is the kind byte; the §5.1 stream header starts right after
    flag, dimension, count, dtype_code, wire = _STREAM_HEADER.unpack_from(view, 1)
    value_dtype = _CODE_DTYPES[bytes(dtype_code)]
    body = 1 + _STREAM_HEADER.size
    if flag == FLAG_DENSE:
        dense = _read_array(view, body, value_dtype, count, copy)
        out = SparseStream(dimension, dense=dense, value_dtype=value_dtype, copy=False)
    elif flag == FLAG_SPARSE:
        from ..config import INDEX_DTYPE

        indices = _read_array(view, body, INDEX_DTYPE, count, copy)
        values = _read_array(
            view, body + count * INDEX_DTYPE.itemsize, value_dtype, count, copy
        )
        out = SparseStream(
            dimension, indices=indices, values=values, value_dtype=value_dtype, copy=False
        )
    else:
        raise ValueError(f"corrupt stream payload: header flag word {flag}")
    out.value_wire_bytes = None if math.isnan(wire) else wire
    return out
