"""Parallel run harness: spawn one rank per thread/process and collect results.

``run_ranks(fn, nranks)`` is the ``mpiexec`` analog: it resolves the
requested :class:`~repro.runtime.backend.Backend` (``"thread"`` by default,
``"process"`` for real multiprocess transport), runs ``fn(comm, ...)`` on
every rank concurrently, propagates the first exception (aborting blocked
peers instead of deadlocking) and returns the per-rank results together
with the recorded trace.
"""

from __future__ import annotations

from typing import Any, Callable

from .backend import Backend, ParallelResult, RankError, get_backend
from .runconfig import _UNSET, RunConfig
from .topology import Topology, normalize_topology
from .trace import Trace

__all__ = ["run_ranks", "ParallelResult", "RankError"]


def run_ranks(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    config: RunConfig | None = None,
    backend: "str | Backend" = _UNSET,
    copy_payloads: bool = True,
    trace: Trace | None = None,
    timeout: float | None = _UNSET,
    op_timeout: float | None = _UNSET,
    topology: "Topology | str | int | None" = _UNSET,
    fault_plan: Any = _UNSET,
    **kwargs: Any,
) -> ParallelResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` concurrent ranks.

    Parameters
    ----------
    fn:
        The per-rank program. Its first argument is the rank's communicator.
    nranks:
        World size ``P``.
    config:
        Optional :class:`~repro.runtime.RunConfig` carrying the launcher
        knobs in one frozen object. Individual kwargs below fold *over* it:
        an explicitly passed ``backend=``/``timeout=``/... always wins over
        the config field, and omitting both falls back to the documented
        defaults (``backend="thread"``, ``timeout=300.0``, ...).
    backend:
        Which runtime executes the ranks: ``"thread"`` (in-process, the
        default), ``"process"`` (one OS process per rank with serialized
        pipe transport), ``"shmem"`` (processes over shared-memory
        rings), ``"socket"`` (processes over a TCP mesh — the multi-host
        transport), or any registered :class:`Backend` instance.
    copy_payloads:
        Copy messages on send (MPI semantics). Disable only for read-only
        payload protocols; the process backend always isolates payloads
        through serialization.
    trace:
        Optional pre-existing trace to append to (e.g. to accumulate multiple
        collective invocations into one replayable log).
    timeout:
        Per-run watchdog in seconds; ``None`` disables it.
    op_timeout:
        Per-operation deadline in seconds for blocked transport sends and
        receives; ``None`` (the default) blocks until the run watchdog. A
        rank stalled past the deadline raises
        :class:`~repro.runtime.comm.CommTimeoutError` naming the peer and
        tag, instead of hanging until ``timeout``.
    topology:
        Optional rank -> host map surfaced as ``comm.topology`` on every
        rank: a :class:`~repro.runtime.topology.Topology`, an ``"HxR"``
        spec string (hosts x ranks-per-node, e.g. ``"2x4"``), an ``int``
        (ranks per node), or a per-rank host list. Lets any backend
        *simulate* a multi-host world for topology-aware collectives; on
        the socket backend it overrides the rendezvous-derived map.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` (or spec string,
        e.g. ``"seed=7,drop=0.02,kill=1@5"``) injecting deterministic
        drop/delay/kill faults: the resolved backend is wrapped in
        :class:`~repro.runtime.faults.FaultyBackend` so every rank's
        transport runs under the plan.

    Returns
    -------
    ParallelResult
        Per-rank return values (indexable by rank) plus the trace.

    Raises
    ------
    RankError
        Re-raises the first rank failure, chained to the original exception.
    """
    cfg = (config if config is not None else RunConfig()).merged(
        backend=backend,
        timeout=timeout,
        op_timeout=op_timeout,
        topology=topology,
        fault_plan=fault_plan,
    )
    resolved = get_backend(cfg.backend)
    if cfg.fault_plan is not None:
        from .faults import FaultPlan, FaultyBackend

        plan = (
            FaultPlan.from_spec(cfg.fault_plan)
            if isinstance(cfg.fault_plan, str)
            else cfg.fault_plan
        )
        if isinstance(resolved, FaultyBackend):
            resolved = resolved.with_plan(plan)
        else:
            resolved = FaultyBackend(resolved, plan)
    return resolved.run(
        fn,
        nranks,
        *args,
        copy_payloads=copy_payloads,
        trace=trace,
        timeout=cfg.timeout,
        op_timeout=cfg.op_timeout,
        topology=normalize_topology(cfg.topology, nranks),
        **kwargs,
    )
