"""Parallel run harness: spawn one thread per rank and collect results.

``run_ranks(fn, nranks)`` is the ``mpiexec`` analog: it builds a
:class:`~repro.runtime.thread_backend.ThreadWorld`, runs ``fn(comm, ...)`` on
every rank concurrently, propagates the first exception (aborting blocked
peers instead of deadlocking) and returns the per-rank results together with
the recorded trace.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from .thread_backend import ThreadWorld, WorldAbortedError
from .trace import Trace

__all__ = ["run_ranks", "ParallelResult", "RankError"]


class RankError(RuntimeError):
    """Wraps an exception raised inside a rank function."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


@dataclass
class ParallelResult:
    """Outcome of one parallel run."""

    results: list[Any]
    trace: Trace
    world: ThreadWorld

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, rank: int) -> Any:
        return self.results[rank]


def run_ranks(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    copy_payloads: bool = True,
    trace: Trace | None = None,
    timeout: float | None = 300.0,
    **kwargs: Any,
) -> ParallelResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` concurrent ranks.

    Parameters
    ----------
    fn:
        The per-rank program. Its first argument is the rank's communicator.
    nranks:
        World size ``P``.
    copy_payloads:
        Copy messages on send (MPI semantics). Disable only for read-only
        payload protocols.
    trace:
        Optional pre-existing trace to append to (e.g. to accumulate multiple
        collective invocations into one replayable log).
    timeout:
        Per-run watchdog in seconds; ``None`` disables it.

    Returns
    -------
    ParallelResult
        Per-rank return values (indexable by rank) plus the trace.

    Raises
    ------
    RankError
        Re-raises the first rank failure, chained to the original exception.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    world = ThreadWorld(nranks, copy_payloads=copy_payloads, trace=trace)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comm(rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except WorldAbortedError:
            pass  # secondary failure: another rank already aborted the world
        except BaseException as exc:  # noqa: BLE001 - must propagate rank errors
            with errors_lock:
                errors.append((rank, exc))
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"rank-{rank}", daemon=True)
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.abort()
            raise TimeoutError(
                f"parallel run did not finish within {timeout}s "
                f"(likely deadlock in {t.name})"
            )

    if errors:
        rank, original = min(errors, key=lambda e: e[0])
        raise RankError(rank, original) from original
    return ParallelResult(results=results, trace=world.trace, world=world)
