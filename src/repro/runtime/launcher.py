"""Parallel run harness: spawn one rank per thread/process and collect results.

``run_ranks(fn, nranks)`` is the ``mpiexec`` analog: it resolves the
requested :class:`~repro.runtime.backend.Backend` (``"thread"`` by default,
``"process"`` for real multiprocess transport), runs ``fn(comm, ...)`` on
every rank concurrently, propagates the first exception (aborting blocked
peers instead of deadlocking) and returns the per-rank results together
with the recorded trace.
"""

from __future__ import annotations

from typing import Any, Callable

from .backend import Backend, ParallelResult, RankError, get_backend
from .topology import Topology, normalize_topology
from .trace import Trace

__all__ = ["run_ranks", "ParallelResult", "RankError"]


def run_ranks(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    backend: "str | Backend" = "thread",
    copy_payloads: bool = True,
    trace: Trace | None = None,
    timeout: float | None = 300.0,
    topology: "Topology | str | int | None" = None,
    **kwargs: Any,
) -> ParallelResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` concurrent ranks.

    Parameters
    ----------
    fn:
        The per-rank program. Its first argument is the rank's communicator.
    nranks:
        World size ``P``.
    backend:
        Which runtime executes the ranks: ``"thread"`` (in-process, the
        default), ``"process"`` (one OS process per rank with serialized
        pipe transport), ``"shmem"`` (processes over shared-memory
        rings), ``"socket"`` (processes over a TCP mesh — the multi-host
        transport), or any registered :class:`Backend` instance.
    copy_payloads:
        Copy messages on send (MPI semantics). Disable only for read-only
        payload protocols; the process backend always isolates payloads
        through serialization.
    trace:
        Optional pre-existing trace to append to (e.g. to accumulate multiple
        collective invocations into one replayable log).
    timeout:
        Per-run watchdog in seconds; ``None`` disables it.
    topology:
        Optional rank -> host map surfaced as ``comm.topology`` on every
        rank: a :class:`~repro.runtime.topology.Topology`, an ``"HxR"``
        spec string (hosts x ranks-per-node, e.g. ``"2x4"``), an ``int``
        (ranks per node), or a per-rank host list. Lets any backend
        *simulate* a multi-host world for topology-aware collectives; on
        the socket backend it overrides the rendezvous-derived map.

    Returns
    -------
    ParallelResult
        Per-rank return values (indexable by rank) plus the trace.

    Raises
    ------
    RankError
        Re-raises the first rank failure, chained to the original exception.
    """
    return get_backend(backend).run(
        fn,
        nranks,
        *args,
        copy_payloads=copy_payloads,
        trace=trace,
        timeout=timeout,
        topology=normalize_topology(topology, nranks),
        **kwargs,
    )
