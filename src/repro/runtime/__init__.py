"""Message-passing runtime: the library's MPI stand-in.

The runtime is split into a backend-neutral core and pluggable backends:

* :mod:`~repro.runtime.comm` — the :class:`Communicator` interface all
  collectives are written against;
* :mod:`~repro.runtime.backend` — the :class:`Backend` abstraction and
  registry (``"thread"``, ``"process"``, ``"shmem"`` and ``"socket"``
  ship built in);
* :mod:`~repro.runtime.launcher` — :func:`run_ranks`, the ``mpiexec``
  analog, with a ``backend=`` selector;
* :mod:`~repro.runtime.trace` / :mod:`~repro.runtime.nonblocking` —
  event recording and MPI-3-style non-blocking collectives.
"""

from .backend import (
    Backend,
    ParallelResult,
    RankError,
    available_backends,
    get_backend,
    register_backend,
)
from .comm import (
    AbortState,
    CommTimeoutError,
    Communicator,
    CompletedHandle,
    DeferredRecvHandle,
    Handle,
    RankFailedError,
    StaleEpochError,
    SubCommunicator,
    TAG_USER_LIMIT,
    WorldAbortedError,
    copy_payload,
    payload_nbytes,
)
from .elastic import ElasticContext, ElasticWorld, shrink, thread_rejoin
from .faults import FaultPlan, FaultyBackend, FaultyComm, RankKilledError
from .launcher import run_ranks
from .runconfig import RunConfig
from .topology import (
    Topology,
    bytes_by_tier,
    check_topology_size,
    inter_node_bytes,
    normalize_topology,
)
from .nonblocking import NonBlockingHandle, i_collective
from .process_backend import ProcessBackend, ProcessComm, ProcessWorld
from .shmem_backend import SharedRing, ShmemBackend, ShmemComm, ShmemWorld
from .socket_backend import (
    ElasticRendezvous,
    RendezvousError,
    RendezvousTimeoutError,
    SocketBackend,
    SocketComm,
    SocketWorld,
    serve_rank,
)
from .thread_backend import ThreadBackend, ThreadComm, ThreadWorld
from .trace import COMPUTE, MARK, RECV, SEND, Trace, TraceEvent

__all__ = [
    "Communicator",
    "SubCommunicator",
    "Handle",
    "payload_nbytes",
    "copy_payload",
    "TAG_USER_LIMIT",
    "Topology",
    "normalize_topology",
    "check_topology_size",
    "inter_node_bytes",
    "bytes_by_tier",
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "ParallelResult",
    "RankError",
    "run_ranks",
    "RunConfig",
    "NonBlockingHandle",
    "i_collective",
    "CompletedHandle",
    "DeferredRecvHandle",
    "ThreadBackend",
    "ThreadComm",
    "ThreadWorld",
    "ProcessBackend",
    "ProcessComm",
    "ProcessWorld",
    "ShmemBackend",
    "ShmemComm",
    "ShmemWorld",
    "SharedRing",
    "SocketBackend",
    "SocketComm",
    "SocketWorld",
    "RendezvousError",
    "RendezvousTimeoutError",
    "serve_rank",
    "WorldAbortedError",
    "RankFailedError",
    "CommTimeoutError",
    "StaleEpochError",
    "AbortState",
    "ElasticContext",
    "ElasticWorld",
    "ElasticRendezvous",
    "shrink",
    "thread_rejoin",
    "FaultPlan",
    "FaultyBackend",
    "FaultyComm",
    "RankKilledError",
    "Trace",
    "TraceEvent",
    "SEND",
    "RECV",
    "COMPUTE",
    "MARK",
]
