"""Message-passing runtime: the library's MPI stand-in."""

from .comm import Communicator, Handle, payload_nbytes, copy_payload, TAG_USER_LIMIT
from .launcher import ParallelResult, RankError, run_ranks
from .nonblocking import NonBlockingHandle, i_collective
from .thread_backend import (
    CompletedHandle,
    DeferredRecvHandle,
    ThreadComm,
    ThreadWorld,
    WorldAbortedError,
)
from .trace import COMPUTE, MARK, RECV, SEND, Trace, TraceEvent

__all__ = [
    "Communicator",
    "Handle",
    "payload_nbytes",
    "copy_payload",
    "TAG_USER_LIMIT",
    "ParallelResult",
    "RankError",
    "run_ranks",
    "NonBlockingHandle",
    "i_collective",
    "CompletedHandle",
    "DeferredRecvHandle",
    "ThreadComm",
    "ThreadWorld",
    "WorldAbortedError",
    "Trace",
    "TraceEvent",
    "SEND",
    "RECV",
    "COMPUTE",
    "MARK",
]
