"""Elastic worlds: shrink after rank failure, regrow through the rendezvous.

SparCML (§6) targets long data-parallel runs where rank loss is expected,
and its asynchronous decentralized SGD tolerates stale or partial updates
by design — the natural consumer of a world that can *shrink* past a dead
rank and later *regrow* when the rank restarts. PR 6 built the typed
failure surface (:class:`~repro.runtime.comm.RankFailedError`,
:class:`~repro.runtime.comm.CommTimeoutError`, deterministic
:class:`~repro.runtime.faults.FaultPlan` injection) but left the world
static; this module adds the membership layer on top of it.

Epochs
------
Every membership change bumps the backend communicator's *world epoch*.
The epoch travels in every wire frame header
(:mod:`~repro.runtime.wire`); receivers drop frames from dead epochs
(counted in ``comm.stale_epoch_rejected``), and operations attempted
through a superseded elastic world raise the typed
:class:`~repro.runtime.comm.StaleEpochError`. Each epoch also owns a
private tag window (allocated from the same injective window space as
``comm.split``), so even on the thread backend — which has no wire — the
post-shrink collectives can never match pre-shrink traffic.

Shrink
------
:func:`shrink` (also reachable as ``comm.shrink()``) is collective over
the survivors: each rank gathers what it knows about the dead (the
:class:`~repro.runtime.comm.AbortState` attribution), the lowest-ranked
survivor runs a leader-based membership barrier with bounded per-round
timeouts (peers that fail *during* the barrier are folded into the dead
set and the round retried), and everyone returns the same
:class:`ElasticWorld` — a deterministically renumbered
:class:`~repro.runtime.comm.SubCommunicator` of the survivors, pinned to
the new epoch. Works on all four backends because it is built from the
ordinary transport hooks.

Grow / rejoin
-------------
On the socket backend a restarted rank re-registers through the
persistent elastic rendezvous (``serve-rank --rejoin``); on the thread
backend a fresh thread queues a join request on the shared world
(:func:`thread_rejoin`). Either way the join is *committed between
iterations*: every member calls :meth:`ElasticContext.step`, the leader
broadcasts the pending join (or ``None``), members connect the new rank
into the mesh, the epoch bumps, and everyone switches to the regrown
:class:`ElasticWorld`. State (model parameters etc.) is the consumer's
to re-broadcast — see :func:`~repro.mlopt.async_sgd.distributed_sgd_async`.

Caveats: the barrier is crash-consistent, not Byzantine — a false-positive
timeout (an alive but stalled peer) is treated as a death; and on the
socket backend the rendezvous lives in rank 0's ``serve-rank`` process,
so rank 0 itself cannot be revived.
"""

from __future__ import annotations

import threading
from typing import Any

from .comm import (
    SPLIT_TAG_BASE,
    SPLIT_TAG_MAX,
    SPLIT_TAG_SPAN,
    AbortState,
    CommTimeoutError,
    Communicator,
    RankFailedError,
    StaleEpochError,
    SubCommunicator,
    WorldAbortedError,
    _cantor_pair,
)

__all__ = [
    "ElasticContext",
    "ElasticWorld",
    "epoch_window_id",
    "shrink",
    "thread_rejoin",
]

#: default per-round timeout of the membership barrier (seconds); used when
#: the backend has no ``op_timeout`` of its own.
DEFAULT_BARRIER_TIMEOUT = 5.0

#: default budget for wiring a rejoined rank into the mesh (seconds).
DEFAULT_GROW_TIMEOUT = 20.0

#: barrier tags live at the top of the epoch's tag window, far above any
#: tag a collective of the new world could allocate.
_BARRIER_TAG_OFFSET = SPLIT_TAG_SPAN - 4096


def epoch_window_id(epoch: int) -> int:
    """The tag window id owned by world epoch ``epoch`` (>= 1).

    Ordinary splits allocate windows from the (parent window, call slot)
    tree: backend-level splits take the odd ids, nested splits take even
    ids through the Cantor pairing with parent window >= 1. Epoch worlds
    take ``2 * (cantor(0, epoch) + 1)`` — Cantor pairs with first
    component 0 are *never* produced by splits, so the window is globally
    injective without depending on the per-rank split counters (which
    diverge when ranks catch a failure at different points).
    """
    if epoch < 1:
        raise ValueError(f"elastic epochs start at 1, got {epoch}")
    return 2 * (_cantor_pair(0, int(epoch)) + 1)


def _epoch_tag_base(epoch: int) -> int:
    window_id = epoch_window_id(epoch)
    abs_base = SPLIT_TAG_BASE + window_id * SPLIT_TAG_SPAN
    if abs_base + SPLIT_TAG_SPAN > SPLIT_TAG_MAX:
        raise RuntimeError(f"elastic epoch {epoch} exhausts the tag space")
    return abs_base


def _backend_of(comm: Communicator) -> Communicator:
    """Unwrap proxies down to the backend communicator that owns the wire."""
    seen = 0
    while seen < 32:
        seen += 1
        if isinstance(comm, ElasticWorld):
            comm = comm.parent
            continue
        inner = getattr(comm, "inner", None)  # FaultyComm and friends
        if isinstance(inner, Communicator):
            comm = inner
            continue
        break
    if isinstance(comm, SubCommunicator):
        raise ValueError(
            "elastic operations need a backend communicator or an "
            "ElasticWorld, not an ordinary split/subgroup"
        )
    return comm


def _members_of(world: Communicator) -> tuple[int, ...]:
    """Current membership of ``world`` in backend rank numbering."""
    if isinstance(world, ElasticWorld):
        return world.parent_ranks
    backend = _backend_of(world)
    return tuple(range(backend.size))


class ElasticWorld(SubCommunicator):
    """The working world of one elastic epoch: survivors renumbered from 0.

    A :class:`~repro.runtime.comm.SubCommunicator` over the backend
    communicator whose members are the epoch's alive ranks (sorted, so
    renumbering is deterministic on every rank) and whose tag window is
    owned by the epoch. Once the backend moves to a newer epoch — another
    shrink, a committed rejoin — every operation through this world
    raises :class:`~repro.runtime.comm.StaleEpochError` instead of
    leaking traffic into the new membership.
    """

    def __init__(self, backend: Communicator, members, epoch: int) -> None:
        tag_base = _epoch_tag_base(epoch) - backend._split_space_base
        super().__init__(backend, tuple(int(m) for m in members), tag_base,
                         epoch_window_id(epoch))
        self._epoch = int(epoch)

    @property
    def epoch(self) -> int:
        return self._epoch

    def _check_epoch(self) -> None:
        current = self.parent.epoch
        if current != self._epoch:
            raise StaleEpochError(
                f"this world belongs to epoch {self._epoch} but the "
                f"transport has moved to epoch {current}; re-form it with "
                "shrink() or ElasticContext.step()",
                frame_epoch=self._epoch,
                current_epoch=current,
            )

    # every traced operation (and every nested proxy) funnels through the
    # tag mapping hook exactly once per message — the one choke point where
    # a superseded world can be rejected with the typed error
    def _map_tag(self, tag: int) -> int:
        self._check_epoch()
        return super()._map_tag(tag)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ElasticWorld(epoch={self._epoch}, rank={self.rank}, "
            f"size={self.size}, parent_ranks={list(self.parent_ranks)})"
        )


# ----------------------------------------------------------------------
# shrink: the membership barrier
# ----------------------------------------------------------------------
def shrink(
    comm: Communicator,
    dead: Any = (),
    timeout: float | None = None,
) -> ElasticWorld:
    """Collective membership barrier: agree on the survivors, bump the epoch.

    Call from every surviving rank after catching a
    :class:`~repro.runtime.comm.RankFailedError` (or with an explicit
    ``dead`` set). Gathers each survivor's view of the dead (seeded from
    the abort-state attribution), runs a bounded leader-based agreement
    round — survivors that fail *during* the barrier are folded in and
    the round retried — and returns the new :class:`ElasticWorld` of the
    agreed survivors on every rank, bit-identically renumbered.

    ``timeout`` bounds each barrier operation (default: the backend's
    ``op_timeout``, else :data:`DEFAULT_BARRIER_TIMEOUT`).
    """
    backend = _backend_of(comm)
    members = list(_members_of(comm))
    known_dead = set(int(r) for r in dead)
    state = backend._abort_state()
    if state is not None:
        known_dead |= set(state.failed_ranks)
    known_dead |= set(backend.dead_ranks) & set(members)
    me = backend.rank
    if me in known_dead:
        raise ValueError(f"rank {me} cannot shrink a world it is dead in")

    new_epoch = backend.epoch + 1
    # reset *before* the barrier: barrier frames are stamped with the new
    # epoch (receivers still on the old epoch deliver newer frames), and a
    # late EOF from an already-known-dead peer can no longer re-abort us
    backend._elastic_reset(known_dead, new_epoch)

    alive = [m for m in members if m not in known_dead]
    barrier_timeout = timeout
    if barrier_timeout is None:
        barrier_timeout = backend.op_timeout or DEFAULT_BARRIER_TIMEOUT
    saved_timeout = backend.op_timeout
    backend.op_timeout = barrier_timeout
    try:
        alive, agreed_dead = _membership_barrier(
            backend, alive, set(known_dead), new_epoch
        )
    finally:
        backend.op_timeout = saved_timeout
    backend._elastic_note_dead(agreed_dead)
    world = ElasticWorld(backend, alive, new_epoch)
    backend._elastic_world = world
    return world


def _note_dead(backend: Communicator, dead: set, culprits) -> None:
    newly = {int(r) for r in culprits if r is not None}
    dead.update(newly)
    backend._elastic_note_dead(dead)


def _membership_barrier(
    backend: Communicator, alive: list[int], dead: set, epoch: int
) -> tuple[list[int], set]:
    """Leader-based agreement on the survivor set (crash-consistent).

    Each round ``r`` uses a private pair of tags in the new epoch's
    window: non-leaders send their dead-set proposal to the leader (the
    lowest alive rank), the leader unions them and answers either
    ``("commit", dead)`` — membership settled — or ``("retry", dead)``
    after folding in peers that failed mid-round. A non-leader whose
    leader stops answering declares *it* dead and retries under the next
    leader. Rounds are bounded by the member count: each retry removes at
    least one rank, so a non-converging partition surfaces as
    :class:`~repro.runtime.comm.WorldAbortedError` instead of a hang.
    """
    me = backend.rank
    base = _epoch_tag_base(epoch) + _BARRIER_TAG_OFFSET
    max_rounds = len(alive) + 2
    for round_no in range(max_rounds):
        ptag = base + 2 * round_no  # proposals (members -> leader)
        vtag = ptag + 1             # verdict   (leader -> members)
        if me not in alive:
            raise WorldAbortedError(
                "this rank was declared dead by the membership barrier "
                "(a peer gave up waiting on it); it must rejoin, not shrink"
            )
        if alive == [me]:
            return alive, dead
        leader = alive[0]
        if me == leader:
            gathered_ok = True
            for m in alive[1:]:
                try:
                    proposal = backend.recv(m, tag=ptag)
                except RankFailedError as exc:
                    culprit = exc.rank if exc.rank in alive else m
                    _note_dead(backend, dead, {culprit})
                    gathered_ok = False
                    break
                except CommTimeoutError:
                    _note_dead(backend, dead, {m})
                    gathered_ok = False
                    break
                dead.update(int(r) for r in proposal)
            if gathered_ok and not (dead & set(alive)):
                verdict = ("commit", sorted(dead))
            else:
                _note_dead(backend, dead, ())
                alive = [r for r in alive if r not in dead]
                verdict = ("retry", sorted(dead))
            lost = set()
            for m in alive[1:]:
                try:
                    backend.send(verdict, m, tag=vtag)
                except (RankFailedError, CommTimeoutError):
                    lost.add(m)
            if lost:
                _note_dead(backend, dead, lost)
                alive = [r for r in alive if r not in dead]
                continue
            if verdict[0] == "commit":
                return alive, dead
            continue
        # non-leader
        try:
            backend.send(sorted(dead), leader, tag=ptag)
            kind, agreed = backend.recv(leader, tag=vtag)
        except RankFailedError as exc:
            culprit = exc.rank if exc.rank in alive else leader
            _note_dead(backend, dead, {culprit})
            alive = [r for r in alive if r not in dead]
            continue
        except CommTimeoutError:
            _note_dead(backend, dead, {leader})
            alive = [r for r in alive if r not in dead]
            continue
        dead.update(int(r) for r in agreed)
        _note_dead(backend, dead, ())
        alive = [r for r in alive if r not in dead]
        if kind == "commit":
            if me not in alive:
                raise WorldAbortedError(
                    "this rank was declared dead by the membership barrier "
                    "(a peer gave up waiting on it); it must rejoin, not shrink"
                )
            return alive, dead
    raise WorldAbortedError(
        f"membership barrier did not converge after {max_rounds} rounds "
        f"(alive view: {alive}, dead view: {sorted(dead)})"
    )


# ----------------------------------------------------------------------
# grow: rejoin requests committed between iterations
# ----------------------------------------------------------------------
def thread_rejoin(world, rank: int, timeout: float = 30.0) -> ElasticWorld:
    """Rejoin a dead rank into a thread-backend world (rendezvous analog).

    Called from a *fresh thread* standing in for the restarted rank.
    Queues a join request on the shared
    :class:`~repro.runtime.thread_backend.ThreadWorld`; once a member's
    :meth:`ElasticContext.step` commits it, returns this rank's
    :class:`ElasticWorld` for the new epoch. The caller is responsible
    for re-synchronizing consumer state (e.g. a parameter broadcast).
    """
    request = {"rank": int(rank), "event": threading.Event()}
    with world._elastic_lock:
        if int(rank) not in world.dead_ranks:
            raise ValueError(f"rank {rank} is not dead in this world")
        world._pending_joins.append(request)
    if not request["event"].wait(timeout):
        with world._elastic_lock:
            if request in world._pending_joins:
                world._pending_joins.remove(request)
        raise TimeoutError(
            f"rejoin of rank {rank} was not committed within {timeout}s"
        )
    comm = world.comm(int(rank))
    with world._elastic_lock:
        # the original failure left this rank's abort state set (it names
        # this very rank); the revived thread starts from a clean flag
        world._rank_states[int(rank)] = AbortState()
    comm.epoch = int(request["epoch"])
    return ElasticWorld(comm, request["members"], request["epoch"])


class ElasticContext:
    """Between-iteration driver of one rank's elastic membership.

    Wraps the current working world (the backend communicator at epoch 0,
    or an :class:`ElasticWorld` after a shrink/rejoin) and exposes:

    * :meth:`shrink` — catch-and-reform after a failure;
    * :meth:`step` — collective join-commit point: the leader (world rank
      0) polls the pending-join queue (socket: the elastic rendezvous;
      thread: the shared world), broadcasts the join or ``None``, and on
      a join every member wires the rank back into the mesh and switches
      to the regrown world.

    Call ``step()`` at iteration boundaries only — it is collective over
    the current world.
    """

    def __init__(
        self,
        comm: Communicator,
        grow_timeout: float = DEFAULT_GROW_TIMEOUT,
        barrier_timeout: float | None = None,
    ) -> None:
        self._backend = _backend_of(comm)
        existing = getattr(self._backend, "_elastic_world", None)
        self.world: Communicator = existing if existing is not None else comm
        self.grow_timeout = float(grow_timeout)
        self.barrier_timeout = barrier_timeout

    @property
    def epoch(self) -> int:
        return self._backend.epoch

    @property
    def world_sizes_seen(self) -> int:
        return self.world.size

    def shrink(self, dead: Any = ()) -> Communicator:
        self.world = shrink(self.world, dead=dead, timeout=self.barrier_timeout)
        return self.world

    def step(self) -> Communicator:
        """Commit at most one pending join (collective; call between iterations)."""
        world = self.world
        if world.size == 1 and not isinstance(world, ElasticWorld):
            return world
        join = self._poll_pending_join() if world.rank == 0 else None
        join = world.bcast(join, root=0)
        if join is None:
            return self.world
        kind, rank, addr, members, epoch = join
        if kind == "thread-join":
            self._commit_thread_join(rank, members, epoch)
        else:
            self._commit_socket_join(rank, addr, members, epoch)
        return self.world

    # -- leader side ----------------------------------------------------
    def _poll_pending_join(self):
        backend = self._backend
        members = _members_of(self.world)
        thread_world = getattr(backend, "world", None)
        if thread_world is not None and hasattr(thread_world, "_pending_joins"):
            with thread_world._elastic_lock:
                request = next(
                    (
                        r
                        for r in thread_world._pending_joins
                        if r["rank"] in thread_world.dead_ranks
                    ),
                    None,
                )
                if request is not None:
                    thread_world._pending_joins.remove(request)
            if request is None:
                return None
            epoch = backend.epoch + 1
            new_members = sorted(set(members) | {request["rank"]})
            self._committing_request = request
            return ("thread-join", request["rank"], None, new_members, epoch)
        server = getattr(backend, "_elastic_rendezvous", None)
        if server is None:
            return None
        item = server.poll(eligible=backend.dead_ranks)
        if item is None:
            return None
        rank, addr, conn = item
        epoch = backend.epoch + 1
        new_members = sorted(set(members) | {rank})
        hosts = (
            tuple(backend.topology.hosts) if backend.topology is not None else None
        )
        server.reply(conn, (epoch, new_members, hosts))
        return ("socket-join", rank, tuple(addr), new_members, epoch)

    # -- commit on every member -----------------------------------------
    def _commit_thread_join(self, rank: int, members, epoch: int) -> None:
        backend = self._backend
        backend._elastic_regrow(rank, epoch)
        self.world = ElasticWorld(backend, members, epoch)
        backend._elastic_world = self.world
        request = getattr(self, "_committing_request", None)
        if request is not None and request["rank"] == rank:
            # leader releases the waiting rejoiner once the commit is real
            request["members"] = tuple(members)
            request["epoch"] = int(epoch)
            request["event"].set()
            self._committing_request = None

    def _commit_socket_join(self, rank: int, addr, members, epoch: int) -> None:
        from .socket_backend import elastic_dial_join

        backend = self._backend
        elastic_dial_join(backend, rank, tuple(addr), epoch, self.grow_timeout)
        backend._elastic_regrow(rank, epoch)
        self.world = ElasticWorld(backend, members, epoch)
        backend._elastic_world = self.world
