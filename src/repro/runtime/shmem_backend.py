"""Shared-memory backend: one OS process per rank, zero-copy ring transport.

Like :mod:`~repro.runtime.process_backend` this backend runs every rank in
its own ``multiprocessing`` process, but payloads move through per-pair
**shared-memory ring buffers** (:class:`SharedRing`, one per directed pair
of ranks) instead of pipes:

* the sender packs the §5.1 flag/dimension/nnz header and the raw
  index/value buffers *directly into the shared segment* via the vectored
  :func:`~repro.runtime.wire.encode_frame_parts` — no pickle and no
  ``tobytes()`` staging on the stream fast path, one memcpy per payload
  byte in total;
* the receiver reconstructs streams straight out of the ring with
  ``np.frombuffer`` — a single copy into the final arrays (which the
  receiving collective may then mutate freely), with no intermediate
  ``bytes`` object and no payload-sized syscall.

Unlike the pipe transport there are **no receiver threads**: the backend
runs an MPI-style single-threaded *progress engine*. Whenever an
operation blocks — a receive with no matching message, a send facing a
full ring — the calling thread itself drains every inbound ring into the
(source, tag) mailboxes until it can proceed. Pipes need pump threads
because only a dedicated reader can keep a peer's stream flowing; shared
memory lets any blocked thread make global progress directly, which
removes two thread wakeups (pump → mailbox → program) from every message
and is where most of the backend's latency win over ``process`` comes
from. Deadlock-freedom survives: any cycle of blocked ranks is a cycle
of progress engines, each draining its inbound rings into unbounded
mailboxes, so ring space is always eventually freed.

Ring protocol (SPSC byte ring per directed pair)
------------------------------------------------
The segment holds two free-running ``uint32`` counters (head = published
bytes, tail = consumed bytes; capacity is a power of two so offsets wrap
consistently) followed by ``capacity`` data bytes. Each counter has one
writing process; 4-byte aligned stores are single machine words, so no
cross-process lock guards them — deliberately, because a lock shared with
a process that may die can be left locked forever and deadlock the
survivors. Records are 8-byte aligned::

    <u64 frame length> <frame bytes ...> <pad to 8>

A length word of all-ones is a *pad marker*: the writer emits it when a
record would straddle the wrap point, and the reader skips to the ring
start — so every ordinary frame is contiguous in memory and can be
decoded in place. Frames larger than the ring (rare: dense pickle
fallbacks) set the high bit of the length word and stream through the
ring in chunks that the reader reassembles.

Blocking and failure detection piggyback on a one-byte **doorbell pipe**
per ring: the writer rings it after each publish (non-blocking — a full
doorbell pipe already guarantees a wakeup) and the progress engine
``select``-waits on all inbound doorbells when nothing is readable. Because
the doorbell is a real pipe, a dying sender closes it and the reader sees
EOF — peer death propagates exactly like the process backend: EOF after a
FIN frame is a clean wind-down, EOF without one aborts the world. After
a rank finishes, the parent periodically drains that rank's inbound rings
so a peer's late buffered send can never block forever on a full ring
(the analog of the parent draining finished ranks' pipes).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import select
import struct
import threading
import time
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Callable

from .backend import Backend, ParallelResult, register_backend
from .comm import CommTimeoutError, RankFailedError, WorldAbortedError
from .process_backend import (
    _ERROR_GRACE_S,
    _FIN_TAG,
    _START_METHOD,
    MeshComm,
    _check_spawn_picklable,
    _finalize_run,
    _portable_exception,
)
from .trace import Trace, TraceEvent
from .wire import decode_message, encode_frame_parts

__all__ = ["ShmemBackend", "ShmemComm", "ShmemWorld", "SharedRing"]

#: how long one progress wait blocks on the doorbells before rechecking
#: the abort flag (seconds).
_PROGRESS_WAIT_S = 0.05

#: backoff ceiling for the writer's full-ring poll (seconds). There is no
#: reader-to-writer doorbell, so a blocked oversize send advances at most
#: one ring-full of payload per poll tick — keep the tick short.
_FULL_POLL_S = 0.0003

#: ring record header: one little-endian u64 frame length.
_LEN = struct.Struct("<Q")

#: head/tail counters: little-endian u32 at segment offsets 0 and 4.
_CTR = struct.Struct("<I")
_M32 = (1 << 32) - 1

#: length-word value marking "skip to the ring start" (wrap padding).
_PAD_MARKER = (1 << 64) - 1

#: length-word bit marking a frame streamed in chunks (larger than the ring).
_OVERSIZE_BIT = 1 << 63

#: bytes of ring bookkeeping before the data region (head u32, tail u32, pad).
_RING_HEADER = 16

#: default per-pair ring capacity. Large enough that several typical
#: sparse frames can be in flight on the contiguous in-place path (a ring
#: that only fits one frame serializes pipelined collectives on blocked
#: writers); bigger frames (dense pickle fallbacks) stream through
#: chunked. Kept well under a few MiB: fresh pages cost a fault per
#: 4 KiB on first touch, so outsized rings hurt small-message latency.
DEFAULT_RING_CAPACITY = 1 << 21


def _pow2_capacity(capacity: int) -> int:
    """Round up to a power of two >= 4096 (so offsets wrap with the u32)."""
    capacity = max(int(capacity), 4096)
    return 1 << (capacity - 1).bit_length()


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without racing the resource tracker.

    Attaching registers the segment with this process's resource tracker
    (on Python < 3.13 there is no ``track=False``), which would unlink it a
    second time at child exit; unregister to keep ownership with the
    parent, which created the segment and unlinks it exactly once.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass
    return shm


class SharedRing:
    """Single-producer single-consumer byte ring in a shared segment.

    The parent creates one per directed rank pair; the writing rank is the
    only producer and the reading rank the only consumer (the parent only
    ever *drains* a ring once its consumer rank has finished).
    ``should_abort`` callables let blocked waits observe world failure —
    and, in the consumer rank, double as the progress hook while a send
    waits for ring space.
    """

    def __init__(self, capacity: int, ctx) -> None:
        self.capacity = _pow2_capacity(capacity)
        self._mask = self.capacity - 1
        self._shm = shared_memory.SharedMemory(create=True, size=_RING_HEADER + self.capacity)
        # doorbell: the reader selects on it when the ring is empty; the
        # writer dings it after each publish; writer death closes it, so
        # the reader sees EOF exactly like a pipe transport would
        self.reader_conn, self.writer_conn = ctx.Pipe(duplex=False)
        self._data: memoryview | None = None
        self._wfd: int | None = None
        #: consumer-side partial oversize frame: [buffer, filled, total].
        self._partial: list | None = None

    # -- pickling: spawn children re-attach by name ---------------------
    def __getstate__(self):
        return {
            "name": self._shm.name,
            "capacity": self.capacity,
            "reader_conn": self.reader_conn,
            "writer_conn": self.writer_conn,
        }

    def __setstate__(self, state):
        self.capacity = state["capacity"]
        self._mask = self.capacity - 1
        self.reader_conn = state["reader_conn"]
        self.writer_conn = state["writer_conn"]
        self._shm = _attach_shm(state["name"])
        self._data = None
        self._wfd = None
        self._partial = None

    # -- counters (single-word stores; one writing process each) --------
    def _head(self) -> int:
        return _CTR.unpack_from(self._shm.buf, 0)[0]

    def _tail(self) -> int:
        return _CTR.unpack_from(self._shm.buf, 4)[0]

    def _set_head(self, v: int) -> None:
        _CTR.pack_into(self._shm.buf, 0, v & _M32)

    def _set_tail(self, v: int) -> None:
        _CTR.pack_into(self._shm.buf, 4, v & _M32)

    def avail(self) -> int:
        """Published-but-unconsumed bytes."""
        return (self._head() - self._tail()) & _M32

    @property
    def data(self) -> memoryview:
        if self._data is None:
            self._data = self._shm.buf[_RING_HEADER:]
        return self._data

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def _ding(self) -> bool:
        """Wake the reader; False when every read end is gone (peer died)."""
        if self._wfd is None:
            self._wfd = self.writer_conn.fileno()
            os.set_blocking(self._wfd, False)
        try:
            os.write(self._wfd, b"!")
        except BlockingIOError:
            pass  # doorbell pipe full: the reader has wakeups queued already
        except (BrokenPipeError, OSError):
            return False
        return True

    def _wait_space(self, need_free: int, should_abort: Callable[[], bool]) -> bool:
        """Poll until at least ``need_free`` bytes are free; False on abort.

        ``should_abort`` runs every iteration: the communicator uses it to
        drive the progress engine, so a send blocked on a full ring keeps
        the world moving instead of busy-sleeping.
        """
        sleep = 0.0
        while self.capacity - self.avail() < need_free:
            if should_abort():
                return False
            time.sleep(sleep)
            sleep = min(sleep + 0.0002, _FULL_POLL_S)
        return True

    def _reserve(self, rec: int, should_abort: Callable[[], bool]) -> int:
        """Block until ``rec`` contiguous bytes are free; return the offset.

        Emits a pad marker (and retries from the ring start) when the
        record would straddle the wrap point. Returns -1 on abort.
        """
        while True:
            head = self._head()
            free = self.capacity - self.avail()
            pos = head & self._mask
            room = self.capacity - pos
            if room < rec:
                if free >= room:  # room is a multiple of 8, so >= 8
                    _LEN.pack_into(self.data, pos, _PAD_MARKER)
                    self._set_head(head + room)
                    continue
                if not self._wait_space(room, should_abort):
                    return -1
            elif free >= rec:
                return pos
            elif not self._wait_space(rec, should_abort):
                return -1

    def write(
        self, parts: list, total: int, should_abort: Callable[[], bool], ding: bool = True
    ) -> bool:
        """Append one frame (the concatenation of ``parts``) to the ring.

        Copies each part exactly once, straight into shared memory. Frames
        that fit take the contiguous path (decodable in place by the
        reader); larger ones stream through in chunks. Returns False if
        the peer died or the world aborted while blocked on a full ring.

        With ``ding=False`` the frame is published (visible to a polling
        reader) but the doorbell is left silent; the caller takes over the
        wakeup (see the communicator's deferred-doorbell batching).
        """
        rec = (_LEN.size + total + 7) & ~7
        buf = self.data
        if rec <= self.capacity - 8:
            pos = self._reserve(rec, should_abort)
            if pos < 0:
                return False
            _LEN.pack_into(buf, pos, total)
            off = pos + _LEN.size
            for part in parts:
                n = len(part)
                buf[off:off + n] = part
                off += n
            # the whole record becomes visible at once
            self._set_head(self._head() + rec)
            return self._ding() if ding else True

        # oversize: publish the length word, then stream the payload in
        # chunks the reader consumes concurrently. Chunk publishes always
        # ding: the reader must wake mid-frame for the ring to drain.
        pos = self._reserve(_LEN.size, should_abort)
        if pos < 0:
            return False
        _LEN.pack_into(buf, pos, _OVERSIZE_BIT | total)
        self._set_head(self._head() + _LEN.size)
        if not self._ding():
            return False
        pad = ((total + 7) & ~7) - total
        for part in [*parts, b"\x00" * pad] if pad else parts:
            view = part if isinstance(part, memoryview) else memoryview(part)
            sent = 0
            remaining = len(view)
            while sent < remaining:
                free = self.capacity - self.avail()
                if free == 0:
                    if not self._wait_space(1, should_abort):
                        return False
                    free = self.capacity - self.avail()
                head = self._head()
                wpos = head & self._mask
                chunk = min(free, self.capacity - wpos, remaining - sent)
                buf[wpos:wpos + chunk] = view[sent:sent + chunk]
                self._set_head(head + chunk)
                if not self._ding():
                    return False
                sent += chunk
        return True

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def try_read_frame(
        self, consume: Callable[[memoryview], None], should_abort: Callable[[], bool]
    ) -> str:
        """Consume one frame if any is published: 'ok', 'empty' or 'partial'.

        **Never blocks** — the progress engine must stay non-blocking or
        two ranks exchanging oversize frames would wedge, each waiting
        inside the other's half-assembled frame while its own suspended
        send is what feeds the peer. Oversize frames therefore assemble
        incrementally: each call consumes whatever chunks are published
        (freeing ring space for the writer) and parks the partial buffer
        on the ring until the rest arrives; ``'partial'`` means "no full
        frame yet, but keep me polled".

        ``consume`` runs while the bytes are still owned by the reader:
        for ordinary frames it receives a view *directly into the shared
        segment* (decode in place, copy only what must outlive the slot);
        for oversize frames it receives the reassembled buffer.
        """
        if self._partial is None:
            while True:
                if self.avail() < _LEN.size:
                    return "empty"
                tail = self._tail()
                pos = tail & self._mask
                size = _LEN.unpack_from(self.data, pos)[0]
                if size == _PAD_MARKER:
                    self._set_tail(tail + (self.capacity - pos))
                    continue
                break
            if not size & _OVERSIZE_BIT:
                # contiguous record: fully published with its length word
                consume(self.data[pos + _LEN.size: pos + _LEN.size + size])
                self._set_tail(tail + ((_LEN.size + size + 7) & ~7))
                return "ok"
            total = size & (_OVERSIZE_BIT - 1)
            self._set_tail(tail + _LEN.size)
            self._partial = [bytearray((total + 7) & ~7), 0, total]

        data, got, total = self._partial
        padded = len(data)
        while got < padded:
            avail = self.avail()
            if avail == 0:
                self._partial[1] = got
                return "partial"  # writer still streaming; space was freed
            tail = self._tail()
            pos = tail & self._mask
            chunk = min(avail, self.capacity - pos, padded - got)
            data[got:got + chunk] = self.data[pos:pos + chunk]
            self._set_tail(tail + chunk)
            got += chunk
        self._partial = None
        consume(memoryview(data)[:total])
        return "ok"

    # ------------------------------------------------------------------
    # parent-side lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Discard everything published so far (consumer rank is gone)."""
        self._set_tail(self._head())

    def close_doorbell(self) -> None:
        """Drop this process's doorbell ends (parent, after forking)."""
        for conn in (self.reader_conn, self.writer_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close(self) -> None:
        if self._data is not None:
            self._data.release()
            self._data = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except OSError:  # pragma: no cover - already unlinked
            pass


class ShmemComm(MeshComm):
    """Per-rank communicator over the shared-memory ring mesh.

    ``out_rings[d]`` / ``in_rings[s]`` are this rank's rings to and from
    each peer (``None`` at its own slot). Incoming traffic is moved into
    the inherited per-(source, tag) FIFO mailboxes by the progress engine,
    which runs in whichever thread is currently blocked — there are no
    receiver threads.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        out_rings: list[SharedRing | None],
        in_rings: list[SharedRing | None],
        trace: Trace,
        op_timeout: float | None = None,
    ) -> None:
        self._init_mesh(rank, size, trace, op_timeout)
        self._out_rings = out_rings
        self._out_locks = [threading.Lock() if r is not None else None for r in out_rings]
        self._in_rings = in_rings
        # one progress engine at a time; other threads wait on mailboxes
        self._progress_lock = threading.Lock()
        self._fin = [False] * size
        # deferred doorbells: frames are published immediately but peers are
        # only woken when this rank is about to block. On one core an early
        # wakeup makes sender and receiver compete for the CPU through the
        # receiver's whole reduction (preemption + cache thrash); deferring
        # the ding hands the CPU over exactly when the sender goes idle.
        # Correctness never depends on it: the progress wait times out and
        # polls the rings every 50 ms regardless.
        self._pending_dings: set[int] = set()
        self._ding_lock = threading.Lock()
        # this process is reader of in-rings and writer of out-rings only;
        # release the opposite doorbell ends so peer death shows as EOF
        for ring in in_rings:
            if ring is not None:
                try:
                    ring.writer_conn.close()
                except OSError:  # pragma: no cover
                    pass
        for ring in out_rings:
            if ring is not None:
                try:
                    ring.reader_conn.close()
                except OSError:  # pragma: no cover
                    pass
        #: active doorbells the progress engine selects on (fd -> source)
        self._watch = {
            r.reader_conn.fileno(): src for src, r in enumerate(in_rings) if r is not None
        }
        #: one long-lived consume callback per source: the progress engine
        #: runs on every blocked poll, so it allocates nothing per tick
        self._consumers = [
            self._consume_from(src) if r is not None else None
            for src, r in enumerate(in_rings)
        ]

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def _consume_from(self, src: int) -> Callable[[memoryview], None]:
        def consume(view: memoryview) -> None:
            try:
                # the single copy of the receive path: shared segment ->
                # the decoded arrays the collective will own
                tag, seq, nbytes, epoch, payload = decode_message(view)
            except Exception:
                # undecodable frame: fail fast instead of silently wedging
                self._abort()
                return
            if epoch < self.epoch:
                # in-flight frame from a dead world epoch: drop it so the
                # post-shrink collectives never match pre-shrink traffic
                self._count_stale_frame()
                return
            if tag == _FIN_TAG:
                self._fin[src] = True  # peer finished; its channel is drained
                self._watch.pop(self._in_rings[src].reader_conn.fileno(), None)
                return
            self._mailbox(src, tag).put(payload, nbytes, seq)

        return consume

    def _drain_rings(self) -> bool:
        """Consume every published frame from every live inbound ring."""
        consumed = False
        for src, ring in enumerate(self._in_rings):
            if ring is None or self._fin[src]:
                continue
            consume = self._consumers[src]
            while not self._fin[src]:
                status = ring.try_read_frame(consume, self.aborted.is_set)
                if status == "ok":
                    consumed = True
                else:  # "empty" or "partial": nothing more readable now
                    break
        return consumed

    def _progress(self, wait: float) -> None:
        """One progress step: drain what is published, else wait for dings.

        Must be called with :attr:`_progress_lock` held. EOF on a doorbell
        whose peer never sent FIN means the peer died: abort the world,
        exactly like the process backend's pump observing pipe EOF.
        """
        if self._drain_rings() or self.aborted.is_set() or wait <= 0:
            return
        if not self._watch:
            time.sleep(min(wait, 0.001))  # every peer wound down already
            return
        try:
            readable, _, _ = select.select(list(self._watch), [], [], wait)
        except OSError:  # a watched fd went away mid-select
            readable = list(self._watch)
        for fd in readable:
            src = self._watch.get(fd)
            if src is None:
                continue
            try:
                wakeups = os.read(fd, 4096)
            except OSError:
                wakeups = b""
            if not wakeups:  # EOF with no FIN first: the peer died mid-run
                self._watch.pop(fd, None)
                if not self._fin[src]:
                    self._abort(failed_rank=src)
        if readable:
            self._drain_rings()

    def _run_progress(self, wait: float) -> None:
        """Drive progress if no other thread is; otherwise nap briefly."""
        if self._progress_lock.acquire(blocking=False):
            try:
                self._progress(wait)
            finally:
                self._progress_lock.release()
        else:
            time.sleep(0.0005)

    def _flush_dings(self) -> None:
        """Ring the doorbells of every peer with a pending unsignalled frame."""
        if not self._pending_dings:
            return
        with self._ding_lock:
            dests, self._pending_dings = self._pending_dings, set()
        for dest in dests:
            self._out_rings[dest]._ding()  # EPIPE here surfaces as EOF later

    def _send_progress_hook(self) -> bool:
        """``should_abort`` for blocked sends that also drives progress.

        Flushing the deferred doorbells first is what lets a sender blocked
        on a full ring hand the CPU to the reader that must drain it.
        """
        if self.aborted.is_set():
            return True
        self._flush_dings()
        self._run_progress(0.0)
        return self.aborted.is_set()

    # ------------------------------------------------------------------
    # transport hooks (_alloc_seq inherited from MeshComm)
    # ------------------------------------------------------------------
    def _send_deadline_hook(self, dest: int, tag: int) -> Callable[[], bool]:
        """The blocked-send progress hook, bounded by ``op_timeout``.

        The hook doubles as the abort check of :meth:`SharedRing.write`;
        raising out of it unwinds the write cleanly (the frame slot is not
        yet published at every point the hook runs).
        """
        deadline = time.monotonic() + self.op_timeout

        def hook() -> bool:
            if time.monotonic() >= deadline:
                raise CommTimeoutError(
                    f"send to rank {dest} (tag {tag}) blocked on a full ring "
                    f"for op_timeout={self.op_timeout}s",
                    source=dest,
                    tag=tag,
                    timeout=self.op_timeout,
                )
            return self._send_progress_hook()

        return hook

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        total, parts = encode_frame_parts(tag, seq, nbytes, obj, self.epoch)
        ring = self._out_rings[dest]
        hook = (
            self._send_progress_hook
            if self.op_timeout is None
            else self._send_deadline_hook(dest, tag)
        )
        with self._out_locks[dest]:
            ok = ring.write(parts, total, hook, ding=False)
        if not ok:
            if self.aborted.is_set():
                # the write observed the abort flag: name the true culprit
                raise self.aborted.error()
            # the doorbell write end is gone: the destination itself died
            self._abort(failed_rank=dest)
            raise RankFailedError(dest, f"rank {dest} is gone; send failed")
        with self._ding_lock:
            self._pending_dings.add(dest)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        box = self._mailbox(source, tag)
        deadline = None if self.op_timeout is None else time.monotonic() + self.op_timeout
        while True:
            item = box.pop_nowait()
            if item is not None:
                # done transporting (about to hand control back to the
                # algorithm, usually into a reduction): wake the peers we fed
                self._flush_dings()
                return item
            if self.aborted.is_set():
                raise self.aborted.error()
            if deadline is not None and time.monotonic() >= deadline:
                raise CommTimeoutError(
                    f"recv from rank {source} (tag {tag}) saw no message "
                    f"within op_timeout={self.op_timeout}s",
                    source=source,
                    tag=tag,
                    timeout=self.op_timeout,
                )
            self._flush_dings()  # about to block: wake the peers we fed
            if self._progress_lock.acquire(blocking=False):
                try:
                    if box.has_items():
                        continue  # delivered while we grabbed the lock
                    self._progress(_PROGRESS_WAIT_S)
                finally:
                    self._progress_lock.release()
            else:
                # another thread is progressing; it will fill our mailbox
                box.wait(0.005)

    def _probe(self, source: int, tag: int) -> bool:
        box = self._mailbox(source, tag)
        if box.has_items():
            return True
        self._flush_dings()  # pollers hand the wakeup over too
        self._run_progress(0.0)
        return box.has_items()

    def shutdown(self) -> None:
        """Graceful wind-down: tell every peer this rank is done sending."""
        total, parts = encode_frame_parts(_FIN_TAG, -1, 0, None, self.epoch)
        for dest, ring in enumerate(self._out_rings):
            if ring is None:
                continue
            with self._out_locks[dest]:
                ring.write(parts, total, self._send_progress_hook)  # best effort
        self._flush_dings()


class ShmemWorld:
    """Parent-side record of one shmem-backend run (for ParallelResult)."""

    def __init__(self, size: int, start_method: str, pids: list[int], ring_capacity: int) -> None:
        self.size = size
        self.start_method = start_method
        self.pids = pids
        self.ring_capacity = ring_capacity

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShmemWorld(size={self.size}, start_method={self.start_method!r}, "
            f"ring_capacity={self.ring_capacity})"
        )


def _child_main(
    rank: int,
    size: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    out_rings: list[SharedRing | None],
    in_rings: list[SharedRing | None],
    result_conn: Connection,
    close_list: list[Connection],
    topology: Any = None,
    op_timeout: float | None = None,
) -> None:
    """Entry point of one rank process."""
    # under fork every doorbell/result end of every rank was inherited; drop
    # the foreign ones so peer death propagates as doorbell EOF
    for conn in close_list:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    trace = Trace(size)
    comm = ShmemComm(rank, size, out_rings, in_rings, trace, op_timeout)
    comm.topology = topology
    try:
        result = fn(comm, *args, **kwargs)
        comm.shutdown()
        payload = ("ok", rank, result, trace.events(rank))
    except WorldAbortedError:
        payload = ("aborted", rank, None, trace.events(rank))
    except BaseException as exc:  # noqa: BLE001 - must propagate rank errors
        payload = ("error", rank, _portable_exception(exc), trace.events(rank))
    try:
        result_conn.send(payload)
    except Exception as exc:  # unpicklable result/exception
        result_conn.send(("error", rank, _portable_exception(exc), None))
    finally:
        result_conn.close()


class ShmemBackend(Backend):
    """Multiprocess backend with zero-copy shared-memory ring transport."""

    name = "shmem"

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.ring_capacity = int(ring_capacity)

    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,  # serialization always isolates; accepted for API parity
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Any = None,
        **kwargs: Any,
    ) -> ParallelResult:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        ctx = mp.get_context(_START_METHOD)
        _check_spawn_picklable(fn, args, kwargs, self.name)

        out_rings: list[list[SharedRing | None]] = [[None] * nranks for _ in range(nranks)]
        in_rings: list[list[SharedRing | None]] = [[None] * nranks for _ in range(nranks)]
        all_rings: list[SharedRing] = []
        result_pipes: list[tuple[Connection, Connection]] = []
        procs: list[mp.Process] = []
        try:
            try:
                for src in range(nranks):
                    for dst in range(nranks):
                        if src == dst:
                            continue
                        ring = SharedRing(self.ring_capacity, ctx)
                        out_rings[src][dst] = ring
                        in_rings[dst][src] = ring
                        all_rings.append(ring)
                result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]

                for rank in range(nranks):
                    own: set[int] = {
                        id(r.writer_conn) for r in out_rings[rank] if r is not None
                    }
                    own |= {id(r.reader_conn) for r in in_rings[rank] if r is not None}
                    own.add(id(result_pipes[rank][1]))
                    close_list: list[Connection] = []
                    if _START_METHOD == "fork":
                        # spawn children only inherit the conns we pass; fork
                        # children inherit everything and must close foreign ends
                        for r in all_rings:
                            close_list += [
                                c for c in (r.reader_conn, r.writer_conn) if id(c) not in own
                            ]
                        close_list += [
                            c for rr, ws in result_pipes for c in (rr, ws) if id(c) not in own
                        ]
                    p = ctx.Process(
                        target=_child_main,
                        args=(
                            rank,
                            nranks,
                            fn,
                            args,
                            kwargs,
                            out_rings[rank],
                            in_rings[rank],
                            result_pipes[rank][1],
                            close_list,
                            topology,
                            op_timeout,
                        ),
                        name=f"rank-{rank}",
                        daemon=True,
                    )
                    p.start()
                    procs.append(p)
            except BaseException:
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                for p in procs:
                    p.join(timeout=5.0)
                for r, w in result_pipes:
                    r.close()
                    w.close()
                raise

            # the parent closes its doorbell *write* ends so readers see EOF
            # exactly when the writing rank dies, but keeps the *read* ends
            # open so a late buffered send to a finished rank never hits
            # EPIPE (mirroring how the process backend parks pipe read ends)
            for ring in all_rings:
                try:
                    ring.writer_conn.close()
                except OSError:  # pragma: no cover
                    pass
            for _, w in result_pipes:
                w.close()

            try:
                outcome = self._collect(
                    procs, [r for r, _ in result_pipes], nranks, timeout, in_rings
                )
            finally:
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                for p in procs:
                    p.join(timeout=5.0)
                for r, _ in result_pipes:
                    r.close()
        finally:
            for ring in all_rings:
                ring.close_doorbell()
                ring.close()
                ring.unlink()

        world = ShmemWorld(nranks, _START_METHOD, [p.pid for p in procs], self.ring_capacity)
        return _finalize_run(outcome, trace, nranks, world)

    # ------------------------------------------------------------------
    def _collect(
        self,
        procs: list[mp.Process],
        result_conns: list[Connection],
        nranks: int,
        timeout: float | None,
        in_rings: list[list[SharedRing | None]],
    ) -> tuple[list[Any], list[list[TraceEvent]], list[tuple[int, BaseException]], list[int]]:
        deadline = None if timeout is None else time.monotonic() + timeout
        error_deadline: float | None = None
        results: list[Any] = [None] * nranks
        events: list[list[TraceEvent]] = [[] for _ in range(nranks)]
        errors: list[tuple[int, BaseException]] = []
        aborted_ranks: list[int] = []
        pending = dict(enumerate(result_conns))
        # rings of finished/dead ranks: nothing consumes them anymore, so the
        # parent drains them each tick, keeping late buffered senders unstuck
        # (the shared-memory analog of the parent draining finished pipes)
        drainable: list[SharedRing] = []

        while pending:
            now = time.monotonic()
            wait_for = None
            if deadline is not None:
                wait_for = deadline - now
            if error_deadline is not None:
                wait_for = min(error_deadline - now, wait_for) if wait_for is not None else error_deadline - now
            if wait_for is not None and wait_for <= 0:
                if errors or error_deadline is not None:
                    break  # grace period after a failure ran out
                raise TimeoutError(
                    f"parallel run did not finish within {timeout}s "
                    f"(ranks {sorted(pending)} still pending; likely deadlock)"
                )
            if drainable:
                # rings are not waitable objects: tick often enough to drain
                wait_for = _PROGRESS_WAIT_S if wait_for is None else min(wait_for, _PROGRESS_WAIT_S)
            ready = conn_wait(list(pending.values()), timeout=wait_for)
            for ring in drainable:
                ring.drain()
            for conn in ready:
                rank = next(r for r, c in pending.items() if c is conn)
                try:
                    status, _r, value, rank_events = conn.recv()
                except (EOFError, OSError):
                    procs[rank].join(timeout=1.0)  # reap so exitcode is real
                    code = procs[rank].exitcode
                    errors.append(
                        (rank, RankFailedError(rank, f"rank {rank} process died (exitcode {code})"))
                    )
                    del pending[rank]
                    drainable.extend(r for r in in_rings[rank] if r is not None)
                    continue
                del pending[rank]
                drainable.extend(r for r in in_rings[rank] if r is not None)
                if status == "ok":
                    results[rank] = value
                    events[rank] = rank_events
                elif status == "aborted":
                    events[rank] = rank_events or []
                    aborted_ranks.append(rank)
                else:  # "error"
                    events[rank] = rank_events or []
                    errors.append((rank, value))
            if errors and error_deadline is None:
                error_deadline = time.monotonic() + _ERROR_GRACE_S
        return results, events, errors, aborted_ranks


register_backend(ShmemBackend.name, ShmemBackend)
