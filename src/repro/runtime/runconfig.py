"""One frozen config object for every launcher entry point.

The launcher knobs (``backend=``, ``topology=``, ``fault_plan=``,
``op_timeout=``, ...) used to be re-declared on ``run_ranks``,
``run_sparse_allreduce``, ``serve_rank`` and the CLI; adding a knob meant
touching four signatures. :class:`RunConfig` is the single declaration:
every entry point accepts ``config=RunConfig(...)`` and folds its
individual kwargs *over* it (an explicitly passed kwarg always wins), so
existing call sites keep working unchanged while new knobs — like the
``chunks`` pipeline depth of the hierarchical collectives — are added in
exactly one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

__all__ = ["RunConfig"]

#: sentinel default for entry-point kwargs: distinguishes "caller did not
#: pass this knob" (take it from the config) from any real value the knob
#: can hold — including ``None``, which is a legal ``timeout``/``topology``.
_UNSET: Any = object()


@dataclass(frozen=True)
class RunConfig:
    """Frozen bundle of launcher + collective knobs.

    Fields mirror the keyword arguments of
    :func:`~repro.runtime.launcher.run_ranks` (see its docstring for full
    semantics); ``chunks`` is the pipeline depth consumed by the
    hierarchical collectives through
    :func:`~repro.collectives.api.run_sparse_allreduce`.
    """

    backend: Any = "thread"
    topology: Any = None
    fault_plan: Any = None
    op_timeout: float | None = None
    timeout: float | None = 300.0
    chunks: "int | str" = 1

    def __post_init__(self) -> None:
        # mirror collectives.hier._check_chunks without importing it (the
        # collectives package imports the runtime package, not vice versa);
        # "auto" defers the depth to the cost model at resolve time
        if self.chunks != "auto":
            if isinstance(self.chunks, bool) or not isinstance(self.chunks, int):
                raise TypeError(f"chunks must be an int or 'auto', got {self.chunks!r}")
            if self.chunks < 1:
                raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        for name in ("op_timeout", "timeout"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive or None, got {value!r}")

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (the frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def merged(self, **overrides: Any) -> "RunConfig":
        """Fold per-call kwargs over this config; ``_UNSET`` keeps the field."""
        changes = {k: v for k, v in overrides.items() if v is not _UNSET}
        return dataclasses.replace(self, **changes) if changes else self
