"""Pluggable runtime backends: who executes the ranks of a parallel run.

Every collective in :mod:`repro.collectives` is written against the
:class:`~repro.runtime.comm.Communicator` interface alone; a *backend* is
the piece that brings ``P`` communicators to life, runs the user's rank
function on each, moves messages between them, and assembles the per-rank
results and the trace. SparCML's algorithms are drop-in MPI collectives
(§7); mirroring that, backends are interchangeable launchers — the same
program runs unmodified on any of them:

``thread`` (:class:`~repro.runtime.thread_backend.ThreadBackend`)
    one thread per rank in this process, shared-memory mailboxes. Fast,
    zero-setup, the default for tests and cost-model studies.
``process`` (:class:`~repro.runtime.process_backend.ProcessBackend`)
    one OS process per rank with real serialized transport over pipes,
    including the sparse/dense header word of §5.1 on every stream
    payload. The closest analog of the paper's deployment.
``shmem`` (:class:`~repro.runtime.shmem_backend.ShmemBackend`)
    one OS process per rank like ``process``, but payloads move through
    per-pair shared-memory ring buffers with the §5.1 header packed in
    place — no pickle, no pipe syscalls, one copy per payload byte each
    way. The fastest real transport.
``socket`` (:class:`~repro.runtime.socket_backend.SocketBackend`)
    one OS process per rank with payloads framed over a full TCP mesh
    assembled through a rendezvous address. The only transport that can
    span machines: ``run_ranks`` launches all ranks on this host, while
    ``python -m repro serve-rank`` joins ranks from anywhere into the
    same world.

Backends register themselves under a short name via
:func:`register_backend` when their module is imported (the built-ins
are imported by ``repro.runtime``'s package ``__init__``, so they are
always available); :func:`~repro.runtime.run_ranks` resolves the
``backend=`` argument through :func:`get_backend`, so user code selects a
transport with a string::

    run_ranks(program, nranks=8, backend="process")

Writing a new backend means subclassing :class:`Backend`, implementing
:meth:`Backend.run` (typically by providing a ``Communicator`` subclass
with the four transport hooks), and registering it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable

from .trace import Trace

__all__ = [
    "Backend",
    "ParallelResult",
    "RankError",
    "register_backend",
    "get_backend",
    "available_backends",
]


class RankError(RuntimeError):
    """Wraps an exception raised inside a rank function.

    ``partial_results`` holds the return values of the ranks that *did*
    complete (``None`` at failed/aborted slots) — graceful-degradation
    consumers survive a peer death and still produce results worth
    inspecting even though the run as a whole failed.
    """

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original
        self.partial_results: "list[Any] | None" = None


@dataclass
class ParallelResult:
    """Outcome of one parallel run."""

    results: list[Any]
    trace: Trace
    world: Any

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, rank: int) -> Any:
        return self.results[rank]


class Backend(abc.ABC):
    """A way of executing ``P`` communicating ranks.

    Subclasses provide :attr:`name` (the registry key) and :meth:`run`.
    A backend instance is stateless and reusable; all per-run state lives
    in the world object it creates for each :meth:`run` call.
    """

    #: registry key; also what ``run_ranks(backend=...)`` matches against.
    name: str = ""

    @abc.abstractmethod
    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Any = None,
        **kwargs: Any,
    ) -> ParallelResult:
        """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks.

        Must propagate the first rank failure as :class:`RankError`, abort
        peers blocked on communication instead of deadlocking, enforce
        ``timeout`` (raising :class:`TimeoutError`), expose ``op_timeout``
        as ``comm.op_timeout`` so blocked per-operation waits raise
        :class:`~repro.runtime.comm.CommTimeoutError` after that many
        seconds, and expose ``topology`` (an already-normalized
        :class:`~repro.runtime.topology.Topology` or ``None``) as
        ``comm.topology`` on every rank's communicator.
        """

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (idempotent re-register)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(spec: "str | Backend") -> Backend:
    """Resolve a backend spec (or pass through an instance).

    Plain names resolve through the registry. A ``"prefix:rest"`` spec
    resolves ``prefix`` to a registered *wrapper* factory — one whose
    factory carries ``wraps_spec = True`` — and passes ``rest`` (the
    wrapped backend's own spec) to it, so wrappers compose with every
    backend by name: ``get_backend("faulty:shmem")``.
    """
    if isinstance(spec, Backend):
        return spec
    factory = _REGISTRY.get(spec)
    if factory is not None:
        return factory()
    prefix, sep, rest = spec.partition(":")
    if sep:
        wrapper = _REGISTRY.get(prefix)
        if wrapper is not None and getattr(wrapper, "wraps_spec", False):
            return wrapper(rest)
    raise ValueError(f"unknown backend {spec!r}; choose from {sorted(_REGISTRY)}")
