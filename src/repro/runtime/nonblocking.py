"""Non-blocking collective operations (MPI-3 style, paper §7).

SparCML "allow[s] a thread to trigger a collective operation, such as
allreduce, in a nonblocking way. This enables the thread to proceed with
local computations while the operation is performed in the background."

We reproduce exactly that: :func:`i_collective` launches the rank's part of
a collective on a background progress thread and hands back a handle. The
caller keeps computing and calls ``wait()`` when it needs the result.

The machinery is backend-agnostic: :class:`_BufferedComm` is a proxy
communicator that shifts the collective's traffic into a disjoint tag
space and buffers its trace events, while the payloads themselves flow
through the wrapped communicator's transport hooks — thread mailboxes or
process pipes alike.

Trace semantics: the background events are buffered and appended to the
rank's trace at ``wait()`` time, i.e. replay times the collective as if it
completed at the join point. End-to-end benches model the overlap benefit as
``max(compute, comm)`` per step (the standard overlap idealisation) — see
``repro.netsim.replay.overlap_step_time``.
"""

from __future__ import annotations

import threading
from typing import Any

from .comm import Communicator, Handle
from .trace import Trace

__all__ = ["NonBlockingHandle", "i_collective"]


class _BufferedComm(Communicator):
    """Proxy communicator that buffers trace events until joined.

    Point-to-point traffic flows through the real backend immediately (the
    collective makes real progress in the background); only the *trace*
    bookkeeping is deferred so the rank's event log stays in program order.
    """

    def __init__(self, inner: Communicator, tag_base: int) -> None:
        self.inner = inner
        self.rank = inner.rank
        self.size = inner.size
        # private event buffer, sized to the *world* so events (always
        # attributed to world ranks) index correctly even when the wrapped
        # communicator is a sub-communicator of a bigger world
        self.trace = Trace(inner.trace.nranks)
        self.topology = inner.topology
        self._tag_base = tag_base
        self._collective_counter = 0
        self._icoll_depth = inner._icoll_depth + 1

    @property
    def world_rank(self) -> int:
        return self.inner.world_rank

    @property
    def op_timeout(self):
        return self.inner.op_timeout

    def _abort_state(self):
        return self.inner._abort_state()

    def _map_tag(self, tag: int) -> int:
        # compose inward so proxies stack (e.g. i_collective on a split)
        return self.inner._map_tag(self._tag_base + tag)

    def _map_peer(self, peer: int) -> int:
        return self.inner._map_peer(peer)

    # transport delegates to the wrapped backend (tags arrive pre-shifted)
    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.inner._alloc_seq(dest, tag)

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        self.inner._transport_send(obj, nbytes, seq, dest, tag)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        return self.inner._transport_recv(source, tag)

    def _probe(self, source: int, tag: int) -> bool:
        return self.inner._probe(source, tag)

    def next_collective_tag(self) -> int:
        # tags inside the buffered collective live in the shifted space
        tag = self._collective_counter * 64
        self._collective_counter += 1
        return tag

    def flush_into(self, trace: Trace) -> None:
        """Append the buffered events to the real trace (at join time)."""
        for event in self.trace.events(self.world_rank):
            trace.record(event)


class NonBlockingHandle(Handle):
    """Handle of a background collective; ``wait()`` joins and returns."""

    def __init__(self, thread: threading.Thread, comm: _BufferedComm, result_box: list[Any]) -> None:
        self._thread = thread
        self._comm = comm
        self._box = result_box
        self._joined = False

    def wait(self) -> Any:
        if not self._joined:
            self._thread.join()
            self._comm.flush_into(self._comm.inner.trace)
            self._joined = True
        if self._box and isinstance(self._box[0], BaseException):
            raise self._box[0]
        return self._box[0] if self._box else None

    def test(self) -> bool:
        return not self._thread.is_alive()


#: "knob not passed" sentinel — lets the callable form forward only the
#: keywords the caller actually set (a callable need not accept all four).
_UNSET: Any = object()

#: the blocking-surface knobs mirrored by the stream form (and forwarded
#: verbatim by the callable form when explicitly set).
_KNOBS = ("algorithm", "quantizer", "op", "chunks")


def i_collective(
    comm: Communicator,
    collective: Any,
    *args: Any,
    algorithm: Any = _UNSET,
    quantizer: Any = _UNSET,
    op: Any = _UNSET,
    chunks: Any = _UNSET,
    **kwargs: Any,
) -> NonBlockingHandle:
    """Launch a collective in the background; returns a joinable handle.

    Two forms, mirroring the blocking surface:

    * **Stream form** — ``collective`` is a
      :class:`~repro.streams.SparseStream`: the call accepts exactly the
      knobs of :func:`~repro.collectives.api.sparse_allreduce`
      (``algorithm="auto"``, ``quantizer=``, ``op=``, ``chunks=``) and
      resolves them through the same
      :func:`~repro.collectives.api.resolve_collective` path *eagerly* on
      the calling thread, so ``"auto"`` selection and argument validation
      behave identically to the blocking call (and bad knobs raise at
      launch, not at ``wait()``).
    * **Callable form** — ``collective`` is a callable: it runs as
      ``collective(buffered_comm, *args, **kwargs)``; any of the four
      knobs passed explicitly are forwarded into ``kwargs`` unchanged.

    All ranks must call this in the same program order (the usual MPI
    non-blocking-collective contract) so the shifted tag spaces line up.
    Works on any backend: the progress thread lives inside the rank (the
    rank's thread on the thread backend, the rank's process on the process
    backend).
    """
    knobs = {
        name: value
        for name, value in zip(_KNOBS, (algorithm, quantizer, op, chunks))
        if value is not _UNSET
    }
    if callable(collective):
        kwargs.update(knobs)
        target, call_args, call_kwargs = collective, args, kwargs
        payload = ()
    else:
        # stream form: resolve like sparse_allreduce would, on this thread
        if args:
            if len(args) > 1 or "algorithm" in knobs:
                raise TypeError(
                    "stream form of i_collective takes at most one positional "
                    "argument (the algorithm name)"
                )
            knobs["algorithm"] = args[0]
        if kwargs:
            raise TypeError(
                f"stream form of i_collective got unexpected keyword arguments "
                f"{sorted(kwargs)}; it accepts {list(_KNOBS)}"
            )
        # local import: collectives is layered on top of the runtime package
        from ..collectives.api import resolve_collective

        target, call_kwargs = resolve_collective(comm, collective, **knobs)
        call_args, payload = (), (collective,)

    # Shift the proxy's traffic into a tag region disjoint from blocking
    # tags — and widen the shift with proxy nesting depth, so a launch on
    # a sub-communicator of a buffered proxy (e.g. each chunk of a chunked
    # hierarchical collective running inside a fused-bucket collective)
    # lands in a bit field disjoint from the *outer* launches' bases.
    # With one equal stride, outer launch i + inner launch k aliases
    # i' + k' whenever i + k == i' + k': concurrent sibling collectives
    # would swap payloads. Two proxy levels fit under the
    # sub-communicator window base (SPLIT_TAG_BASE = 1 << 40); deeper
    # nesting would alias those windows, so refuse it loudly.
    if comm._icoll_depth >= 2:
        raise RuntimeError(
            "i_collective supports at most two levels of nested "
            "non-blocking collectives (a launch inside a launch); this "
            "communicator is already buffered "
            f"{comm._icoll_depth} levels deep"
        )
    tag_base = comm.next_collective_tag() << (8 * (1 + comm._icoll_depth))
    proxy = _BufferedComm(comm, tag_base)
    box: list[Any] = []

    def work() -> None:
        try:
            box.append(target(proxy, *payload, *call_args, **call_kwargs))
        except BaseException as exc:  # noqa: BLE001 - surfaced at wait()
            box.append(exc)

    thread = threading.Thread(target=work, name=f"icoll-rank{comm.rank}", daemon=True)
    thread.start()
    return NonBlockingHandle(thread, proxy, box)
