"""Non-blocking collective operations (MPI-3 style, paper §7).

SparCML "allow[s] a thread to trigger a collective operation, such as
allreduce, in a nonblocking way. This enables the thread to proceed with
local computations while the operation is performed in the background."

We reproduce exactly that: :func:`i_collective` launches the rank's part of
a collective on a background progress thread and hands back a handle. The
caller keeps computing and calls ``wait()`` when it needs the result.

Trace semantics: the background events are buffered and appended to the
rank's trace at ``wait()`` time, i.e. replay times the collective as if it
completed at the join point. End-to-end benches model the overlap benefit as
``max(compute, comm)`` per step (the standard overlap idealisation) — see
``repro.netsim.replay.overlap_step_time``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .comm import Communicator, Handle
from .thread_backend import ThreadComm
from .trace import Trace

__all__ = ["NonBlockingHandle", "i_collective"]


class _BufferedComm(Communicator):
    """Proxy communicator that buffers trace events until joined.

    Point-to-point traffic flows through the real backend immediately (the
    collective makes real progress in the background); only the *trace*
    bookkeeping is deferred so the rank's event log stays in program order.
    """

    def __init__(self, inner: ThreadComm, tag_base: int) -> None:
        self.inner = inner
        self.rank = inner.rank
        self.size = inner.size
        self.buffer = Trace(inner.size)
        self._tag_base = tag_base
        self._tag_counter = 0
        self._real_trace = inner.world.trace

    def _shift(self, tag: int) -> int:
        return self._tag_base + tag

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        shifted = self._shift(tag)
        from .comm import payload_nbytes, copy_payload

        nbytes = payload_nbytes(obj)
        payload = copy_payload(obj) if self.inner.world.copy_payloads else obj
        seq = self._real_trace.next_seq(self.rank, dest, shifted)
        self.buffer.record_send(self.rank, dest, shifted, seq, nbytes)
        self.inner.world.mailbox(self.rank, dest, shifted).put(payload, nbytes, seq)

    def recv(self, source: int, tag: int = 0) -> Any:
        shifted = self._shift(tag)
        box = self.inner.world.mailbox(source, self.rank, shifted)
        payload, nbytes, seq = box.get(self.inner.world.aborted)
        self.buffer.record_recv(self.rank, source, shifted, seq, nbytes)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Handle:
        self.send(obj, dest, tag)
        from .thread_backend import CompletedHandle

        return CompletedHandle()

    def irecv(self, source: int, tag: int = 0) -> Handle:
        from .thread_backend import DeferredRecvHandle

        # DeferredRecvHandle calls back into self.recv, keeping buffering
        return DeferredRecvHandle(self, source, tag)  # type: ignore[arg-type]

    def compute(self, nbytes: int, label: str = "") -> None:
        if nbytes:
            self.buffer.record_compute(self.rank, nbytes, label)

    def mark(self, label: str) -> None:
        self.buffer.record_mark(self.rank, label)

    def next_collective_tag(self) -> int:
        # tags inside the buffered collective live in the shifted space
        tag = self._tag_counter * 64
        self._tag_counter += 1
        return tag

    def flush_into(self, trace: Trace) -> None:
        """Append the buffered events to the real trace (at join time)."""
        for event in self.buffer.events(self.rank):
            trace.record(event)


class NonBlockingHandle(Handle):
    """Handle of a background collective; ``wait()`` joins and returns."""

    def __init__(self, thread: threading.Thread, comm: _BufferedComm, result_box: list[Any]) -> None:
        self._thread = thread
        self._comm = comm
        self._box = result_box
        self._joined = False

    def wait(self) -> Any:
        if not self._joined:
            self._thread.join()
            self._comm.flush_into(self._comm.inner.world.trace)
            self._joined = True
        if self._box and isinstance(self._box[0], BaseException):
            raise self._box[0]
        return self._box[0] if self._box else None

    def test(self) -> bool:
        return not self._thread.is_alive()


def i_collective(
    comm: ThreadComm,
    collective: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> NonBlockingHandle:
    """Launch ``collective(buffered_comm, *args, **kwargs)`` in the background.

    All ranks must call this in the same program order (the usual MPI
    non-blocking-collective contract) so the shifted tag spaces line up.
    """
    tag_base = comm.next_collective_tag() << 8  # disjoint from blocking tags
    proxy = _BufferedComm(comm, tag_base)
    box: list[Any] = []

    def work() -> None:
        try:
            box.append(collective(proxy, *args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - surfaced at wait()
            box.append(exc)

    thread = threading.Thread(target=work, name=f"icoll-rank{comm.rank}", daemon=True)
    thread.start()
    return NonBlockingHandle(thread, proxy, box)
