"""Non-blocking collective operations (MPI-3 style, paper §7).

SparCML "allow[s] a thread to trigger a collective operation, such as
allreduce, in a nonblocking way. This enables the thread to proceed with
local computations while the operation is performed in the background."

We reproduce exactly that: :func:`i_collective` launches the rank's part of
a collective on a background progress thread and hands back a handle. The
caller keeps computing and calls ``wait()`` when it needs the result.

The machinery is backend-agnostic: :class:`_BufferedComm` is a proxy
communicator that shifts the collective's traffic into a disjoint tag
space and buffers its trace events, while the payloads themselves flow
through the wrapped communicator's transport hooks — thread mailboxes or
process pipes alike.

Trace semantics: the background events are buffered and appended to the
rank's trace at ``wait()`` time, i.e. replay times the collective as if it
completed at the join point. End-to-end benches model the overlap benefit as
``max(compute, comm)`` per step (the standard overlap idealisation) — see
``repro.netsim.replay.overlap_step_time``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .comm import Communicator, Handle
from .trace import Trace

__all__ = ["NonBlockingHandle", "i_collective"]


class _BufferedComm(Communicator):
    """Proxy communicator that buffers trace events until joined.

    Point-to-point traffic flows through the real backend immediately (the
    collective makes real progress in the background); only the *trace*
    bookkeeping is deferred so the rank's event log stays in program order.
    """

    def __init__(self, inner: Communicator, tag_base: int) -> None:
        self.inner = inner
        self.rank = inner.rank
        self.size = inner.size
        # private event buffer, sized to the *world* so events (always
        # attributed to world ranks) index correctly even when the wrapped
        # communicator is a sub-communicator of a bigger world
        self.trace = Trace(inner.trace.nranks)
        self.topology = inner.topology
        self._tag_base = tag_base
        self._collective_counter = 0

    @property
    def world_rank(self) -> int:
        return self.inner.world_rank

    @property
    def op_timeout(self):
        return self.inner.op_timeout

    def _abort_state(self):
        return self.inner._abort_state()

    def _map_tag(self, tag: int) -> int:
        # compose inward so proxies stack (e.g. i_collective on a split)
        return self.inner._map_tag(self._tag_base + tag)

    def _map_peer(self, peer: int) -> int:
        return self.inner._map_peer(peer)

    # transport delegates to the wrapped backend (tags arrive pre-shifted)
    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.inner._alloc_seq(dest, tag)

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        self.inner._transport_send(obj, nbytes, seq, dest, tag)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        return self.inner._transport_recv(source, tag)

    def _probe(self, source: int, tag: int) -> bool:
        return self.inner._probe(source, tag)

    def next_collective_tag(self) -> int:
        # tags inside the buffered collective live in the shifted space
        tag = self._collective_counter * 64
        self._collective_counter += 1
        return tag

    def flush_into(self, trace: Trace) -> None:
        """Append the buffered events to the real trace (at join time)."""
        for event in self.trace.events(self.world_rank):
            trace.record(event)


class NonBlockingHandle(Handle):
    """Handle of a background collective; ``wait()`` joins and returns."""

    def __init__(self, thread: threading.Thread, comm: _BufferedComm, result_box: list[Any]) -> None:
        self._thread = thread
        self._comm = comm
        self._box = result_box
        self._joined = False

    def wait(self) -> Any:
        if not self._joined:
            self._thread.join()
            self._comm.flush_into(self._comm.inner.trace)
            self._joined = True
        if self._box and isinstance(self._box[0], BaseException):
            raise self._box[0]
        return self._box[0] if self._box else None

    def test(self) -> bool:
        return not self._thread.is_alive()


def i_collective(
    comm: Communicator,
    collective: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> NonBlockingHandle:
    """Launch ``collective(buffered_comm, *args, **kwargs)`` in the background.

    All ranks must call this in the same program order (the usual MPI
    non-blocking-collective contract) so the shifted tag spaces line up.
    Works on any backend: the progress thread lives inside the rank (the
    rank's thread on the thread backend, the rank's process on the process
    backend).
    """
    tag_base = comm.next_collective_tag() << 8  # disjoint from blocking tags
    proxy = _BufferedComm(comm, tag_base)
    box: list[Any] = []

    def work() -> None:
        try:
            box.append(collective(proxy, *args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - surfaced at wait()
            box.append(exc)

    thread = threading.Thread(target=work, name=f"icoll-rank{comm.rank}", daemon=True)
    thread.start()
    return NonBlockingHandle(thread, proxy, box)
