"""Thread-backed communicator: one Python thread per rank, shared mailboxes.

This backend gives the collectives *real* concurrent execution with MPI
point-to-point semantics:

* messages on one (source, dest, tag) channel are delivered FIFO,
* ``recv`` blocks until a matching message arrives,
* payloads are copied on send, so sender and receiver never alias buffers
  (matching MPI's independent-buffer guarantee),
* every operation is appended to the run's :class:`~repro.runtime.trace.Trace`
  for later timing replay.

Failure handling: if any rank raises, the world is flagged as failed and all
ranks blocked in ``recv`` abort with :class:`WorldAbortedError` instead of
deadlocking.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any

from .comm import (
    COLLECTIVE_TAG_BLOCK,
    TAG_USER_LIMIT,
    Communicator,
    Handle,
    copy_payload,
    payload_nbytes,
)
from .trace import Trace

__all__ = ["ThreadWorld", "ThreadComm", "WorldAbortedError", "CompletedHandle", "DeferredRecvHandle"]

#: how often blocked receivers poll the failure flag (seconds).
_ABORT_POLL_S = 0.05


class WorldAbortedError(RuntimeError):
    """Raised in ranks blocked on communication after another rank failed."""


class _Mailbox:
    """FIFO queue for one (source, dest, tag) channel."""

    __slots__ = ("items", "cond")

    def __init__(self) -> None:
        self.items: deque[tuple[Any, int, int]] = deque()  # (payload, nbytes, seq)
        self.cond = threading.Condition()

    def put(self, payload: Any, nbytes: int, seq: int) -> None:
        with self.cond:
            self.items.append((payload, nbytes, seq))
            self.cond.notify()

    def get(self, aborted: threading.Event) -> tuple[Any, int, int]:
        with self.cond:
            while not self.items:
                if aborted.is_set():
                    raise WorldAbortedError("another rank failed; aborting recv")
                self.cond.wait(timeout=_ABORT_POLL_S)
            return self.items.popleft()


class ThreadWorld:
    """Shared state of one parallel run: mailboxes, trace, failure flag."""

    def __init__(self, size: int, *, copy_payloads: bool = True, trace: Trace | None = None) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.copy_payloads = copy_payloads
        self.trace = trace if trace is not None else Trace(size)
        self.aborted = threading.Event()
        self._boxes: dict[tuple[int, int, int], _Mailbox] = {}
        self._boxes_lock = threading.Lock()

    def mailbox(self, src: int, dst: int, tag: int) -> _Mailbox:
        key = (src, dst, tag)
        box = self._boxes.get(key)
        if box is None:
            with self._boxes_lock:
                box = self._boxes.setdefault(key, _Mailbox())
        return box

    def abort(self) -> None:
        """Flag the world as failed and wake all blocked receivers."""
        self.aborted.set()
        with self._boxes_lock:
            boxes = list(self._boxes.values())
        for box in boxes:
            with box.cond:
                box.cond.notify_all()

    def comm(self, rank: int) -> "ThreadComm":
        """The communicator handle for one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for world of size {self.size}")
        return ThreadComm(self, rank)


class CompletedHandle(Handle):
    """Handle of an already-finished operation (buffered sends)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> bool:
        return True


class DeferredRecvHandle(Handle):
    """irecv handle: performs the matching receive at ``wait()`` time."""

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm: "ThreadComm", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        box = self._comm.world.mailbox(self._source, self._comm.rank, self._tag)
        with box.cond:
            return bool(box.items)


class ThreadComm(Communicator):
    """Per-rank communicator bound to a :class:`ThreadWorld`."""

    def __init__(self, world: ThreadWorld, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self._collective_counter = 0

    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest rank {dest} out of range [0, {self.size})")
        if dest == self.rank:
            raise ValueError("self-sends are not supported; use local state")
        nbytes = payload_nbytes(obj)
        payload = copy_payload(obj) if self.world.copy_payloads else obj
        seq = self.world.trace.next_seq(self.rank, dest, tag)
        self.world.trace.record_send(self.rank, dest, tag, seq, nbytes)
        self.world.mailbox(self.rank, dest, tag).put(payload, nbytes, seq)

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"source rank {source} out of range [0, {self.size})")
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        box = self.world.mailbox(source, self.rank, tag)
        payload, nbytes, seq = box.get(self.world.aborted)
        self.world.trace.record_recv(self.rank, source, tag, seq, nbytes)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Handle:
        # buffered semantics: the payload is copied into the mailbox at once,
        # so the operation is already complete when the handle is returned.
        self.send(obj, dest, tag)
        return CompletedHandle()

    def irecv(self, source: int, tag: int = 0) -> Handle:
        return DeferredRecvHandle(self, source, tag)

    def compute(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise ValueError(f"compute bytes must be non-negative, got {nbytes}")
        if nbytes:
            self.world.trace.record_compute(self.rank, nbytes, label)

    def mark(self, label: str) -> None:
        self.world.trace.record_mark(self.rank, label)

    def next_collective_tag(self) -> int:
        tag = TAG_USER_LIMIT + self._collective_counter * COLLECTIVE_TAG_BLOCK
        self._collective_counter += 1
        return tag
