"""Thread-backed communicator: one Python thread per rank, shared mailboxes.

This backend gives the collectives *real* concurrent execution with MPI
point-to-point semantics:

* messages on one (source, dest, tag) channel are delivered FIFO,
* ``recv`` blocks until a matching message arrives,
* payloads are copied on send, so sender and receiver never alias buffers
  (matching MPI's independent-buffer guarantee),
* every operation is appended to the run's :class:`~repro.runtime.trace.Trace`
  for later timing replay.

Failure handling: if any rank raises, the world is flagged as failed and all
ranks blocked in ``recv`` abort with :class:`WorldAbortedError` instead of
deadlocking.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .backend import Backend, ParallelResult, RankError, register_backend
from .comm import (
    AbortState,
    Communicator,
    CompletedHandle,
    DeferredRecvHandle,
    Mailbox,
    MailboxRegistry,
    WorldAbortedError,
    copy_payload,
)
from .trace import Trace

__all__ = [
    "ThreadBackend",
    "ThreadWorld",
    "ThreadComm",
    "WorldAbortedError",
    "CompletedHandle",
    "DeferredRecvHandle",
]


class ThreadWorld:
    """Shared state of one parallel run: mailboxes, trace, failure flag."""

    def __init__(
        self,
        size: int,
        *,
        copy_payloads: bool = True,
        trace: Trace | None = None,
        topology: Any = None,
        op_timeout: float | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.copy_payloads = copy_payloads
        self.trace = trace if trace is not None else Trace(size)
        self.topology = topology
        self.op_timeout = op_timeout
        self._mailboxes = MailboxRegistry()
        #: per-rank abort states, mirroring the process family where each
        #: rank's *process* holds its own flag: a failure sets every rank's
        #: state, but an elastic shrink resets only the shrinking rank's —
        #: so ranks that have not yet observed the failure still find it
        #: recorded, no matter how late they arrive at their shrink() call.
        self._rank_states = [AbortState() for _ in range(size)]
        #: highest committed elastic epoch of any rank (informational; each
        #: rank's working epoch lives on its :class:`ThreadComm`, again
        #: matching the per-process epochs of the other backends).
        self.epoch = 0
        #: ranks a membership change declared dead; late aborts attributed
        #: to them are suppressed so they cannot kill the shrunken world.
        self.dead_ranks: set[int] = set()
        self._elastic_lock = threading.Lock()
        #: rejoin requests queued by :func:`~repro.runtime.elastic.thread_rejoin`
        #: (the thread backend's rendezvous analog); the elastic leader
        #: commits them between iterations.
        self._pending_joins: list[dict] = []

    def mailbox(self, src: int, dst: int, tag: int) -> Mailbox:
        return self._mailboxes.get((src, dst, tag))

    @property
    def aborted(self) -> AbortState:
        """Rank 0's abort state (the launcher's world-failed probe)."""
        return self._rank_states[0]

    def abort(self, failed_rank: int | None = None) -> None:
        """Flag the world as failed and wake all blocked receivers."""
        if failed_rank is not None and failed_rank in self.dead_ranks:
            return  # already accounted for by a shrink; the world lives on
        for state in self._rank_states:
            state.set(failed_rank)
        self._mailboxes.wake_all()

    def comm(self, rank: int) -> "ThreadComm":
        """The communicator handle for one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for world of size {self.size}")
        return ThreadComm(self, rank)


class ThreadComm(Communicator):
    """Per-rank communicator bound to a :class:`ThreadWorld`."""

    def __init__(self, world: ThreadWorld, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.trace = world.trace
        self.topology = world.topology
        self.op_timeout = world.op_timeout
        self._collective_counter = 0
        #: this rank's elastic epoch — per-communicator, not shared, so
        #: every survivor computes the same ``epoch + 1`` at shrink time no
        #: matter in what order the rank threads reach their shrink() call
        #: (exactly like the per-process epochs of the other backends)
        self.epoch = 0

    @property
    def dead_ranks(self) -> set[int]:
        return self.world.dead_ranks

    def _elastic_reset(self, dead_ranks, epoch: int) -> None:
        # the dead set is world knowledge, but the abort flag and epoch are
        # per-rank: resetting only this rank's state leaves the recorded
        # failure visible to rank threads that have not caught it yet
        with self.world._elastic_lock:
            self.world.dead_ranks.update(int(r) for r in dead_ranks)
            self.world._rank_states[self.rank] = AbortState()
            self.epoch = int(epoch)
            self.world.epoch = max(self.world.epoch, int(epoch))

    def _elastic_note_dead(self, ranks) -> None:
        with self.world._elastic_lock:
            self.world.dead_ranks.update(int(r) for r in ranks)
            state = self.world._rank_states[self.rank]
            if (
                state.is_set()
                and state.failed_ranks
                and state.failed_ranks <= self.world.dead_ranks
            ):
                self.world._rank_states[self.rank] = AbortState()

    def _elastic_regrow(self, rank: int, epoch: int) -> None:
        with self.world._elastic_lock:
            self.world.dead_ranks.discard(int(rank))
            self.epoch = int(epoch)
            self.world.epoch = max(self.world.epoch, int(epoch))

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.world.trace.next_seq(self.rank, dest, tag)

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        payload = copy_payload(obj) if self.world.copy_payloads else obj
        self.world.mailbox(self.rank, dest, tag).put(payload, nbytes, seq)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        box = self.world.mailbox(source, self.rank, tag)
        return box.get(
            self.world._rank_states[self.rank],
            timeout=self.op_timeout,
            source=source,
            tag=tag,
        )

    def _probe(self, source: int, tag: int) -> bool:
        return self.world.mailbox(source, self.rank, tag).has_items()

    def _abort_state(self) -> AbortState:
        return self.world._rank_states[self.rank]


class ThreadBackend(Backend):
    """In-process backend: one daemon thread per rank, zero-copy transport
    apart from the MPI-mandated send-side payload copy."""

    name = "thread"

    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Any = None,
        **kwargs: Any,
    ) -> ParallelResult:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        world = ThreadWorld(
            nranks,
            copy_payloads=copy_payloads,
            trace=trace,
            topology=topology,
            op_timeout=op_timeout,
        )
        results: list[Any] = [None] * nranks
        errors: list[tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def runner(rank: int) -> None:
            comm = world.comm(rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except WorldAbortedError:
                pass  # secondary failure: another rank already aborted the world
            except BaseException as exc:  # noqa: BLE001 - must propagate rank errors
                with errors_lock:
                    errors.append((rank, exc))
                world.abort(failed_rank=rank)

        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"rank-{rank}", daemon=True)
            for rank in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                world.abort()
                raise TimeoutError(
                    f"parallel run did not finish within {timeout}s "
                    f"(likely deadlock in {t.name})"
                )

        if errors:
            rank, original = min(errors, key=lambda e: e[0])
            err = RankError(rank, original)
            err.partial_results = results
            raise err from original
        return ParallelResult(results=results, trace=world.trace, world=world)


register_backend(ThreadBackend.name, ThreadBackend)
