"""Network topology descriptors: which host every rank lives on.

SparCML's large-scale results (§6) come from clusters where the
intra-node and inter-node links differ by an order of magnitude, and the
algorithm-selection logic of §5.3 presumes the runtime can exploit that.
A :class:`Topology` is the minimal description the collectives need: one
host label per rank. From it derive the host *groups* (ranks sharing a
machine), the per-host *leaders* (lowest rank on each host) and the
hierarchy tests the selector and
:func:`~repro.collectives.hier.ssar_hierarchical` use.

Where a topology comes from
---------------------------
* the **socket backend** derives one automatically from the rendezvous
  address map — every rank registers ``(rank, host, port)``, so the host
  column *is* the topology (``comm.topology`` on every socket
  communicator);
* the other backends share one kernel, so a run that wants to *simulate*
  a multi-host world passes an explicit spec to
  :func:`~repro.runtime.run_ranks`::

      run_ranks(fn, 8, topology="2x4")       # 2 hosts x 4 ranks
      run_ranks(fn, 8, topology=2)           # ... ranks per node
      run_ranks(fn, 8, topology=Topology(("a","a","a","a","b","b","b","b")))

* sub-communicators restrict the parent topology to their members, so
  hierarchical algorithms compose under :meth:`Communicator.split`.

Byte accounting by tier (:func:`inter_node_bytes`) classifies trace
traffic into intra-host and cross-host volume — the number hierarchical
collectives exist to shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from .trace import SEND, Trace

__all__ = [
    "Topology",
    "normalize_topology",
    "check_topology_size",
    "inter_node_bytes",
    "bytes_by_tier",
]


@dataclass(frozen=True)
class Topology:
    """One host label per rank (``hosts[rank]`` is where that rank runs).

    Immutable and hashable; all derived views are cached. Host labels are
    opaque strings — equality is what groups ranks, nothing else.
    """

    hosts: tuple[str, ...]

    def __post_init__(self) -> None:
        # canonicalize first (a one-shot iterable must not be consumed by
        # validation), and reject a bare string — almost certainly a
        # mistaken spec, not a per-character host list
        if isinstance(self.hosts, str):
            raise ValueError(
                f"hosts must be a sequence of host labels, got the string "
                f"{self.hosts!r} (did you mean Topology.from_spec?)"
            )
        if not isinstance(self.hosts, tuple):
            object.__setattr__(self, "hosts", tuple(self.hosts))
        if not self.hosts:
            raise ValueError("a topology needs at least one rank")
        if not all(isinstance(h, str) and h for h in self.hosts):
            raise ValueError("host labels must be non-empty strings")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, nranks: int, host: str = "node0") -> "Topology":
        """Every rank on one host (the degenerate single-machine world)."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return cls(hosts=(host,) * nranks)

    @classmethod
    def uniform(cls, nranks: int, ranks_per_node: int) -> "Topology":
        """``nranks`` ranks packed onto hosts of ``ranks_per_node`` each.

        Ranks fill hosts in contiguous blocks (``node0`` gets ranks
        ``0..ranks_per_node-1``, and so on); the last host may be short.
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if ranks_per_node < 1:
            raise ValueError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        return cls(hosts=tuple(f"node{r // ranks_per_node}" for r in range(nranks)))

    @classmethod
    def from_spec(cls, spec: str) -> "Topology":
        """Parse an ``HxR`` spec: ``"2x4"`` = 2 hosts x 4 ranks per host."""
        head, sep, tail = spec.lower().partition("x")
        if not sep or not head.isdigit() or not tail.isdigit():
            raise ValueError(
                f"topology spec must look like 'HOSTSxRANKS_PER_NODE' (e.g. '2x4'), got {spec!r}"
            )
        nhosts, per_node = int(head), int(tail)
        if nhosts < 1 or per_node < 1:
            raise ValueError(f"topology spec needs positive factors, got {spec!r}")
        return cls.uniform(nhosts * per_node, per_node)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        return len(self.hosts)

    @cached_property
    def unique_hosts(self) -> tuple[str, ...]:
        """Hosts in first-seen (rank) order."""
        return tuple(dict.fromkeys(self.hosts))

    @property
    def nnodes(self) -> int:
        return len(self.unique_hosts)

    @cached_property
    def groups(self) -> tuple[tuple[int, ...], ...]:
        """Per-host rank groups (host order = first-seen, ranks ascending)."""
        by_host: dict[str, list[int]] = {h: [] for h in self.unique_hosts}
        for rank, host in enumerate(self.hosts):
            by_host[host].append(rank)
        return tuple(tuple(ranks) for ranks in by_host.values())

    @cached_property
    def leaders(self) -> tuple[int, ...]:
        """The lowest rank on each host (one leader per node)."""
        return tuple(group[0] for group in self.groups)

    def host_of(self, rank: int) -> str:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return self.hosts[rank]

    def ranks_on(self, host: str) -> tuple[int, ...]:
        """All ranks living on ``host`` (ascending)."""
        ranks = tuple(r for r, h in enumerate(self.hosts) if h == host)
        if not ranks:
            raise ValueError(f"no rank lives on host {host!r}")
        return ranks

    def group_of(self, rank: int) -> tuple[int, ...]:
        """The rank's host group (itself included)."""
        return self.ranks_on(self.host_of(rank))

    def leader_of(self, rank: int) -> int:
        """The leader rank of ``rank``'s host."""
        return self.group_of(rank)[0]

    @property
    def max_ranks_per_node(self) -> int:
        return max(len(g) for g in self.groups)

    @property
    def is_hierarchical(self) -> bool:
        """More than one host *and* at least one host with several ranks.

        A single-host world has no slow tier to save on; a one-rank-per-
        host world has no intra-node tier to merge on. Both degenerate to
        flat algorithms.
        """
        return self.nnodes > 1 and self.max_ranks_per_node > 1

    # ------------------------------------------------------------------
    def restrict(self, ranks: Sequence[int]) -> "Topology":
        """The sub-topology of a rank subset (for sub-communicators)."""
        return Topology(hosts=tuple(self.hosts[self._check(r)] for r in ranks))

    def _check(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return rank

    def describe(self) -> str:
        """Human-readable host grouping, e.g. ``2 hosts: a=[0,1] b=[2,3]``."""
        parts = " ".join(
            f"{host}={list(group)}" for host, group in zip(self.unique_hosts, self.groups)
        )
        noun = "host" if self.nnodes == 1 else "hosts"
        return f"{self.nnodes} {noun}: {parts}"


def check_topology_size(topology: Topology, nranks: int) -> Topology:
    """Validate that ``topology`` describes exactly ``nranks`` ranks.

    The one size check every launcher path shares (``run_ranks``,
    ``run_sparse_allreduce``, ``serve_rank``, sub-communicator
    restriction, replay), so a mismatch raises the same clear
    :class:`ValueError` everywhere.
    """
    if topology.nranks != nranks:
        raise ValueError(
            f"topology describes {topology.nranks} ranks but the world has {nranks}"
        )
    return topology


def normalize_topology(
    spec: "Topology | str | int | Iterable[str] | None", nranks: int
) -> Topology | None:
    """Resolve every accepted topology spelling to a validated instance.

    ``None`` passes through (meaning: backend-derived or flat),
    a :class:`Topology` is validated against ``nranks``, ``"2x4"`` parses
    as hosts x ranks-per-node, an ``int`` means ranks per node, and any
    iterable of strings is taken as the per-rank host list.
    """
    if spec is None:
        return None
    if isinstance(spec, Topology):
        topo = spec
    elif isinstance(spec, str):
        topo = Topology.from_spec(spec)
    elif isinstance(spec, int):
        topo = Topology.uniform(nranks, spec)
    else:
        topo = Topology(hosts=tuple(spec))
    return check_topology_size(topo, nranks)


def bytes_by_tier(trace: Trace, topology: Topology) -> tuple[int, int]:
    """Split the trace's sent bytes into (intra-host, inter-host) volume."""
    if topology.nranks != trace.nranks:
        raise ValueError(
            f"topology describes {topology.nranks} ranks, trace has {trace.nranks}"
        )
    intra = inter = 0
    hosts = topology.hosts
    for rank_events in trace:
        for ev in rank_events:
            if ev.op != SEND:
                continue
            if hosts[ev.rank] == hosts[ev.peer]:
                intra += ev.nbytes
            else:
                inter += ev.nbytes
    return intra, inter


def inter_node_bytes(trace: Trace, topology: Topology) -> int:
    """Bytes that crossed the slow tier (sends between different hosts)."""
    return bytes_by_tier(trace, topology)[1]
