"""Deterministic fault injection: drop, delay or kill on any backend.

SparCML targets deployments where a dead or slow rank is the common case
(§6); this module makes those failures *reproducible test inputs* instead
of production surprises. The design follows the shape of PyTorch's faulty
RPC agent fixture — a wrapper transport with a deterministic schedule of
which messages to break — adapted to this runtime's transport hooks:

:class:`FaultPlan`
    a frozen, seeded schedule of actions keyed on the message identity
    ``(src, dst, tag, seq)`` plus a per-rank kill trigger keyed on the
    rank's transport-operation count. Decisions are pure functions of the
    key and the seed (a keyed hash, not Python's salted ``hash()``), so
    the same plan reproduces the same failure sequence on every backend,
    every process, every run.
:class:`FaultyComm`
    a proxy communicator that applies the plan at the transport-hook
    layer: drops vanish on the wire *after* the send is traced (exactly
    where a real network would lose them), delays sleep before the send,
    kills terminate the rank mid-collective.
:class:`FaultyBackend`
    a wrapper backend registered as ``"faulty"``; the spec string
    ``"faulty:<inner>"`` (e.g. ``run_ranks(..., backend="faulty:shmem")``)
    runs the whole world on ``<inner>`` with every rank's communicator
    wrapped — so the equivalence suite can execute under injected faults
    on thread, process, shmem and socket alike.

The launcher surfaces this as ``run_ranks(..., fault_plan=...)``, and the
CLI entry points (``quickstart``, ``serve-rank``) as ``--fault-plan``.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .backend import Backend, ParallelResult, get_backend, register_backend
from .comm import Communicator
from .thread_backend import ThreadComm
from .trace import Trace

__all__ = [
    "FaultPlan",
    "FaultyBackend",
    "FaultyComm",
    "RankKilledError",
    "KILL_EXIT_CODE",
]

#: exit status of a rank hard-killed by a plan on a process-family backend.
KILL_EXIT_CODE = 113

#: the three actions a plan can take on one message.
DROP, DELAY, PASS = "drop", "delay", "pass"


class RankKilledError(RuntimeError):
    """Raised *inside* a rank scheduled to die on the thread backend.

    Thread ranks share the caller's process, so "kill" cannot be a real
    ``os._exit`` there; raising this unwinds the rank like a crash and the
    world aborts naming it, giving survivors the same
    :class:`~repro.runtime.comm.RankFailedError` they would see on the
    process-family backends.
    """

    def __init__(self, rank: int, op_index: int) -> None:
        super().__init__(f"rank {rank} killed by fault plan at op {op_index}")
        self.rank = rank
        self.op_index = op_index


def _parse_message_key(text: str) -> tuple[int, int, int, int]:
    """Parse a pinned-message key ``SRC:DST:TAG:SEQ`` from a spec clause."""
    fields = text.split(":")
    if len(fields) != 4:
        raise ValueError(f"expected SRC:DST:TAG:SEQ, got {text!r}")
    return tuple(int(f) for f in fields)  # type: ignore[return-value]


def _key_uniform(seed: int, src: int, dst: int, tag: int, seq: int) -> float:
    """Deterministic uniform in [0, 1) for one message key.

    A keyed blake2b, *not* ``hash()``: Python salts ``hash()`` per process,
    which would make every rank (and every rerun) decide differently.
    """
    digest = hashlib.blake2b(
        struct.pack("<qqqqq", seed, src, dst, tag, seq), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run.

    Probabilistic faults (``drop_rate`` / ``delay_rate``) are decided per
    message from the seeded key hash; explicit faults (``drops`` /
    ``delays``) pin individual messages by their exact
    ``(src, dst, tag, seq)`` key and take precedence. ``kill_rank`` dies
    on its ``kill_after_ops``-th transport operation (sends and receives
    both count), so the kill lands mid-collective deterministically.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.002
    kill_rank: int | None = None
    kill_after_ops: int = 1
    revive_rank: int | None = None
    revive_after_ops: int = 1
    drops: frozenset = frozenset()
    delays: Mapping[tuple, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.delay_rate > 1.0:
            raise ValueError("drop_rate + delay_rate must not exceed 1")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.kill_after_ops < 1:
            raise ValueError(f"kill_after_ops must be >= 1, got {self.kill_after_ops}")
        if self.revive_after_ops < 1:
            raise ValueError(f"revive_after_ops must be >= 1, got {self.revive_after_ops}")
        if self.revive_rank is not None:
            if self.revive_rank != self.kill_rank:
                raise ValueError(
                    f"revive_rank must name the killed rank "
                    f"({self.kill_rank}), got {self.revive_rank}"
                )
            if self.revive_after_ops <= self.kill_after_ops:
                raise ValueError(
                    "revive_after_ops must come after kill_after_ops "
                    f"({self.revive_after_ops} <= {self.kill_after_ops})"
                )

    # ------------------------------------------------------------------
    # decisions (pure, deterministic)
    # ------------------------------------------------------------------
    def action(self, src: int, dst: int, tag: int, seq: int) -> tuple[str, float]:
        """Decide one message's fate: ``(action, delay_seconds)``."""
        key = (src, dst, tag, seq)
        if key in self.drops:
            return DROP, 0.0
        if key in self.delays:
            return DELAY, float(self.delays[key])
        if self.drop_rate or self.delay_rate:
            u = _key_uniform(self.seed, src, dst, tag, seq)
            if u < self.drop_rate:
                return DROP, 0.0
            if u < self.drop_rate + self.delay_rate:
                return DELAY, self.delay_s
        return PASS, 0.0

    def kills(self, rank: int, op_index: int) -> bool:
        """Should ``rank`` die at its ``op_index``-th (1-based) transport op?"""
        return rank == self.kill_rank and op_index >= self.kill_after_ops

    def revives(self, op_index: int) -> bool:
        """Should the killed rank rejoin once survivors pass ``op_index`` ops?

        Consumed by elastic harnesses (not by :class:`FaultyComm` itself):
        the kill is a transport-level event, but the revive is a membership
        decision, so the driver — e.g. the quickstart's elastic path —
        checks this against a survivor's op count and relaunches the rank
        through the rendezvous when it fires.
        """
        return self.revive_rank is not None and op_index >= self.revive_after_ops

    # ------------------------------------------------------------------
    # CLI spec
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec into a plan.

        Comma-separated ``key=value`` clauses::

            seed=7,drop=0.02,delay=0.1/0.005,kill=2@40,revive=2@80

        ``drop=R`` sets the drop rate; ``delay=R`` or ``delay=R/SECONDS``
        the delay rate (and per-message delay); ``kill=RANK`` or
        ``kill=RANK@OPS`` the rank to kill (after OPS transport ops,
        default 1); ``revive=RANK@OPS`` marks the killed rank for rejoin
        once a survivor passes OPS ops. Individual messages are pinned
        with repeatable ``pindrop=SRC:DST:TAG:SEQ`` and
        ``pindelay=SRC:DST:TAG:SEQ/SECONDS`` clauses.

        The spec grammar is the inverse of :meth:`describe`:
        ``FaultPlan.from_spec(plan.describe()) == plan`` for every plan.
        """
        kwargs: dict[str, Any] = {}
        pinned_drops: set[tuple] = set()
        pinned_delays: dict[tuple, float] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise ValueError(f"bad fault-plan clause {clause!r} (expected key=value)")
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "delay":
                    rate, slash, seconds = value.partition("/")
                    kwargs["delay_rate"] = float(rate)
                    if slash:
                        kwargs["delay_s"] = float(seconds)
                elif key == "kill":
                    rank, at, ops = value.partition("@")
                    kwargs["kill_rank"] = int(rank)
                    if at:
                        kwargs["kill_after_ops"] = int(ops)
                elif key == "revive":
                    rank, at, ops = value.partition("@")
                    kwargs["revive_rank"] = int(rank)
                    if at:
                        kwargs["revive_after_ops"] = int(ops)
                elif key == "pindrop":
                    pinned_drops.add(_parse_message_key(value))
                elif key == "pindelay":
                    msg, slash, seconds = value.partition("/")
                    if not slash:
                        raise ValueError("expected SRC:DST:TAG:SEQ/SECONDS")
                    pinned_delays[_parse_message_key(msg)] = float(seconds)
                else:
                    raise ValueError(f"unknown fault-plan key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault-plan clause {clause!r}: {exc}") from None
        if pinned_drops:
            kwargs["drops"] = frozenset(pinned_drops)
        if pinned_delays:
            kwargs["delays"] = pinned_delays
        return cls(**kwargs)

    def describe(self) -> str:
        """The plan as a spec string that :meth:`from_spec` parses back.

        Emitting the bare clause grammar (rather than prose) makes the
        description copy-pastable into ``--fault-plan`` and round-trippable:
        ``FaultPlan.from_spec(plan.describe()) == plan``.
        """
        parts = [f"seed={self.seed}"]
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate}")
        if self.delay_rate or self.delay_s != 0.002:
            parts.append(f"delay={self.delay_rate}/{self.delay_s}")
        if self.kill_rank is not None:
            parts.append(f"kill={self.kill_rank}@{self.kill_after_ops}")
        if self.revive_rank is not None:
            parts.append(f"revive={self.revive_rank}@{self.revive_after_ops}")
        for key in sorted(self.drops):
            parts.append("pindrop=" + ":".join(str(int(v)) for v in key))
        for key in sorted(self.delays):
            joined = ":".join(str(int(v)) for v in key)
            parts.append(f"pindelay={joined}/{float(self.delays[key])}")
        return ",".join(parts)


class FaultyComm(Communicator):
    """Fault-injecting proxy: applies a :class:`FaultPlan` to every message.

    Wraps a backend communicator and interposes on the transport hooks
    only — tags, peers, tracing, collectives and sub-communicator
    machinery all behave exactly as on the wrapped communicator, so any
    program (including the whole equivalence suite) runs unmodified.
    """

    def __init__(self, inner: Communicator, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.rank = inner.rank
        self.size = inner.size
        self.trace = inner.trace
        self.topology = inner.topology
        self.op_timeout = inner.op_timeout
        self._collective_counter = 0
        self._ops = 0

    @property
    def world_rank(self) -> int:
        return self.inner.world_rank

    # -- mapping/bookkeeping hooks: pure delegation ---------------------
    def _map_tag(self, tag: int) -> int:
        return self.inner._map_tag(tag)

    def _map_peer(self, peer: int) -> int:
        return self.inner._map_peer(peer)

    def _abort_state(self):
        return self.inner._abort_state()

    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.inner._alloc_seq(dest, tag)

    def _probe(self, source: int, tag: int) -> bool:
        return self.inner._probe(source, tag)

    # -- the fault interposition ----------------------------------------
    def _tick(self) -> None:
        self._ops += 1
        if self.plan.kills(self.inner.rank, self._ops):
            self._die()

    def _die(self) -> None:
        if isinstance(self.inner, ThreadComm):
            # thread ranks share the test process: simulate death by
            # unwinding; the runner aborts the world naming this rank
            raise RankKilledError(self.inner.rank, self._ops)
        # real-process ranks die for real: immediate exit, no FIN frames,
        # no result report — peers observe EOF exactly like a crash
        os._exit(KILL_EXIT_CODE)

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        self._tick()
        action, delay = self.plan.action(self.inner.rank, dest, tag, seq)
        if action == DROP:
            return  # lost on the wire; the matching recv never completes
        if action == DELAY:
            time.sleep(delay)
        self.inner._transport_send(obj, nbytes, seq, dest, tag)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        self._tick()
        return self.inner._transport_recv(source, tag)


class _FaultyProgram:
    """Picklable wrapper running the user's program on a faulty communicator.

    A module-level class (not a closure) so spawn-platform process
    backends can still pickle the rank function.
    """

    def __init__(self, fn: Callable[..., Any], plan: FaultPlan) -> None:
        self.fn = fn
        self.plan = plan

    def __call__(self, comm: Communicator, *args: Any, **kwargs: Any) -> Any:
        return self.fn(FaultyComm(comm, self.plan), *args, **kwargs)


class FaultyBackend(Backend):
    """Wrapper backend: run on an inner backend with faults injected.

    Registered as ``"faulty"``; the colon spec selects the inner backend,
    so ``backend="faulty:shmem"`` runs the shmem transport under the
    plan. Use :meth:`with_plan` (or ``run_ranks(..., fault_plan=...)``,
    which composes it for you) to attach a non-default plan.
    """

    name = "faulty"

    def __init__(self, inner: "str | Backend" = "thread", plan: FaultPlan | None = None) -> None:
        self.inner = get_backend(inner if inner else "thread")
        self.plan = plan if plan is not None else FaultPlan()
        self.name = f"faulty:{self.inner.name}"

    def with_plan(self, plan: FaultPlan) -> "FaultyBackend":
        """A copy of this wrapper running ``plan`` (backends are stateless)."""
        return FaultyBackend(self.inner, plan)

    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Any = None,
        **kwargs: Any,
    ) -> ParallelResult:
        return self.inner.run(
            _FaultyProgram(fn, self.plan),
            nranks,
            *args,
            copy_payloads=copy_payloads,
            trace=trace,
            timeout=timeout,
            op_timeout=op_timeout,
            topology=topology,
            **kwargs,
        )


def _faulty_factory(inner: str = "thread") -> FaultyBackend:
    return FaultyBackend(inner or "thread")


#: marks the factory as a wrapper: ``get_backend("faulty:<inner>")`` passes
#: the inner spec through (see :func:`~repro.runtime.backend.get_backend`).
_faulty_factory.wraps_spec = True

register_backend(FaultyBackend.name, _faulty_factory)
