"""Abstract communicator interface (the MPI stand-in).

The collective algorithms in :mod:`repro.collectives` are written against
this interface only; any backend that provides blocking point-to-point
``send``/``recv`` with FIFO matching per (source, dest, tag) channel — the
semantics MPI guarantees — can execute them. The library ships two
implementations, selected by the ``backend=`` argument of
:func:`~repro.runtime.run_ranks`:

* :mod:`repro.runtime.thread_backend` — one thread per rank, shared
  mailboxes (fast, in-process);
* :mod:`repro.runtime.process_backend` — one OS process per rank with
  real serialized transport over pipes;
* :mod:`repro.runtime.shmem_backend` — one OS process per rank with
  zero-copy shared-memory ring transport (the fast real transport);
* :mod:`repro.runtime.socket_backend` — one OS process per rank with
  TCP framing (the transport that spans machines).

Layering
--------
:class:`Communicator` implements the *traced* operations (``send``,
``recv``, ``isend``, ``irecv``, ``sendrecv``, ``barrier``, ``bcast``, …)
once, on top of four small transport hooks that each backend provides:

``_alloc_seq``
    allocate the FIFO sequence number of a (src, dst, tag) channel;
``_transport_send`` / ``_transport_recv``
    move one payload without touching the trace;
``_probe``
    non-blocking test for a pending matching message.

This split is what lets :mod:`repro.runtime.nonblocking` buffer trace
events of a background collective while the traffic itself flows through
the real backend, on *any* backend.

Byte accounting
---------------
``payload_nbytes`` defines the wire size of every supported payload type:
objects exposing a ``comm_nbytes()`` protocol method (sparse streams,
quantized blocks), NumPy arrays, scalars, and (recursively) tuples/lists.
These sizes feed both the trace (for netsim replay) and the analytic cost
model, so they must be consistent across the library.
"""

from __future__ import annotations

import abc
import threading
from collections import deque
from typing import Any

import numpy as np

from ..config import STREAM_HEADER_BYTES
from .trace import Trace

__all__ = [
    "Communicator",
    "Handle",
    "CompletedHandle",
    "DeferredRecvHandle",
    "WorldAbortedError",
    "payload_nbytes",
    "copy_payload",
    "TAG_USER_LIMIT",
]

#: user code may use tags in [0, TAG_USER_LIMIT); collectives allocate blocks
#: above it so that user traffic never collides with internal traffic.
TAG_USER_LIMIT = 1 << 16

#: number of distinct tags reserved for a single collective invocation.
COLLECTIVE_TAG_BLOCK = 64


class WorldAbortedError(RuntimeError):
    """Raised in ranks blocked on communication after another rank failed."""


#: how often blocked receivers poll the failure flag (seconds).
_ABORT_POLL_S = 0.05


class Mailbox:
    """FIFO queue for one message channel (shared by both backends)."""

    __slots__ = ("items", "cond")

    def __init__(self) -> None:
        self.items: deque[tuple[Any, int, int]] = deque()  # (payload, nbytes, seq)
        self.cond = threading.Condition()

    def put(self, payload: Any, nbytes: int, seq: int) -> None:
        with self.cond:
            self.items.append((payload, nbytes, seq))
            self.cond.notify()

    def get(self, aborted: threading.Event) -> tuple[Any, int, int]:
        with self.cond:
            while not self.items:
                if aborted.is_set():
                    raise WorldAbortedError("another rank failed; aborting recv")
                self.cond.wait(timeout=_ABORT_POLL_S)
            return self.items.popleft()

    def pop_nowait(self) -> tuple[Any, int, int] | None:
        """The next message, or None — for callers that drive progress."""
        with self.cond:
            return self.items.popleft() if self.items else None

    def wait(self, timeout: float) -> None:
        """Sleep until a message may be available (or ``timeout`` passes)."""
        with self.cond:
            if not self.items:
                self.cond.wait(timeout=timeout)

    def has_items(self) -> bool:
        with self.cond:
            return bool(self.items)


class MailboxRegistry:
    """Lazily-created mailboxes keyed by channel tuple, with abort wakeup.

    The thread backend keys channels world-globally as (src, dst, tag);
    the process backend keys them per-rank as (src, tag). The creation
    (double-checked setdefault) and notify-all-on-abort logic is identical,
    so it lives here once.
    """

    __slots__ = ("_boxes", "_lock")

    def __init__(self) -> None:
        self._boxes: dict[tuple, Mailbox] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Mailbox:
        box = self._boxes.get(key)
        if box is None:
            with self._lock:
                box = self._boxes.setdefault(key, Mailbox())
        return box

    def wake_all(self) -> None:
        """Wake every blocked receiver (after the abort flag is set)."""
        with self._lock:
            boxes = list(self._boxes.values())
        for box in boxes:
            with box.cond:
                box.cond.notify_all()


def payload_nbytes(obj: Any) -> int:
    """Wire size in bytes of a message payload.

    Mirrors a compact binary serialization: numpy arrays cost their buffer
    plus a small header, structured payloads cost the sum of their parts,
    scalars cost one word. Objects may override via ``comm_nbytes()``.
    """
    if obj is None:
        return 0
    hook = getattr(obj, "comm_nbytes", None)
    if callable(hook):
        return int(hook())
    if isinstance(obj, np.ndarray):
        return STREAM_HEADER_BYTES + int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return 8 + len(obj.encode())
    if isinstance(obj, bytes):
        return 8 + len(obj)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    raise TypeError(f"cannot measure wire size of payload type {type(obj).__name__}")


def copy_payload(obj: Any) -> Any:
    """Deep-enough copy of a payload so sender and receiver never alias.

    The thread backend shares one address space; MPI semantics give the
    receiver an independent buffer, so sends copy by default. (The process
    backend gets this isolation for free from serialization.)
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes, np.integer, np.floating)):
        return obj
    copier = getattr(obj, "copy", None)
    if isinstance(obj, (tuple, list)):
        return type(obj)(copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    if callable(copier):
        return copier()
    # frozen dataclass payloads (QuantizedBlock) are treated as immutable
    return obj


class Communicator(abc.ABC):
    """A group of ``size`` ranks with point-to-point messaging.

    Concrete backends must implement the four transport hooks
    (:meth:`_alloc_seq`, :meth:`_transport_send`, :meth:`_transport_recv`,
    :meth:`_probe`) and set :attr:`trace`; every traced operation has a
    shared implementation here.
    """

    rank: int
    size: int
    #: the trace this communicator's events are recorded into. For ordinary
    #: backends this is the world trace; proxy communicators (nonblocking
    #: collectives) point it at a private buffer.
    trace: Trace

    _collective_counter: int = 0

    # ------------------------------------------------------------------
    # transport hooks (backend-provided)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _alloc_seq(self, dest: int, tag: int) -> int:
        """Allocate the FIFO sequence number for the (rank, dest, tag) channel."""

    @abc.abstractmethod
    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        """Move one payload to ``dest`` without recording trace events."""

    @abc.abstractmethod
    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        """Blocking matching receive; returns ``(payload, nbytes, seq)``."""

    @abc.abstractmethod
    def _probe(self, source: int, tag: int) -> bool:
        """Non-blocking test: is a matching message already deliverable?"""

    def _map_tag(self, tag: int) -> int:
        """Hook for proxy communicators that relocate traffic in tag space."""
        return tag

    # ------------------------------------------------------------------
    # traced point-to-point operations
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, role: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{role} rank {peer} out of range [0, {self.size})")
        if peer == self.rank:
            if role == "dest":
                raise ValueError("self-sends are not supported; use local state")
            raise ValueError("self-receives are not supported")

    def _check_tag(self, tag: int) -> None:
        # negative tags are reserved for transport-internal framing (e.g. the
        # process backend's FIN marker); rejecting them here keeps the
        # contract identical on every backend.
        if tag < 0:
            raise ValueError(f"message tags must be non-negative, got {tag}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of ``obj`` to rank ``dest``."""
        self._check_peer(dest, "dest")
        self._check_tag(tag)
        tag = self._map_tag(tag)
        nbytes = payload_nbytes(obj)
        seq = self._alloc_seq(dest, tag)
        self.trace.record_send(self.rank, dest, tag, seq, nbytes)
        self._transport_send(obj, nbytes, seq, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the next message from ``source`` on ``tag``."""
        self._check_peer(source, "source")
        self._check_tag(tag)
        tag = self._map_tag(tag)
        payload, nbytes, seq = self._transport_recv(source, tag)
        self.trace.record_recv(self.rank, source, tag, seq, nbytes)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Handle":
        """Non-blocking send; returns a completion handle.

        Both backends implement buffered-send semantics: the payload is
        copied (or serialized) immediately, so the operation is already
        complete when the handle is returned.
        """
        self.send(obj, dest, tag)
        return CompletedHandle()

    def irecv(self, source: int, tag: int = 0) -> "Handle":
        """Non-blocking receive; ``wait()`` yields the payload."""
        return DeferredRecvHandle(self, source, tag)

    # ------------------------------------------------------------------
    # local bookkeeping
    # ------------------------------------------------------------------
    def compute(self, nbytes: int, label: str = "") -> None:
        """Charge ``nbytes`` of local memory-bound work to the trace."""
        if nbytes < 0:
            raise ValueError(f"compute bytes must be non-negative, got {nbytes}")
        if nbytes:
            self.trace.record_compute(self.rank, nbytes, label)

    def mark(self, label: str) -> None:
        """Insert a phase marker into the trace (zero cost)."""
        self.trace.record_mark(self.rank, label)

    def next_collective_tag(self) -> int:
        """Allocate a tag block for one collective invocation.

        All ranks call collectives in the same order (the MPI contract), so
        per-communicator counters stay in sync without communication.
        """
        tag = TAG_USER_LIMIT + self._collective_counter * COLLECTIVE_TAG_BLOCK
        self._collective_counter += 1
        return tag

    # ------------------------------------------------------------------
    # composite operations
    # ------------------------------------------------------------------
    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Simultaneous exchange with ``peer`` (both directions overlap)."""
        req = self.isend(obj, peer, tag)
        incoming = self.recv(peer, tag)
        req.wait()
        return incoming

    def barrier(self, tag: int | None = None) -> None:
        """Dissemination barrier built from point-to-point messages."""
        if self.size == 1:
            return
        base = self.next_collective_tag() if tag is None else tag
        distance = 1
        round_no = 0
        while distance < self.size:
            dest = (self.rank + distance) % self.size
            src = (self.rank - distance) % self.size
            req = self.isend(0, dest, base + round_no)
            self.recv(src, base + round_no)
            req.wait()
            distance *= 2
            round_no += 1

    def bcast(self, obj: Any, root: int = 0, tag: int | None = None) -> Any:
        """Binomial-tree broadcast from ``root`` (MPICH-style MST bcast)."""
        base = self.next_collective_tag() if tag is None else tag
        rel = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if rel & mask:
                src = (self.rank - mask) % self.size
                obj = self.recv(src, base)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < self.size:
                dest = (self.rank + mask) % self.size
                self.send(obj, dest, base)
            mask >>= 1
        return obj

    def gather_to_root(self, obj: Any, root: int = 0, tag: int | None = None) -> list[Any] | None:
        """Flat gather: every rank sends to ``root``; root returns the list."""
        base = self.next_collective_tag() if tag is None else tag
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, base)
            return out
        self.send(obj, root, base)
        return None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"


class Handle(abc.ABC):
    """Completion handle for non-blocking operations (MPI request analog)."""

    @abc.abstractmethod
    def wait(self) -> Any:
        """Block until complete; returns the payload for receive handles."""

    @abc.abstractmethod
    def test(self) -> bool:
        """Non-blocking completion probe."""


class CompletedHandle(Handle):
    """Handle of an already-finished operation (buffered sends)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> bool:
        return True


class DeferredRecvHandle(Handle):
    """irecv handle: performs the matching receive at ``wait()`` time."""

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm: Communicator, source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        return self._comm._probe(self._source, self._comm._map_tag(self._tag))
