"""Abstract communicator interface (the MPI stand-in).

The collective algorithms in :mod:`repro.collectives` are written against
this interface only; any backend that provides blocking point-to-point
``send``/``recv`` with FIFO matching per (source, dest, tag) channel — the
semantics MPI guarantees — can execute them. The library ships two
implementations, selected by the ``backend=`` argument of
:func:`~repro.runtime.run_ranks`:

* :mod:`repro.runtime.thread_backend` — one thread per rank, shared
  mailboxes (fast, in-process);
* :mod:`repro.runtime.process_backend` — one OS process per rank with
  real serialized transport over pipes;
* :mod:`repro.runtime.shmem_backend` — one OS process per rank with
  zero-copy shared-memory ring transport (the fast real transport);
* :mod:`repro.runtime.socket_backend` — one OS process per rank with
  TCP framing (the transport that spans machines).

Layering
--------
:class:`Communicator` implements the *traced* operations (``send``,
``recv``, ``isend``, ``irecv``, ``sendrecv``, ``barrier``, ``bcast``, …)
once, on top of four small transport hooks that each backend provides:

``_alloc_seq``
    allocate the FIFO sequence number of a (src, dst, tag) channel;
``_transport_send`` / ``_transport_recv``
    move one payload without touching the trace;
``_probe``
    non-blocking test for a pending matching message.

Every traced operation addresses peers through two *mapping hooks* —
:meth:`Communicator._map_peer` (rank space) and
:meth:`Communicator._map_tag` (tag space) — that default to the
identity. Proxy communicators override them to relocate traffic:

* :class:`SubCommunicator` (``comm.split(color, key)`` /
  ``comm.subgroup(ranks)``) renumbers a rank subset from 0 and shifts
  its tags into a private window, while payloads flow through the
  *parent's* transport hooks — so groups work identically on every
  backend without the backends knowing they exist;
* :mod:`repro.runtime.nonblocking` buffers trace events of a background
  collective while its traffic flows through the real backend.

Both proxies compose (a split of a split, a non-blocking collective on a
sub-communicator) because each hook delegates inward.

Topology
--------
:attr:`Communicator.topology` optionally carries a
:class:`~repro.runtime.topology.Topology` (rank -> host map): derived
from the rendezvous address map on the socket backend, injected via
``run_ranks(..., topology=...)`` elsewhere, and restricted automatically
on sub-communicators. Hierarchical collectives and the algorithm
selector read it; ``None`` means "assume flat".

Byte accounting
---------------
``payload_nbytes`` defines the wire size of every supported payload type:
objects exposing a ``comm_nbytes()`` protocol method (sparse streams,
quantized blocks), NumPy arrays, scalars, and (recursively) tuples/lists.
These sizes feed both the trace (for netsim replay) and the analytic cost
model, so they must be consistent across the library.
"""

from __future__ import annotations

import abc
import threading
import time
from collections import deque
from typing import Any

import numpy as np

from ..config import STREAM_HEADER_BYTES
from .topology import check_topology_size
from .trace import Trace

__all__ = [
    "Communicator",
    "SubCommunicator",
    "Handle",
    "CompletedHandle",
    "DeferredRecvHandle",
    "WorldAbortedError",
    "RankFailedError",
    "CommTimeoutError",
    "StaleEpochError",
    "AbortState",
    "payload_nbytes",
    "copy_payload",
    "TAG_USER_LIMIT",
]

#: user code may use tags in [0, TAG_USER_LIMIT); collectives allocate blocks
#: above it so that user traffic never collides with internal traffic.
TAG_USER_LIMIT = 1 << 16

#: number of distinct tags reserved for a single collective invocation.
COLLECTIVE_TAG_BLOCK = 64

#: tag window layout of sub-communicators: every split/subgroup anywhere
#: in the nesting tree gets a *globally unique* window id ``w`` and
#: relocates its whole tag space (user tags plus its own collective
#: blocks and non-blocking shifts, all well under ``SPLIT_TAG_SPAN``) to
#: ``SPLIT_TAG_BASE + w * SPLIT_TAG_SPAN``. Ids are allocated from the
#: (parent window, call slot) pair — linearly for splits of a backend
#: communicator, via the Cantor pairing for nested splits — so windows
#: from different nesting paths can never alias, even for sequentially
#: created overlapping groups used concurrently. The wire header carries
#: tags as signed 64-bit; :data:`SPLIT_TAG_MAX` bounds the id space and
#: exhaustion raises instead of wrapping.
SPLIT_TAG_BASE = 1 << 40
SPLIT_TAG_SPAN = 1 << 32
SPLIT_TAG_MAX = 1 << 62


def _cantor_pair(a: int, b: int) -> int:
    """The Cantor pairing function: injective N x N -> N."""
    return (a + b) * (a + b + 1) // 2 + b


class WorldAbortedError(RuntimeError):
    """Raised in ranks blocked on communication after another rank failed."""


class RankFailedError(WorldAbortedError):
    """A specific peer rank died; carries the failed rank id.

    Raised from blocked operations when the backend can attribute the
    failure to a rank — a pump/doorbell observing EOF without FIN, a send
    hitting a closed channel, the parent collecting a dead process.
    Consumers that can degrade gracefully (e.g. asynchronous SGD) catch
    this and continue with the surviving ranks' contributions.
    """

    def __init__(self, rank: int, message: "str | None" = None) -> None:
        super().__init__(message or f"rank {rank} failed; world aborted")
        self.rank = int(rank)

    def __reduce__(self):
        # default exception pickling rebuilds from args alone, which would
        # feed the message string into the ``rank`` parameter
        return (type(self), (self.rank, self.args[0] if self.args else None))


class StaleEpochError(RuntimeError):
    """Traffic or an operation belongs to a superseded world epoch.

    Every elastic membership change (:func:`~repro.runtime.elastic.shrink`,
    a rendezvous rejoin) bumps the world epoch. Frames on the wire carry
    the sender's epoch; receivers drop frames from dead epochs, and
    operations attempted *through* a superseded elastic world — or a
    rejoin handshake presenting an old epoch — raise this instead of
    silently corrupting the post-shrink collectives.
    """

    def __init__(
        self,
        message: "str | None" = None,
        frame_epoch: "int | None" = None,
        current_epoch: "int | None" = None,
    ) -> None:
        if message is None:
            message = (
                f"stale world epoch {frame_epoch} "
                f"(current epoch is {current_epoch})"
            )
        super().__init__(message)
        self.frame_epoch = frame_epoch
        self.current_epoch = current_epoch

    def __reduce__(self):
        # keep the attributes across the process backend's pickle round-trip
        msg = self.args[0] if self.args else None
        return (type(self), (msg, self.frame_epoch, self.current_epoch))


class CommTimeoutError(TimeoutError):
    """A per-operation timeout (``run_ranks(..., op_timeout=)``) expired.

    Raised from a blocked send/recv whose peer made no progress within
    ``op_timeout`` seconds — a stalled (but not yet dead) peer surfaces
    here instead of hanging until the whole-run watchdog.
    """

    def __init__(
        self,
        message: str = "communication operation timed out",
        source: "int | None" = None,
        tag: "int | None" = None,
        timeout: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.tag = tag
        self.timeout = timeout

    def __reduce__(self):
        # keep the attributes across the process backend's pickle round-trip
        msg = self.args[0] if self.args else "communication operation timed out"
        return (type(self), (msg, self.source, self.tag, self.timeout))


class AbortState:
    """World-failure flag that remembers *which* rank failed first.

    A drop-in upgrade of the bare ``threading.Event`` the backends used:
    ``set()`` optionally records the failed rank (first writer wins) and
    ``error()`` builds the matching typed exception for blocked peers —
    :class:`RankFailedError` when the culprit is known,
    :class:`WorldAbortedError` otherwise.
    """

    __slots__ = ("_event", "_lock", "failed_rank", "_failed_ranks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.failed_rank: "int | None" = None
        self._failed_ranks: set[int] = set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._event.wait(timeout)

    def set(self, failed_rank: "int | None" = None) -> None:
        if failed_rank is not None:
            with self._lock:
                if self.failed_rank is None:
                    self.failed_rank = int(failed_rank)
                self._failed_ranks.add(int(failed_rank))
        self._event.set()

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Every rank this state has attributed a failure to.

        ``failed_rank`` keeps the first-writer-wins single culprit for the
        typed error; the elastic shrink barrier reads the full set so a
        multi-rank failure is attributed in one pass.
        """
        with self._lock:
            return frozenset(self._failed_ranks)

    def error(self) -> WorldAbortedError:
        """A fresh typed exception describing the recorded failure."""
        if self.failed_rank is not None:
            return RankFailedError(self.failed_rank)
        return WorldAbortedError("another rank failed; aborting")


#: how often blocked receivers poll the failure flag (seconds).
_ABORT_POLL_S = 0.05


class Mailbox:
    """FIFO queue for one message channel (shared by both backends)."""

    __slots__ = ("items", "cond")

    def __init__(self) -> None:
        self.items: deque[tuple[Any, int, int]] = deque()  # (payload, nbytes, seq)
        self.cond = threading.Condition()

    def put(self, payload: Any, nbytes: int, seq: int) -> None:
        with self.cond:
            self.items.append((payload, nbytes, seq))
            self.cond.notify()

    def get(
        self,
        aborted: "threading.Event | AbortState",
        timeout: "float | None" = None,
        source: "int | None" = None,
        tag: "int | None" = None,
    ) -> tuple[Any, int, int]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while not self.items:
                if aborted.is_set():
                    if isinstance(aborted, AbortState):
                        raise aborted.error()
                    raise WorldAbortedError("another rank failed; aborting recv")
                wait = _ABORT_POLL_S
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise CommTimeoutError(
                            f"recv from rank {source} (tag {tag}) saw no "
                            f"message within op_timeout={timeout}s",
                            source=source,
                            tag=tag,
                            timeout=timeout,
                        )
                    wait = min(wait, remaining)
                self.cond.wait(timeout=wait)
            return self.items.popleft()

    def pop_nowait(self) -> tuple[Any, int, int] | None:
        """The next message, or None — for callers that drive progress."""
        with self.cond:
            return self.items.popleft() if self.items else None

    def wait(self, timeout: float) -> None:
        """Sleep until a message may be available (or ``timeout`` passes)."""
        with self.cond:
            if not self.items:
                self.cond.wait(timeout=timeout)

    def has_items(self) -> bool:
        with self.cond:
            return bool(self.items)


class MailboxRegistry:
    """Lazily-created mailboxes keyed by channel tuple, with abort wakeup.

    The thread backend keys channels world-globally as (src, dst, tag);
    the process backend keys them per-rank as (src, tag). The creation
    (double-checked setdefault) and notify-all-on-abort logic is identical,
    so it lives here once.
    """

    __slots__ = ("_boxes", "_lock")

    def __init__(self) -> None:
        self._boxes: dict[tuple, Mailbox] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Mailbox:
        box = self._boxes.get(key)
        if box is None:
            with self._lock:
                box = self._boxes.setdefault(key, Mailbox())
        return box

    def wake_all(self) -> None:
        """Wake every blocked receiver (after the abort flag is set)."""
        with self._lock:
            boxes = list(self._boxes.values())
        for box in boxes:
            with box.cond:
                box.cond.notify_all()


def payload_nbytes(obj: Any) -> int:
    """Wire size in bytes of a message payload.

    Mirrors a compact binary serialization: numpy arrays cost their buffer
    plus a small header, structured payloads cost the sum of their parts,
    scalars cost one word. Objects may override via ``comm_nbytes()``.
    """
    if obj is None:
        return 0
    hook = getattr(obj, "comm_nbytes", None)
    if callable(hook):
        return int(hook())
    if isinstance(obj, np.ndarray):
        return STREAM_HEADER_BYTES + int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return 8 + len(obj.encode())
    if isinstance(obj, bytes):
        return 8 + len(obj)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    raise TypeError(f"cannot measure wire size of payload type {type(obj).__name__}")


def copy_payload(obj: Any) -> Any:
    """Deep-enough copy of a payload so sender and receiver never alias.

    The thread backend shares one address space; MPI semantics give the
    receiver an independent buffer, so sends copy by default. (The process
    backend gets this isolation for free from serialization.)
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes, np.integer, np.floating)):
        return obj
    copier = getattr(obj, "copy", None)
    if isinstance(obj, (tuple, list)):
        return type(obj)(copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    if callable(copier):
        return copier()
    # frozen dataclass payloads (QuantizedBlock) are treated as immutable
    return obj


class Communicator(abc.ABC):
    """A group of ``size`` ranks with point-to-point messaging.

    Concrete backends must implement the four transport hooks
    (:meth:`_alloc_seq`, :meth:`_transport_send`, :meth:`_transport_recv`,
    :meth:`_probe`) and set :attr:`trace`; every traced operation has a
    shared implementation here.
    """

    rank: int
    size: int
    #: the trace this communicator's events are recorded into. For ordinary
    #: backends this is the world trace; proxy communicators (nonblocking
    #: collectives) point it at a private buffer.
    trace: Trace
    #: optional rank -> host map (:class:`~repro.runtime.topology.Topology`);
    #: ``None`` means the world is assumed flat. Backends/launchers set it.
    topology: Any = None

    #: per-operation send/recv timeout in seconds (``None`` = block forever,
    #: bounded only by the run watchdog). Set by backends from
    #: ``run_ranks(..., op_timeout=)``; proxies delegate to what they wrap.
    op_timeout: "float | None" = None

    #: elastic world epoch stamped on every outgoing wire frame. Backend
    #: communicators start at 0; :func:`~repro.runtime.elastic.shrink` and
    #: rendezvous rejoins bump it. Receivers drop frames whose epoch is
    #: older than their own (counted in ``stale_epoch_rejected`` on the
    #: backends that have a wire).
    epoch: int = 0

    _collective_counter: int = 0
    _split_counter: int = 0
    #: window id of this communicator's tag space: 0 = the backend
    #: communicator's raw space, >= 1 for sub-communicator windows.
    _split_window_id: int = 0
    #: absolute offset of this communicator's tag space (0 for backend
    #: communicators; sub-communicators store their window start).
    _split_space_base: int = 0
    #: how many non-blocking-collective proxies wrap this communicator's
    #: traffic (0 = none). ``i_collective`` widens its tag-base shift by
    #: this depth so sibling proxies at different nesting levels land in
    #: disjoint bit fields — an equal-stride additive composition would
    #: alias (outer launch i, inner launch k) with (i', k') whenever
    #: ``i + k == i' + k'``. Sub-communicators inherit the depth of the
    #: communicator they restrict.
    _icoll_depth: int = 0

    # ------------------------------------------------------------------
    # transport hooks (backend-provided)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _alloc_seq(self, dest: int, tag: int) -> int:
        """Allocate the FIFO sequence number for the (rank, dest, tag) channel."""

    @abc.abstractmethod
    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        """Move one payload to ``dest`` without recording trace events."""

    @abc.abstractmethod
    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        """Blocking matching receive; returns ``(payload, nbytes, seq)``."""

    @abc.abstractmethod
    def _probe(self, source: int, tag: int) -> bool:
        """Non-blocking test: is a matching message already deliverable?"""

    def _map_tag(self, tag: int) -> int:
        """Hook for proxy communicators that relocate traffic in tag space."""
        return tag

    def _map_peer(self, peer: int) -> int:
        """Hook for proxy communicators that renumber ranks (sub-comms)."""
        return peer

    def _abort_state(self) -> "AbortState | None":
        """The world's :class:`AbortState`, if the backend exposes one.

        Backends override this; proxies delegate inward, so non-blocking
        probes anywhere in a proxy stack can observe world failure.
        ``None`` means the backend has no abort flag (nothing to observe).
        """
        return None

    @property
    def world_rank(self) -> int:
        """The world-level rank trace events are attributed to.

        Equal to :attr:`rank` on backend communicators; proxies that
        renumber ranks (sub-communicators) delegate to their parent so
        byte accounting always lands on the real rank.
        """
        return self.rank

    # ------------------------------------------------------------------
    # traced point-to-point operations
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, role: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{role} rank {peer} out of range [0, {self.size})")
        if peer == self.rank:
            if role == "dest":
                raise ValueError("self-sends are not supported; use local state")
            raise ValueError("self-receives are not supported")

    def _check_tag(self, tag: int) -> None:
        # negative tags are reserved for transport-internal framing (e.g. the
        # process backend's FIN marker); rejecting them here keeps the
        # contract identical on every backend.
        if tag < 0:
            raise ValueError(f"message tags must be non-negative, got {tag}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of ``obj`` to rank ``dest``."""
        self._check_peer(dest, "dest")
        self._check_tag(tag)
        tag = self._map_tag(tag)
        dest = self._map_peer(dest)
        nbytes = payload_nbytes(obj)
        seq = self._alloc_seq(dest, tag)
        self.trace.record_send(self.world_rank, dest, tag, seq, nbytes)
        self._transport_send(obj, nbytes, seq, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the next message from ``source`` on ``tag``."""
        self._check_peer(source, "source")
        self._check_tag(tag)
        tag = self._map_tag(tag)
        source = self._map_peer(source)
        payload, nbytes, seq = self._transport_recv(source, tag)
        self.trace.record_recv(self.world_rank, source, tag, seq, nbytes)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Handle":
        """Non-blocking send; returns a completion handle.

        Both backends implement buffered-send semantics: the payload is
        copied (or serialized) immediately, so the operation is already
        complete when the handle is returned.
        """
        self.send(obj, dest, tag)
        return CompletedHandle()

    def irecv(self, source: int, tag: int = 0) -> "Handle":
        """Non-blocking receive; ``wait()`` yields the payload."""
        return DeferredRecvHandle(self, source, tag)

    # ------------------------------------------------------------------
    # local bookkeeping
    # ------------------------------------------------------------------
    def compute(self, nbytes: int, label: str = "") -> None:
        """Charge ``nbytes`` of local memory-bound work to the trace."""
        if nbytes < 0:
            raise ValueError(f"compute bytes must be non-negative, got {nbytes}")
        if nbytes:
            self.trace.record_compute(self.world_rank, nbytes, label)

    def mark(self, label: str) -> None:
        """Insert a phase marker into the trace (zero cost)."""
        self.trace.record_mark(self.world_rank, label)

    def next_collective_tag(self) -> int:
        """Allocate a tag block for one collective invocation.

        All ranks call collectives in the same order (the MPI contract), so
        per-communicator counters stay in sync without communication.
        """
        tag = TAG_USER_LIMIT + self._collective_counter * COLLECTIVE_TAG_BLOCK
        self._collective_counter += 1
        return tag

    # ------------------------------------------------------------------
    # composite operations
    # ------------------------------------------------------------------
    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Simultaneous exchange with ``peer`` (both directions overlap)."""
        req = self.isend(obj, peer, tag)
        incoming = self.recv(peer, tag)
        req.wait()
        return incoming

    def barrier(self, tag: int | None = None) -> None:
        """Dissemination barrier built from point-to-point messages."""
        if self.size == 1:
            return
        base = self.next_collective_tag() if tag is None else tag
        distance = 1
        round_no = 0
        while distance < self.size:
            dest = (self.rank + distance) % self.size
            src = (self.rank - distance) % self.size
            req = self.isend(0, dest, base + round_no)
            self.recv(src, base + round_no)
            req.wait()
            distance *= 2
            round_no += 1

    def bcast(self, obj: Any, root: int = 0, tag: int | None = None) -> Any:
        """Binomial-tree broadcast from ``root`` (MPICH-style MST bcast)."""
        base = self.next_collective_tag() if tag is None else tag
        rel = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if rel & mask:
                src = (self.rank - mask) % self.size
                obj = self.recv(src, base)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < self.size:
                dest = (self.rank + mask) % self.size
                self.send(obj, dest, base)
            mask >>= 1
        return obj

    def gather_to_root(self, obj: Any, root: int = 0, tag: int | None = None) -> list[Any] | None:
        """Flat gather: every rank sends to ``root``; root returns the list."""
        base = self.next_collective_tag() if tag is None else tag
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, base)
            return out
        self.send(obj, root, base)
        return None

    # ------------------------------------------------------------------
    # sub-communicators
    # ------------------------------------------------------------------
    def _next_split_base(self) -> tuple[int, int]:
        """Allocate the tag window of one split/subgroup call.

        Every rank makes split calls in the same order (the collective
        contract), so per-communicator counters stay in sync without
        communication — groups created in the same call slot share a
        window, which is safe because their rank sets are disjoint.
        Window ids are globally injective over the (parent window, slot)
        tree: splits of a backend communicator take the odd ids linearly
        (so iterated splitting never runs out), nested splits take even
        ids through the Cantor pairing. Returns ``(window_id, tag_base
        relative to this communicator's tag space)``.
        """
        slot = self._split_counter
        self._split_counter += 1
        if self._split_window_id == 0:
            window_id = 2 * slot + 1
        else:
            window_id = 2 * (_cantor_pair(self._split_window_id, slot) + 1)
        abs_base = SPLIT_TAG_BASE + window_id * SPLIT_TAG_SPAN
        if abs_base + SPLIT_TAG_SPAN > SPLIT_TAG_MAX:
            raise RuntimeError(
                "sub-communicator tag space exhausted: too many nested "
                f"splits (window id {window_id})"
            )
        return window_id, abs_base - self._split_space_base

    def subgroup(self, ranks: "list[int] | tuple[int, ...]") -> "SubCommunicator | None":
        """Deterministic group creation — collective, but communication-free.

        Every rank of this communicator must call ``subgroup`` in the same
        program order; ranks creating *disjoint* groups may pass different
        lists in the same call slot (the host-group pattern of hierarchical
        collectives), ranks outside the group they pass get ``None`` back.
        Use :meth:`split` when memberships must be negotiated at runtime.

        ``ranks`` orders the new communicator: ``ranks[i]`` becomes sub-rank
        ``i``. Returns the member's :class:`SubCommunicator`, or ``None``.
        """
        members = tuple(int(r) for r in ranks)
        if not members:
            raise ValueError("a sub-communicator needs at least one rank")
        if len(set(members)) != len(members):
            raise ValueError(f"duplicate ranks in subgroup: {members}")
        for r in members:
            if not 0 <= r < self.size:
                raise ValueError(f"rank {r} out of range [0, {self.size})")
        window_id, tag_base = self._next_split_base()
        if self.rank not in members:
            return None
        return SubCommunicator(self, members, tag_base, window_id)

    def split(self, color: Any, key: int = 0) -> "SubCommunicator | None":
        """MPI_Comm_split: partition the ranks by ``color``, order by ``key``.

        Collective over this communicator (one gather + one broadcast to
        exchange the colors). Ranks with equal ``color`` form one
        sub-communicator whose ranks are ordered by ``(key, parent rank)``;
        ``color=None`` opts out (the ``MPI_UNDEFINED`` analog) and returns
        ``None``. Works identically on every backend — the group remaps
        ranks and tags onto the parent's transport hooks.
        """
        if not isinstance(key, int):
            raise TypeError(f"split key must be an int, got {type(key).__name__}")
        # validate the color *before* any counter bump or communication: an
        # invalid color (e.g. a numpy array, whose == breaks the membership
        # comparison) must not desynchronize the collective/split tag
        # windows of the surviving ranks
        if color is not None:
            try:
                hash(color)
            except TypeError:
                raise TypeError(
                    "split color must be hashable (colors must compare "
                    f"atomically across ranks), got {type(color).__name__}"
                ) from None
        base = self.next_collective_tag()
        everyone = self.gather_to_root((color, key), root=0, tag=base)
        everyone = self.bcast(everyone, root=0, tag=base + 1)
        if color is None:
            self._next_split_base()  # keep split counters aligned world-wide
            return None
        members = sorted(
            (r for r, (c, _k) in enumerate(everyone) if c == color),
            key=lambda r: (everyone[r][1], r),
        )
        return self.subgroup(members)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def shrink(self, dead: Any = (), timeout: "float | None" = None):
        """Membership barrier after a rank failure: agree on the survivors
        and return the working world of the next epoch.

        Convenience front-end to :func:`repro.runtime.elastic.shrink`;
        collective over the survivors. See :mod:`repro.runtime.elastic`
        for the protocol and its caveats.
        """
        from .elastic import shrink as _shrink  # local: avoid import cycle

        return _shrink(self, dead=dead, timeout=timeout)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"


class SubCommunicator(Communicator):
    """A rank subset of a parent communicator, renumbered from zero.

    Created by :meth:`Communicator.split` / :meth:`Communicator.subgroup`.
    All traffic flows through the parent's transport hooks with ranks
    mapped back to parent numbering and tags shifted into the group's
    private window, so the construction needs nothing from the backend
    and nests arbitrarily (splits of splits, non-blocking collectives on
    splits). Trace events keep world-rank attribution; the parent's
    topology (if any) is restricted to the members automatically.
    """

    def __init__(
        self,
        parent: Communicator,
        members: tuple[int, ...],
        tag_base: int,
        window_id: int,
    ) -> None:
        self.parent = parent
        self._members = members
        self.rank = members.index(parent.rank)
        self.size = len(members)
        self.trace = parent.trace
        self._tag_base = tag_base
        self._collective_counter = 0
        self._split_counter = 0
        self._split_window_id = window_id
        # absolute window start: what this comm's nested splits offset from
        self._split_space_base = parent._split_space_base + tag_base
        # a subgroup of a buffered proxy is as deeply nested as the proxy
        self._icoll_depth = parent._icoll_depth
        if parent.topology is not None:
            # the same size check every launcher path applies: a topology
            # that does not describe the parent world cannot be restricted
            check_topology_size(parent.topology, parent.size)
            self.topology = parent.topology.restrict(members)
        else:
            self.topology = None

    @property
    def world_rank(self) -> int:
        return self.parent.world_rank

    @property
    def op_timeout(self) -> "float | None":
        return self.parent.op_timeout

    @property
    def epoch(self) -> int:
        # frames sent through a subgroup carry the backend world's epoch
        return self.parent.epoch

    @property
    def parent_ranks(self) -> tuple[int, ...]:
        """Parent-rank of every sub-rank (``parent_ranks[sub] -> parent``)."""
        return self._members

    # -- mapping hooks: compose with whatever the parent maps ----------
    def _map_peer(self, peer: int) -> int:
        return self.parent._map_peer(self._members[peer])

    def _map_tag(self, tag: int) -> int:
        return self.parent._map_tag(self._tag_base + tag)

    # -- transport hooks: pure delegation (already mapped) -------------
    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.parent._alloc_seq(dest, tag)

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        self.parent._transport_send(obj, nbytes, seq, dest, tag)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        return self.parent._transport_recv(source, tag)

    def _probe(self, source: int, tag: int) -> bool:
        return self.parent._probe(source, tag)

    def _abort_state(self) -> "AbortState | None":
        return self.parent._abort_state()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SubCommunicator(rank={self.rank}, size={self.size}, "
            f"parent_ranks={list(self._members)})"
        )


class Handle(abc.ABC):
    """Completion handle for non-blocking operations (MPI request analog)."""

    @abc.abstractmethod
    def wait(self) -> Any:
        """Block until complete; returns the payload for receive handles."""

    @abc.abstractmethod
    def test(self) -> bool:
        """Non-blocking completion probe."""


class CompletedHandle(Handle):
    """Handle of an already-finished operation (buffered sends)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> bool:
        return True


class DeferredRecvHandle(Handle):
    """irecv handle: performs the matching receive at ``wait()`` time."""

    __slots__ = ("_comm", "_source", "_tag", "_done", "_value")

    def __init__(self, comm: Communicator, source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            # a blocking recv observes world abort through the transport; an
            # up-front check just surfaces it without touching the mailbox
            # when the world is already gone
            state = self._comm._abort_state()
            if state is not None and state.is_set() and not self.test_quiet():
                raise state.error()
            self._value = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._value

    def test_quiet(self) -> bool:
        """Completion probe that never raises (abort looks like 'not yet')."""
        if self._done:
            return True
        return self._comm._probe(
            self._comm._map_peer(self._source), self._comm._map_tag(self._tag)
        )

    def test(self) -> bool:
        if self.test_quiet():
            return True
        # the matching message can never arrive once the world aborted:
        # raise like a blocking recv would instead of returning False forever
        state = self._comm._abort_state()
        if state is not None and state.is_set():
            raise state.error()
        return False
