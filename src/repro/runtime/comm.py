"""Abstract communicator interface (the MPI stand-in).

The collective algorithms in :mod:`repro.collectives` are written against
this interface only; any backend that provides blocking point-to-point
``send``/``recv`` with FIFO matching per (source, dest, tag) channel — the
semantics MPI guarantees — can execute them. The library ships a
thread-backed implementation (:mod:`repro.runtime.thread_backend`).

Byte accounting
---------------
``payload_nbytes`` defines the wire size of every supported payload type:
objects exposing a ``comm_nbytes()`` protocol method (sparse streams,
quantized blocks), NumPy arrays, scalars, and (recursively) tuples/lists.
These sizes feed both the trace (for netsim replay) and the analytic cost
model, so they must be consistent across the library.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from ..config import STREAM_HEADER_BYTES

__all__ = ["Communicator", "payload_nbytes", "copy_payload", "TAG_USER_LIMIT"]

#: user code may use tags in [0, TAG_USER_LIMIT); collectives allocate blocks
#: above it so that user traffic never collides with internal traffic.
TAG_USER_LIMIT = 1 << 16

#: number of distinct tags reserved for a single collective invocation.
COLLECTIVE_TAG_BLOCK = 64


def payload_nbytes(obj: Any) -> int:
    """Wire size in bytes of a message payload.

    Mirrors a compact binary serialization: numpy arrays cost their buffer
    plus a small header, structured payloads cost the sum of their parts,
    scalars cost one word. Objects may override via ``comm_nbytes()``.
    """
    if obj is None:
        return 0
    hook = getattr(obj, "comm_nbytes", None)
    if callable(hook):
        return int(hook())
    if isinstance(obj, np.ndarray):
        return STREAM_HEADER_BYTES + int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return 8 + len(obj.encode())
    if isinstance(obj, bytes):
        return 8 + len(obj)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    raise TypeError(f"cannot measure wire size of payload type {type(obj).__name__}")


def copy_payload(obj: Any) -> Any:
    """Deep-enough copy of a payload so sender and receiver never alias.

    The thread backend shares one address space; MPI semantics give the
    receiver an independent buffer, so sends copy by default.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes, np.integer, np.floating)):
        return obj
    copier = getattr(obj, "copy", None)
    if isinstance(obj, (tuple, list)):
        return type(obj)(copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    if callable(copier):
        return copier()
    # frozen dataclass payloads (QuantizedBlock) are treated as immutable
    return obj


class Communicator(abc.ABC):
    """A group of ``size`` ranks with point-to-point messaging.

    Concrete backends must implement :meth:`send` and :meth:`recv`; the
    remaining operations have default implementations in terms of those.
    """

    rank: int
    size: int

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of ``obj`` to rank ``dest``."""

    @abc.abstractmethod
    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the next message from ``source`` on ``tag``."""

    @abc.abstractmethod
    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Handle":
        """Non-blocking send; returns a completion handle."""

    @abc.abstractmethod
    def irecv(self, source: int, tag: int = 0) -> "Handle":
        """Non-blocking receive; ``wait()`` yields the payload."""

    @abc.abstractmethod
    def compute(self, nbytes: int, label: str = "") -> None:
        """Charge ``nbytes`` of local memory-bound work to the trace."""

    @abc.abstractmethod
    def next_collective_tag(self) -> int:
        """Allocate a tag block for one collective invocation.

        All ranks call collectives in the same order (the MPI contract), so
        per-communicator counters stay in sync without communication.
        """

    # ------------------------------------------------------------------
    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Simultaneous exchange with ``peer`` (both directions overlap)."""
        req = self.isend(obj, peer, tag)
        incoming = self.recv(peer, tag)
        req.wait()
        return incoming

    def barrier(self, tag: int | None = None) -> None:
        """Dissemination barrier built from point-to-point messages."""
        if self.size == 1:
            return
        base = self.next_collective_tag() if tag is None else tag
        distance = 1
        round_no = 0
        while distance < self.size:
            dest = (self.rank + distance) % self.size
            src = (self.rank - distance) % self.size
            req = self.isend(0, dest, base + round_no)
            self.recv(src, base + round_no)
            req.wait()
            distance *= 2
            round_no += 1

    def bcast(self, obj: Any, root: int = 0, tag: int | None = None) -> Any:
        """Binomial-tree broadcast from ``root`` (MPICH-style MST bcast)."""
        base = self.next_collective_tag() if tag is None else tag
        rel = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if rel & mask:
                src = (self.rank - mask) % self.size
                obj = self.recv(src, base)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < self.size:
                dest = (self.rank + mask) % self.size
                self.send(obj, dest, base)
            mask >>= 1
        return obj

    def gather_to_root(self, obj: Any, root: int = 0, tag: int | None = None) -> list[Any] | None:
        """Flat gather: every rank sends to ``root``; root returns the list."""
        base = self.next_collective_tag() if tag is None else tag
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, base)
            return out
        self.send(obj, root, base)
        return None

    def mark(self, label: str) -> None:
        """Insert a phase marker into the trace (zero cost)."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"


class Handle(abc.ABC):
    """Completion handle for non-blocking operations (MPI request analog)."""

    @abc.abstractmethod
    def wait(self) -> Any:
        """Block until complete; returns the payload for receive handles."""

    @abc.abstractmethod
    def test(self) -> bool:
        """Non-blocking completion probe."""
