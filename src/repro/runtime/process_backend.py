"""Process-backed communicator: one OS process per rank, pipes as the wire.

This is the library's *real* transport: every rank runs in its own
``multiprocessing`` process with a private address space, and every message
crosses a process boundary as serialized bytes (see
:mod:`repro.runtime.wire` — sparse streams travel with the §5.1 header
word, everything else as pickle). Nothing is shared, so the backend
faithfully exercises what the thread backend can only emulate: payload
serialization, independent buffers, and true parallel rank execution.

Architecture (per run of ``P`` ranks)
-------------------------------------
* the parent creates a full mesh of ``P * (P-1)`` unidirectional pipes plus
  one result pipe per rank, then forks one worker process per rank;
* inside each worker, one daemon *receiver thread per peer* drains that
  peer's pipe into per-(source, tag) FIFO mailboxes, so a blocking ``send``
  can never deadlock against an unread pipe buffer: the remote receiver
  thread always drains, independent of what the remote rank program is
  doing (this stands in for MPI's progress engine);
* sequence numbers are allocated sender-side per (dest, tag) channel and
  travel in the frame header, so FIFO matching needs no shared state;
* each worker records its own local :class:`~repro.runtime.trace.Trace`
  and ships its event list back with the result; the parent rebases the
  sequence numbers onto the run's trace and merges.

Failure handling: a failing rank reports its exception over the result
pipe and exits; peers observe EOF on its pipes, flag the world aborted and
unwind with :class:`WorldAbortedError`; the parent terminates stragglers
and re-raises the lowest-ranked failure as :class:`RankError`, exactly
like the thread backend.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Callable

from .backend import Backend, ParallelResult, RankError, register_backend
from .comm import (
    AbortState,
    Communicator,
    Mailbox,
    MailboxRegistry,
    RankFailedError,
    WorldAbortedError,
)
from .trace import RECV, SEND, Trace, TraceEvent
from .wire import decode_message, encode_message

__all__ = ["MeshComm", "ProcessBackend", "ProcessComm", "ProcessWorld", "PumpedComm"]

#: preferred start method: fork keeps closures usable as rank functions and
#: is cheap; on platforms without it we fall back to spawn (rank functions
#: must then be picklable, i.e. module-level).
_START_METHOD = "fork" if "fork" in mp.get_all_start_methods() else "spawn"

#: after the first failure report, how long to keep collecting results from
#: the other ranks before terminating them (seconds). Generous enough for
#: survivors of a killed rank to run an elastic shrink barrier and finish
#: real post-shrink work before the parent reaps them.
_ERROR_GRACE_S = 5.0

#: frame tag of the graceful-shutdown marker a finishing rank sends on every
#: outbound pipe. Receivers treat EOF *without* a preceding FIN as peer
#: death (abort); EOF after FIN is a normal wind-down.
_FIN_TAG = -1


class MeshComm(Communicator):
    """Mailbox-buffered mesh communicator base of the process-family backends.

    Incoming traffic lands in per-(source, tag) FIFO mailboxes; sequence
    numbers are allocated sender-side against the worker-local trace
    (only this rank sends on a (rank, dest, tag) channel, so local
    counters are the truth). Who *fills* the mailboxes differs per
    transport: pipe transports need pump threads (:class:`PumpedComm`),
    the shared-memory ring transport drives an inline progress engine.
    """

    def _init_mesh(
        self, rank: int, size: int, trace: Trace, op_timeout: float | None = None
    ) -> None:
        self.rank = rank
        self.size = size
        self.trace = trace
        self.op_timeout = op_timeout
        self._collective_counter = 0
        self._mailboxes = MailboxRegistry()
        self.aborted = AbortState()
        #: elastic world version stamped on every outgoing frame; bumped by
        #: :func:`~repro.runtime.elastic.shrink` via :meth:`_elastic_reset`.
        self.epoch = 0
        #: count of inbound frames dropped because their epoch was stale.
        self.stale_epoch_rejected = 0
        self._stale_lock = threading.Lock()
        #: ranks a membership change already declared dead: late transport
        #: failures from them (pump EOF, broken sends) must not re-abort
        #: the new, smaller world.
        self.dead_ranks: set[int] = set()

    def _mailbox(self, src: int, tag: int) -> Mailbox:
        return self._mailboxes.get((src, tag))

    def _abort(self, failed_rank: int | None = None) -> None:
        if failed_rank is not None and failed_rank in self.dead_ranks:
            return  # already accounted for by a shrink; the world lives on
        self.aborted.set(failed_rank)
        self._mailboxes.wake_all()

    def _count_stale_frame(self) -> None:
        with self._stale_lock:
            self.stale_epoch_rejected += 1

    def _elastic_reset(self, dead_ranks, epoch: int) -> None:
        """Commit a membership change: record the dead, arm a fresh abort
        flag and move this rank's wire traffic to ``epoch``."""
        self.dead_ranks.update(int(r) for r in dead_ranks)
        self.aborted = AbortState()
        self.epoch = int(epoch)

    def _elastic_note_dead(self, ranks) -> None:
        """Attribute mid-barrier failures and clear the abort flag once
        every recorded culprit is accounted for (unattributed aborts are
        left standing — they are not a membership event)."""
        self.dead_ranks.update(int(r) for r in ranks)
        state = self.aborted
        if state.is_set() and state.failed_ranks and state.failed_ranks <= self.dead_ranks:
            self.aborted = AbortState()

    def _elastic_regrow(self, rank: int, epoch: int) -> None:
        """Commit a rejoin: the rank is alive again in the new epoch."""
        self.dead_ranks.discard(int(rank))
        self.epoch = int(epoch)

    # ------------------------------------------------------------------
    # transport hooks (send stays subclass-specific)
    # ------------------------------------------------------------------
    def _alloc_seq(self, dest: int, tag: int) -> int:
        return self.trace.next_seq(self.rank, dest, tag)

    def _transport_recv(self, source: int, tag: int) -> tuple[Any, int, int]:
        return self._mailbox(source, tag).get(
            self.aborted, timeout=self.op_timeout, source=source, tag=tag
        )

    def _probe(self, source: int, tag: int) -> bool:
        return self._mailbox(source, tag).has_items()

    def _abort_state(self) -> AbortState:
        return self.aborted


class PumpedComm(MeshComm):
    """Mesh communicator whose mailboxes are fed by receiver threads.

    One daemon *pump* thread per peer drains that peer's inbound channel
    (the MPI progress-engine stand-in), so a blocking peer send can never
    deadlock against an unread transport buffer. Subclasses (the pipe
    transport here, the TCP transport in
    :mod:`~repro.runtime.socket_backend`) provide the channel type, the
    pump body and the outbound send.
    """

    def _init_mesh(
        self, rank: int, size: int, trace: Trace, op_timeout: float | None = None
    ) -> None:
        super()._init_mesh(rank, size, trace, op_timeout)
        self._receivers: list[threading.Thread] = []

    def _start_pump(self, src: int, channel: Any) -> None:
        t = threading.Thread(
            target=self._pump, args=(src, channel), name=f"recv-{src}->{self.rank}", daemon=True
        )
        t.start()
        self._receivers.append(t)

    def _pump(self, src: int, channel: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ProcessComm(PumpedComm):
    """Per-rank communicator of one worker process.

    ``out_conns[d]`` / ``in_conns[s]`` are this rank's pipe ends to and from
    each peer (``None`` at its own slot).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        out_conns: list[Connection | None],
        in_conns: list[Connection | None],
        trace: Trace,
        op_timeout: float | None = None,
    ) -> None:
        self._init_mesh(rank, size, trace, op_timeout)
        self._out_conns = out_conns
        self._out_locks = [threading.Lock() if c is not None else None for c in out_conns]
        for src, conn in enumerate(in_conns):
            if conn is not None:
                self._start_pump(src, conn)

    # ------------------------------------------------------------------
    # inbound progress engine
    # ------------------------------------------------------------------
    def _pump(self, src: int, conn: Connection) -> None:
        """Receiver thread: drain one peer's pipe into the mailboxes.

        Frames are read with ``recv_bytes_into`` into one reusable buffer
        (grown geometrically on demand), so steady-state receive performs
        no per-message bytes allocation — the only fresh buffers are the
        decoded arrays themselves.
        """
        buf = bytearray(1 << 16)
        while True:
            try:
                try:
                    n = conn.recv_bytes_into(buf)
                    frame: Any = memoryview(buf)[:n]
                except mp.BufferTooShort as exc:
                    # the oversized message arrives complete in the exception;
                    # grow the scratch buffer so the next one fits in place
                    frame = exc.args[0]
                    buf = bytearray(max(len(frame), 2 * len(buf)))
            except (EOFError, OSError):
                # EOF with no FIN first: the peer died mid-run. Wake anyone
                # blocked on its (or anyone's) traffic so the rank unwinds
                # with a RankFailedError naming the dead peer.
                self._abort(failed_rank=src)
                return
            try:
                # copy=True (default): the scratch buffer is reused, so the
                # decoded arrays must own their memory
                tag, seq, nbytes, epoch, payload = decode_message(frame)
            except Exception:
                # undecodable frame (e.g. a payload whose pickle references a
                # class this process cannot import): fail fast instead of
                # silently stopping the progress engine and hanging the run
                self._abort()
                return
            if epoch < self.epoch:
                # a frame from a dead world epoch (in flight across a shrink
                # or sent by a peer that has not committed the shrink yet):
                # dropping it here is what keeps post-shrink collectives from
                # matching pre-shrink traffic
                self._count_stale_frame()
                continue
            if tag == _FIN_TAG:
                return  # peer finished cleanly; its channels are drained
            self._mailbox(src, tag).put(payload, nbytes, seq)

    def shutdown(self) -> None:
        """Graceful wind-down: tell every peer this rank is done sending."""
        fin = encode_message(_FIN_TAG, -1, 0, None, self.epoch)
        for dest, conn in enumerate(self._out_conns):
            if conn is None:
                continue
            try:
                with self._out_locks[dest]:
                    conn.send_bytes(fin)
            except (BrokenPipeError, OSError):  # peer already gone
                pass

    def _transport_send(self, obj: Any, nbytes: int, seq: int, dest: int, tag: int) -> None:
        blob = encode_message(tag, seq, nbytes, obj, self.epoch)
        conn = self._out_conns[dest]
        lock = self._out_locks[dest]
        try:
            with lock:
                conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self._abort(failed_rank=dest)
            raise RankFailedError(dest, f"rank {dest} is gone; send failed") from exc


class ProcessWorld:
    """Parent-side record of one process-backend run (for ParallelResult)."""

    def __init__(self, size: int, start_method: str, pids: list[int]) -> None:
        self.size = size
        self.start_method = start_method
        self.pids = pids

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessWorld(size={self.size}, start_method={self.start_method!r})"


def _child_main(
    rank: int,
    size: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    out_conns: list[Connection | None],
    in_conns: list[Connection | None],
    result_conn: Connection,
    close_list: list[Connection],
    topology: Any = None,
    op_timeout: float | None = None,
) -> None:
    """Entry point of one rank process."""
    # under fork every pipe end of every rank was inherited; drop the ones
    # that are not ours so peer death propagates as EOF instead of hanging.
    for conn in close_list:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    trace = Trace(size)
    comm = ProcessComm(rank, size, out_conns, in_conns, trace, op_timeout)
    comm.topology = topology
    try:
        result = fn(comm, *args, **kwargs)
        comm.shutdown()
        payload = ("ok", rank, result, trace.events(rank))
    except WorldAbortedError:
        payload = ("aborted", rank, None, trace.events(rank))
    except BaseException as exc:  # noqa: BLE001 - must propagate rank errors
        payload = ("error", rank, _portable_exception(exc), trace.events(rank))
    try:
        result_conn.send(payload)
    except Exception as exc:  # unpicklable result/exception
        result_conn.send(("error", rank, _portable_exception(exc), None))
    finally:
        result_conn.close()


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        return pickle.loads(pickle.dumps(exc))
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _check_spawn_picklable(fn: Callable[..., Any], args: tuple, kwargs: dict, what: str) -> None:
    """Fail fast with a clear message instead of a mid-launch pickle
    traceback: spawn re-imports the child, so closures cannot travel."""
    if _START_METHOD != "spawn":
        return
    try:
        pickle.dumps((fn, args, kwargs))
    except Exception as exc:
        raise ValueError(
            f"the {what} backend on a spawn-only platform requires a "
            "picklable (module-level) rank function and arguments; "
            f"got {fn!r} ({exc})"
        ) from exc


def _finalize_run(
    outcome: tuple[list[Any], list[list[TraceEvent]], list[tuple[int, BaseException]], list[int]],
    trace: Trace | None,
    nranks: int,
    world: Any,
) -> ParallelResult:
    """Merge worker traces and raise/return — shared tail of every
    process-family backend's ``run``.

    Merging happens before raising: on failure a caller-supplied trace
    keeps the partial events of surviving ranks, matching the thread
    backend.
    """
    results, per_rank_events, errors, aborted_ranks = outcome
    run_trace = trace if trace is not None else Trace(nranks)
    _merge_events(run_trace, per_rank_events)
    if errors:
        rank, original = min(errors, key=lambda e: e[0])
        err = RankError(rank, original)
        err.partial_results = results
        raise err from original
    if aborted_ranks:
        # a rank unwound with WorldAbortedError but nobody reported the
        # root failure (e.g. an undecodable frame killed a pump thread);
        # surfacing it beats silently returning None results
        rank = min(aborted_ranks)
        original = WorldAbortedError(
            f"rank {rank} aborted (peer connection or frame failure "
            "without a reported rank error)"
        )
        err = RankError(rank, original)
        err.partial_results = results
        raise err from original
    return ParallelResult(results=results, trace=run_trace, world=world)


class ProcessBackend(Backend):
    """Multiprocess backend: one OS process per rank, serialized transport."""

    name = "process"

    def run(
        self,
        fn: Callable[..., Any],
        nranks: int,
        *args: Any,
        copy_payloads: bool = True,  # serialization always isolates; accepted for API parity
        trace: Trace | None = None,
        timeout: float | None = 300.0,
        op_timeout: float | None = None,
        topology: Any = None,
        **kwargs: Any,
    ) -> ParallelResult:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        ctx = mp.get_context(_START_METHOD)
        _check_spawn_picklable(fn, args, kwargs, self.name)

        # full mesh of unidirectional pipes: channel[src][dst]. Setup and
        # launch are guarded so a partial failure (e.g. EMFILE on a large
        # mesh — the parent briefly holds ~2*P^2 descriptors) cleans up every
        # pipe and already-started rank process instead of leaking them.
        out_conns: list[list[Connection | None]] = [[None] * nranks for _ in range(nranks)]
        in_conns: list[list[Connection | None]] = [[None] * nranks for _ in range(nranks)]
        all_mesh: list[tuple[int, Connection, Connection]] = []  # (src, read_end, write_end)
        result_pipes: list[tuple[Connection, Connection]] = []
        procs: list[mp.Process] = []
        try:
            for src in range(nranks):
                for dst in range(nranks):
                    if src == dst:
                        continue
                    r, w = ctx.Pipe(duplex=False)
                    out_conns[src][dst] = w
                    in_conns[dst][src] = r
                    all_mesh.append((src, r, w))
            result_pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]

            for rank in range(nranks):
                own = {id(c) for c in out_conns[rank] + in_conns[rank] if c is not None}
                own.add(id(result_pipes[rank][1]))
                close_list: list[Connection] = []
                if _START_METHOD == "fork":
                    # spawn children only inherit the conns we pass; fork children
                    # inherit everything and must close foreign ends explicitly.
                    for _, r, w in all_mesh:
                        close_list += [c for c in (r, w) if id(c) not in own]
                    close_list += [
                        c for rr, ws in result_pipes for c in (rr, ws) if id(c) not in own
                    ]
                p = ctx.Process(
                    target=_child_main,
                    args=(
                        rank,
                        nranks,
                        fn,
                        args,
                        kwargs,
                        out_conns[rank],
                        in_conns[rank],
                        result_pipes[rank][1],
                        close_list,
                        topology,
                        op_timeout,
                    ),
                    name=f"rank-{rank}",
                    daemon=True,
                )
                p.start()
                procs.append(p)
        except BaseException:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for _, r, w in all_mesh:
                for c in (r, w):
                    c.close()
            for r, w in result_pipes:
                for c in (r, w):
                    c.close()
            raise

        # parent keeps mesh *read* ends open so a late buffered send to an
        # already-finished rank never hits EPIPE, but closes *write* ends so
        # receivers see EOF once the one writing rank dies.
        for _, _r, w in all_mesh:
            w.close()
        for _, ws in result_pipes:
            ws.close()

        try:
            outcome = self._collect(
                procs, [r for r, _ in result_pipes], nranks, timeout, in_conns
            )
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for _, r, _w in all_mesh:
                r.close()
            for r, _ in result_pipes:
                r.close()

        world = ProcessWorld(nranks, _START_METHOD, [p.pid for p in procs])
        return _finalize_run(outcome, trace, nranks, world)

    # ------------------------------------------------------------------
    def _collect(
        self,
        procs: list[mp.Process],
        result_conns: list[Connection],
        nranks: int,
        timeout: float | None,
        in_conns: list[list[Connection | None]],
    ) -> tuple[list[Any], list[list[TraceEvent]], list[tuple[int, BaseException]], list[int]]:
        deadline = None if timeout is None else time.monotonic() + timeout
        error_deadline: float | None = None
        results: list[Any] = [None] * nranks
        events: list[list[TraceEvent]] = [[] for _ in range(nranks)]
        errors: list[tuple[int, BaseException]] = []
        aborted_ranks: list[int] = []
        pending = dict(enumerate(result_conns))
        # once a rank has finished, nothing reads its inbound pipes anymore;
        # the parent (which kept the read ends) drains them so a peer's late
        # buffered send larger than the pipe capacity can never block forever
        drainable: list[Connection] = []

        while pending:
            now = time.monotonic()
            wait_for = None
            if deadline is not None:
                wait_for = deadline - now
            if error_deadline is not None:
                wait_for = min(error_deadline - now, wait_for) if wait_for is not None else error_deadline - now
            if wait_for is not None and wait_for <= 0:
                if errors or error_deadline is not None:
                    break  # grace period after a failure ran out
                raise TimeoutError(
                    f"parallel run did not finish within {timeout}s "
                    f"(ranks {sorted(pending)} still pending; likely deadlock)"
                )
            ready = conn_wait(list(pending.values()) + drainable, timeout=wait_for)
            for conn in ready:
                if conn not in pending.values():
                    if not _drain_raw(conn):
                        drainable.remove(conn)
                    continue
                rank = next(r for r, c in pending.items() if c is conn)
                try:
                    status, _r, value, rank_events = conn.recv()
                except (EOFError, OSError):
                    procs[rank].join(timeout=1.0)  # reap so exitcode is real
                    code = procs[rank].exitcode
                    errors.append(
                        (rank, RankFailedError(rank, f"rank {rank} process died (exitcode {code})"))
                    )
                    del pending[rank]
                    # a hard-dead rank reads nothing either: drain its inbound
                    # pipes so peers blocked sending to it still get unstuck
                    drainable.extend(c for c in in_conns[rank] if c is not None)
                    continue
                del pending[rank]
                drainable.extend(c for c in in_conns[rank] if c is not None)
                if status == "ok":
                    results[rank] = value
                    events[rank] = rank_events
                elif status == "aborted":
                    events[rank] = rank_events or []
                    aborted_ranks.append(rank)
                else:  # "error"
                    events[rank] = rank_events or []
                    errors.append((rank, value))
            if errors and error_deadline is None:
                error_deadline = time.monotonic() + _ERROR_GRACE_S
        return results, events, errors, aborted_ranks


def _drain_raw(conn: Connection) -> bool:
    """Discard whatever is readable on a finished rank's inbound pipe.

    Uses raw non-blocking fd reads, not the framed ``recv_bytes``: while the
    finished rank's process is still winding down, its receiver threads may
    have consumed part of a frame, and the parent's job is only to keep the
    pipe from filling up (unblocking late buffered senders) — the bytes are
    never interpreted. Returns False once the pipe is exhausted for good
    (EOF or error), True if it may become readable again.
    """
    try:
        fd = conn.fileno()
        os.set_blocking(fd, False)
    except Exception:
        # platforms whose Connections are not plain fds (Windows named
        # pipes): fall back to framed draining. Partial frames can make a
        # recv_bytes fail; that only ends the watch for this pipe.
        try:
            while conn.poll():
                conn.recv_bytes()
            return True
        except Exception:
            return False
    try:
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except BlockingIOError:
                return True  # drained what was there; writers may add more
            if not chunk:
                return False  # EOF: every writer is gone
    except Exception:
        return False  # closed/unsupported: stop watching this pipe


def _merge_events(trace: Trace, per_rank_events: list[list[TraceEvent]]) -> None:
    """Merge worker event logs into ``trace``, rebasing channel seq numbers.

    Workers allocate sequence numbers from zero each run; if the caller
    accumulates several runs into one trace, the channels must continue
    where the previous run left off for FIFO matching to stay unique.
    """
    counts: dict[tuple[int, int, int], int] = {}
    for rank_events in per_rank_events:
        for ev in rank_events:
            if ev.op == SEND:
                ch = (ev.rank, ev.peer, ev.tag)
            elif ev.op == RECV:
                ch = (ev.peer, ev.rank, ev.tag)
            else:
                continue
            counts[ch] = max(counts.get(ch, 0), ev.seq + 1)
    bases = {ch: trace.reserve_seqs(*ch, count) for ch, count in counts.items()}
    for rank_events in per_rank_events:
        for ev in rank_events:
            if ev.op == SEND:
                base = bases[(ev.rank, ev.peer, ev.tag)]
            elif ev.op == RECV:
                base = bases[(ev.peer, ev.rank, ev.tag)]
            else:
                trace.record(ev)
                continue
            if base:
                ev = TraceEvent(ev.op, ev.rank, ev.peer, ev.tag, ev.seq + base, ev.nbytes, ev.label)
            trace.record(ev)


register_backend(ProcessBackend.name, ProcessBackend)
