"""Per-rank operation traces.

Every communicator records an ordered log of the operations each rank
performs: point-to-point sends and receives (with wire bytes and a FIFO
sequence number for deterministic matching) and local compute work. The
:mod:`repro.netsim` package replays these traces through an alpha-beta/LogP
cost model to obtain the execution times the paper's evaluation reports.

Recording is race-free by construction: each rank appends only to its own
list from its own thread; sequence numbers for (src, dst, tag) channels are
allocated under a world-level lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceEvent", "SEND", "RECV", "COMPUTE", "MARK", "Trace"]

SEND = "send"
RECV = "recv"
COMPUTE = "compute"
MARK = "mark"


@dataclass(frozen=True)
class TraceEvent:
    """One operation of one rank.

    ``peer``/``tag``/``seq`` identify the matching counterpart for point to
    point events; ``nbytes`` is the wire size (sends and receives) or the
    bytes of memory touched (compute). ``label`` carries free-form phase
    names used by analyses (e.g. ``"split"`` / ``"allgather"``).
    """

    op: str
    rank: int
    peer: int = -1
    tag: int = -1
    seq: int = -1
    nbytes: int = 0
    label: str = ""


class Trace:
    """Ordered per-rank event logs for one parallel run."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self._events: list[list[TraceEvent]] = [[] for _ in range(nranks)]
        self._seq_lock = threading.Lock()
        self._seq: dict[tuple[int, int, int], int] = {}
        self.enabled = True

    # ------------------------------------------------------------------
    def next_seq(self, src: int, dst: int, tag: int) -> int:
        """Allocate the FIFO sequence number for a (src, dst, tag) channel."""
        key = (src, dst, tag)
        with self._seq_lock:
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
        return seq

    def reserve_seqs(self, src: int, dst: int, tag: int, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers on a channel.

        Used when merging events recorded off-trace (e.g. shipped back from
        a worker process) into a trace that may already hold traffic on the
        same channel: the merged events are rebased onto the returned start
        so FIFO matching stays unambiguous.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        key = (src, dst, tag)
        with self._seq_lock:
            start = self._seq.get(key, 0)
            self._seq[key] = start + count
        return start

    def record(self, event: TraceEvent) -> None:
        """Append an event to its rank's log (no-op when disabled)."""
        if self.enabled:
            self._events[event.rank].append(event)

    def record_send(self, rank: int, peer: int, tag: int, seq: int, nbytes: int, label: str = "") -> None:
        self.record(TraceEvent(SEND, rank, peer, tag, seq, nbytes, label))

    def record_recv(self, rank: int, peer: int, tag: int, seq: int, nbytes: int, label: str = "") -> None:
        self.record(TraceEvent(RECV, rank, peer, tag, seq, nbytes, label))

    def record_compute(self, rank: int, nbytes: int, label: str = "") -> None:
        self.record(TraceEvent(COMPUTE, rank, nbytes=nbytes, label=label))

    def record_mark(self, rank: int, label: str) -> None:
        """A zero-cost phase marker (used to slice timings per phase)."""
        self.record(TraceEvent(MARK, rank, label=label))

    # ------------------------------------------------------------------
    def events(self, rank: int) -> list[TraceEvent]:
        """The ordered event list of one rank."""
        return self._events[rank]

    def __iter__(self) -> Iterator[list[TraceEvent]]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop all recorded events and sequence counters."""
        for lst in self._events:
            lst.clear()
        with self._seq_lock:
            self._seq.clear()

    # ------------------------------------------------------------------
    @property
    def total_bytes_sent(self) -> int:
        """Sum of wire bytes over all send events (all ranks)."""
        return sum(e.nbytes for lst in self._events for e in lst if e.op == SEND)

    @property
    def total_messages(self) -> int:
        """Number of point-to-point messages sent."""
        return sum(1 for lst in self._events for e in lst if e.op == SEND)

    def bytes_sent_by(self, rank: int) -> int:
        return sum(e.nbytes for e in self._events[rank] if e.op == SEND)

    def bytes_received_by(self, rank: int) -> int:
        return sum(e.nbytes for e in self._events[rank] if e.op == RECV)

    def max_bytes_received(self) -> int:
        """Largest per-rank inbound volume (a bandwidth-bottleneck proxy)."""
        return max((self.bytes_received_by(r) for r in range(self.nranks)), default=0)

    def summary(self) -> dict[str, int]:
        """Aggregate message/byte counters for reporting."""
        return {
            "ranks": self.nranks,
            "messages": self.total_messages,
            "bytes_sent": self.total_bytes_sent,
            "max_rank_recv_bytes": self.max_bytes_received(),
        }
