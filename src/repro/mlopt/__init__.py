"""MPI-OPT reproduction: distributed optimisation on sparse data (§8.2)."""

from .datasets import (
    DenseDataset,
    SequenceDataset,
    SparseDataset,
    TABLE1_SHAPES,
    make_cifar_like,
    make_dense_classification,
    make_imagenet_like,
    make_sequence_task,
    make_sparse_classification,
    make_url_like,
    make_webspam_like,
    partition_rows,
)
from .async_sgd import distributed_sgd_async
from .io import dataset_info, load_dataset, load_shard, save_dataset
from .linear import LinearModel, LinearSVM, LogisticRegression, sparse_grad_from_batch
from .metrics import EpochRecord, RunHistory
from .scd import SCDConfig, distributed_scd
from .sgd import SGDConfig, distributed_sgd

__all__ = [
    "DenseDataset",
    "SequenceDataset",
    "SparseDataset",
    "TABLE1_SHAPES",
    "make_cifar_like",
    "make_dense_classification",
    "make_imagenet_like",
    "make_sequence_task",
    "make_sparse_classification",
    "make_url_like",
    "make_webspam_like",
    "partition_rows",
    "LinearModel",
    "LinearSVM",
    "LogisticRegression",
    "sparse_grad_from_batch",
    "EpochRecord",
    "RunHistory",
    "SCDConfig",
    "distributed_scd",
    "SGDConfig",
    "distributed_sgd",
    "distributed_sgd_async",
    "dataset_info",
    "load_dataset",
    "load_shard",
    "save_dataset",
]
