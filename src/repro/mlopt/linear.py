"""Linear models with sparse gradients (MPI-OPT's workloads, §8.2).

Logistic regression and (smoothed-subgradient) SVM on CSR feature
matrices. The key property exploited by the experiments: for a linear
model, the minibatch gradient's support is exactly the union of the
batch rows' feature supports —

    grad = X_batch^T @ dloss / m

— so on trigram-like data the gradient is naturally sparse and SparCML's
*lossless* sparse allreduce applies ("we do not sparsify or quantize the
gradient updates, but exploit the fact that data and hence gradients tend
to be sparse", §8.2).

``grad_stream`` builds the sparse gradient directly from the CSR internals
(no dense intermediates), returning a :class:`~repro.streams.SparseStream`.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from ..streams import SparseStream
from ..streams.summation import merge_sparse_pairs
from ..config import INDEX_DTYPE

__all__ = ["LinearModel", "LogisticRegression", "LinearSVM", "sparse_grad_from_batch"]


def sparse_grad_from_batch(
    X_batch: sp.csr_matrix, dloss: np.ndarray, value_dtype: np.dtype | type = np.float32
) -> SparseStream:
    """``X_batch^T @ dloss / m`` as a sparse stream (support = row union).

    Works directly on the CSR buffers: entry ``(i, j, x)`` contributes
    ``x * dloss[i] / m`` to coordinate ``j``; duplicates merge by sum.
    """
    m, n_features = X_batch.shape
    if dloss.shape != (m,):
        raise ValueError(f"dloss shape {dloss.shape} != ({m},)")
    if m == 0 or X_batch.nnz == 0:
        return SparseStream.zeros(n_features, value_dtype=value_dtype)
    row_counts = np.diff(X_batch.indptr)
    contrib = X_batch.data * np.repeat(dloss, row_counts) / m
    cols = X_batch.indices.astype(INDEX_DTYPE, copy=False)
    order = np.argsort(cols, kind="stable")
    cols = cols[order]
    contrib = contrib[order]
    # collapse duplicate columns
    boundary = np.empty(cols.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(cols[1:], cols[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    summed = np.add.reduceat(contrib, starts).astype(value_dtype)
    return SparseStream(
        n_features,
        indices=cols[starts].copy(),
        values=summed,
        value_dtype=value_dtype,
        copy=False,
    )


class LinearModel(abc.ABC):
    """Binary linear classifier ``sign(X @ w)`` with L2 regularisation."""

    def __init__(self, n_features: int, reg: float = 1e-4) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if reg < 0:
            raise ValueError(f"reg must be >= 0, got {reg}")
        self.n_features = n_features
        self.reg = reg

    # per-sample loss and its derivative wrt the margin y * score
    @abc.abstractmethod
    def _loss_terms(self, margins: np.ndarray) -> np.ndarray:
        """Per-sample losses given ``margins = y * (X @ w)``."""

    @abc.abstractmethod
    def _dloss_dscore(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """d(loss)/d(score) per sample."""

    # ------------------------------------------------------------------
    def margins(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray) -> np.ndarray:
        return y * (X @ w)

    def loss(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray) -> float:
        """Mean loss + L2 penalty."""
        m = self.margins(w, X, y)
        data = float(np.mean(self._loss_terms(m))) if m.size else 0.0
        return data + 0.5 * self.reg * float(w @ w)

    def accuracy(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray) -> float:
        if X.shape[0] == 0:
            return 0.0
        scores = X @ w
        return float(np.mean(np.sign(scores) == np.sign(y)))

    def grad_stream(
        self, w: np.ndarray, X_batch: sp.csr_matrix, y_batch: np.ndarray
    ) -> SparseStream:
        """Sparse minibatch gradient of the *data* term.

        The L2 term is dense and rank-local; apply it separately via
        :meth:`apply_regularization` so the communicated update stays
        sparse (standard practice; preserves the optimum).
        """
        scores = X_batch @ w
        dloss = self._dloss_dscore(y_batch * scores, y_batch)
        return sparse_grad_from_batch(X_batch, dloss, value_dtype=np.float32)

    def grad_dense(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray) -> np.ndarray:
        """Full-batch dense gradient (data term + regulariser); reference."""
        scores = X @ w
        dloss = self._dloss_dscore(y * scores, y)
        g = np.asarray(X.T @ dloss).ravel() / max(X.shape[0], 1)
        return g + self.reg * w

    def apply_regularization(self, w: np.ndarray, lr: float) -> None:
        """In-place L2 shrinkage ``w *= (1 - lr * reg)``."""
        w *= 1.0 - lr * self.reg


class LogisticRegression(LinearModel):
    """Binary logistic regression: ``loss = log(1 + exp(-y s))``."""

    def _loss_terms(self, margins: np.ndarray) -> np.ndarray:
        # numerically stable log(1 + exp(-m))
        return np.logaddexp(0.0, -margins)

    def _dloss_dscore(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        from scipy.special import expit

        return -y * expit(-margins)


class LinearSVM(LinearModel):
    """L2-regularised hinge-loss SVM: ``loss = max(0, 1 - y s)``."""

    def _loss_terms(self, margins: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - margins)

    def _dloss_dscore(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.where(margins < 1.0, -y, 0.0)
