"""Run histories and summary reporting for the optimisation drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EpochRecord", "RunHistory"]


@dataclass
class EpochRecord:
    """One epoch's metrics at a single rank (ranks agree on the model)."""

    epoch: int
    loss: float
    accuracy: float
    grad_nnz_mean: float = 0.0
    bytes_sent: int = 0


@dataclass
class RunHistory:
    """Accumulated per-epoch records plus final model.

    ``degraded_rank`` is set by drivers that survive a peer failure
    (see :func:`~repro.mlopt.async_sgd.distributed_sgd_async`): it names
    the first failed rank after which this rank continued without
    aggregation. ``None`` means the run stayed fully synchronous.

    ``world_sizes`` is filled by the elastic driver mode
    (``on_failure="shrink"``): one entry per epoch recording how many
    ranks aggregated that epoch (1 for an epoch finished on local
    gradients while the world reformed), so a kill-then-rejoin run reads
    e.g. ``[4, 1, 3, 4]``. Empty for non-elastic runs.

    ``algorithm_switches`` is filled by adaptive runs
    (``distributed_sgd_async(..., adaptive=True)``): one dict per
    (re-)selection event of the
    :class:`~repro.costmodel.AdaptiveSelector`, identical on every rank.
    Empty for non-adaptive runs.
    """

    records: list[EpochRecord] = field(default_factory=list)
    params: np.ndarray | None = None
    degraded_rank: int | None = None
    world_sizes: list[int] = field(default_factory=list)
    algorithm_switches: list[dict] = field(default_factory=list)

    def add(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def final_loss(self) -> float:
        return self.records[-1].loss if self.records else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.records[-1].accuracy if self.records else float("nan")

    @property
    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    @property
    def accuracies(self) -> list[float]:
        return [r.accuracy for r in self.records]

    def epochs_to_loss(self, target: float) -> int | None:
        """First epoch whose loss is <= target (None if never reached)."""
        for r in self.records:
            if r.loss <= target:
                return r.epoch
        return None
