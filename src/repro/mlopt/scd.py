"""Distributed random block coordinate descent (SCD, §8.2).

Follows the distributed random-block scheme the paper attributes to
Wright [55]: the coordinate space is partitioned across ranks; per
iteration every rank

1. samples a random block of ``block_size`` coordinates from *its* slice,
2. computes the partial gradient of those coordinates on its local samples,
3. takes a coordinate step, and
4. shares the updates with a **sparse allgather** — the per-rank updates
   live in disjoint coordinate slices, so the "reduction" is concatenation
   (the paper's §8.2 SCD experiment: "we compare the runtime of a sparse
   allgather from SparCML to its dense counterpart": 49s -> 26s per epoch).

The dense baseline gathers a full-length vector per rank instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..collectives.allgather import allgather_blocks, sparse_allgather
from ..collectives.dense import partition_bounds
from ..runtime.comm import Communicator
from ..streams import SparseStream
from .datasets import SparseDataset, partition_rows
from .linear import LinearModel
from .metrics import EpochRecord, RunHistory

__all__ = ["SCDConfig", "distributed_scd"]


@dataclass
class SCDConfig:
    """SCD hyper-parameters: the paper uses 100 coordinates per node."""

    epochs: int = 2
    iterations_per_epoch: int = 50
    block_size: int = 100
    lr: float = 0.5
    mode: str = "sparse"  # "sparse" allgather vs "dense" allgather
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("sparse", "dense"):
            raise ValueError(f"mode must be 'sparse' or 'dense', got {self.mode!r}")


def distributed_scd(
    comm: Communicator,
    dataset: SparseDataset,
    model: LinearModel,
    config: SCDConfig,
) -> RunHistory:
    """Run distributed block coordinate descent at one rank."""
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    X_local: sp.csc_matrix = dataset.X[shard].tocsc()
    y_local = dataset.y[shard]
    n_local = X_local.shape[0]

    bounds = partition_bounds(model.n_features, comm.size)
    my_lo, my_hi = int(bounds[comm.rank]), int(bounds[comm.rank + 1])
    if my_hi <= my_lo:
        raise ValueError(f"rank {comm.rank} owns an empty coordinate slice")

    rng = np.random.default_rng(config.seed * 99991 + comm.rank)
    w = np.zeros(model.n_features, dtype=np.float64)
    history = RunHistory()

    for epoch in range(config.epochs):
        bytes_before = _bytes_sent(comm)
        for _ in range(config.iterations_per_epoch):
            block = rng.choice(
                np.arange(my_lo, my_hi),
                size=min(config.block_size, my_hi - my_lo),
                replace=False,
            )
            block.sort()
            comm.mark("compute")
            # partial derivative of the chosen coordinates on local samples
            scores = X_local @ w
            dloss = model._dloss_dscore(y_local * scores, y_local)  # noqa: SLF001
            sub = X_local[:, block]
            comm.compute(int(sub.nnz) * 16 + w.nbytes, "coord_grad")
            grad_block = np.asarray(sub.T @ dloss).ravel() / max(n_local, 1)
            grad_block += model.reg * w[block]
            delta = (-config.lr * grad_block).astype(np.float32)

            if config.mode == "sparse":
                update = SparseStream(
                    model.n_features,
                    indices=block.astype(np.uint32),
                    values=delta,
                    value_dtype=np.float32,
                    copy=False,
                )
                merged = sparse_allgather(comm, update)
                comm.mark("compute")
                comm.compute(merged.nnz * 12, "apply")
                idx = merged.indices.astype(np.int64)
                w[idx] += merged.values.astype(np.float64)
            else:
                dense_update = np.zeros(model.n_features, dtype=np.float32)
                dense_update[block] = delta
                pieces = allgather_blocks(comm, dense_update)
                comm.mark("compute")
                comm.compute(sum(p.nbytes for p in pieces), "apply")
                for piece in pieces:
                    w += piece.astype(np.float64)
        history.add(
            EpochRecord(
                epoch=epoch,
                loss=model.loss(w, dataset.X, dataset.y),
                accuracy=model.accuracy(w, dataset.X, dataset.y),
                grad_nnz_mean=float(config.block_size),
                bytes_sent=_bytes_sent(comm) - bytes_before,
            )
        )
    history.params = w
    return history


def _bytes_sent(comm: Communicator) -> int:
    return comm.trace.bytes_sent_by(comm.rank)
