"""Asynchronous (pipelined) gradient aggregation (MPI-OPT, §7).

MPI-OPT supports "sparse, dense, synchronous, and asynchronous
aggregation". The asynchronous mode implemented here is the standard
one-step-pipelined scheme built on the library's non-blocking collectives
(§7): the allreduce of step ``t``'s gradient is *launched* at step ``t``
but only awaited at step ``t+1``, so communication overlaps with the next
batch's gradient computation. The model update is applied with one step of
staleness — the relaxed-consistency trade the paper's introduction calls
out ("individual nodes can compute with a partially inconsistent view of
the parameters").

Convergence: with a modest learning rate, staleness-1 SGD tracks the
synchronous trajectory closely (tested); the win is that the replayed
step time becomes ``max(compute, comm)`` instead of their sum.

Fault tolerance: if a peer rank dies mid-run, the blocked aggregation
raises :class:`~repro.runtime.comm.RankFailedError`. Two recovery modes:

``on_failure="degrade"`` (default)
    record the failed rank on the returned history
    (``history.degraded_rank``) and finish the remaining steps on local
    gradients only — the simplest instance of the paper's "continue with
    the surviving ranks' contributions" recovery (§6).
``on_failure="shrink"``
    reform the world without the dead rank through
    :func:`~repro.runtime.elastic.shrink`, finish the current epoch on
    local gradients (survivors may detect the failure at different step
    offsets; the epoch boundary realigns them), then resume synchronized
    aggregation among the survivors. Each epoch boundary also commits at
    most one pending rejoin (:meth:`ElasticContext.step`) and broadcasts
    the model to the regrown world, so a revived rank re-enters training
    via ``resume=True`` without a restart. ``history.world_sizes``
    records the aggregating world size per epoch.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..collectives.api import sparse_allreduce
from ..collectives.selector import choose_algorithm
from ..core.fusion import GradientFuser
from ..costmodel.adaptive import AdaptiveSelector
from ..runtime.comm import Communicator, RankFailedError, WorldAbortedError
from ..runtime.elastic import ElasticContext
from ..runtime.nonblocking import i_collective
from .datasets import SparseDataset, partition_rows
from .linear import LinearModel
from .metrics import EpochRecord, RunHistory
from .sgd import SGDConfig, comm_bytes_sent

__all__ = ["distributed_sgd_async"]


def _grow_root(members: tuple, joiner: int) -> int:
    """Group rank all parties agree broadcasts the model after a regrow.

    The root must be a *survivor* (the joiner has no current model), and
    both sides must pick it without further communication: the lowest
    member that is not the joiner.
    """
    root_world_rank = min(r for r in members if r != joiner)
    return members.index(root_world_rank)


def distributed_sgd_async(
    comm: Communicator,
    dataset: SparseDataset,
    model: LinearModel,
    config: SGDConfig,
    *,
    on_failure: str = "degrade",
    resume: bool = False,
    fuser: "GradientFuser | None" = None,
    fuser_k: int = 32,
    chunks: "int | str" = 1,
    adaptive: "bool | AdaptiveSelector" = False,
) -> RunHistory:
    """Data-parallel SGD with one-step-pipelined sparse aggregation.

    All ranks call collectively. Requires a thread-backend communicator
    (the non-blocking collective machinery lives there). Only sparse mode
    is supported — the asynchronous pipeline exists to hide the sparse
    exchange behind gradient computation.

    ``resume=True`` (elastic mode only) is the entry point for a rank
    that rejoined a running world through
    :func:`~repro.runtime.elastic.thread_rejoin`: it receives the current
    ``(epoch, model)`` from the grow broadcast and joins the loop at
    that epoch.

    ``fuser`` switches the exchange to the bucketed path of §9: each
    step's gradient is densified, TopK-selected per fused bucket (with
    per-bucket error feedback carrying ``fuser_k`` survivors per bucket),
    and launched through
    :meth:`~repro.core.fusion.GradientFuser.i_fused_allreduce` — one
    non-blocking collective per bucket, joined in order one step later.
    ``chunks`` pipelines the hierarchical collectives either way (see
    :func:`~repro.collectives.api.sparse_allreduce`).

    ``adaptive=True`` (requires ``config.algorithm == "auto"``) replaces
    the once-per-membership static resolve with an
    :class:`~repro.costmodel.AdaptiveSelector`: every aggregating step
    folds the realized gradient nnz into a collectively-agreed EWMA and
    re-runs the cost model's selection when the estimate drifts (or the
    world resizes), so the algorithm tracks the density the run actually
    produces. The switch sequence is bit-identical on every rank (and
    recorded on ``history.algorithm_switches``). Pass a pre-built
    selector to control the cost model, drift threshold or EWMA factor.
    """
    if config.mode != "sparse":
        raise ValueError("asynchronous aggregation supports sparse mode only")
    if on_failure not in ("degrade", "shrink"):
        raise ValueError(f"on_failure must be 'degrade' or 'shrink', got {on_failure!r}")
    if resume and on_failure != "shrink":
        raise ValueError("resume=True requires on_failure='shrink'")
    if fuser is not None and fuser.total_size != model.n_features:
        raise ValueError(
            f"fuser covers {fuser.total_size} params but the model has "
            f"{model.n_features} features"
        )
    selector: AdaptiveSelector | None = None
    if adaptive:
        if config.algorithm != "auto":
            raise ValueError("adaptive selection requires config.algorithm='auto'")
        selector = (
            adaptive
            if isinstance(adaptive, AdaptiveSelector)
            else AdaptiveSelector(dimension=model.n_features, value_itemsize=8)
        )
    feedback = fuser.make_error_feedback(fuser_k) if fuser is not None else None
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    X_local: sp.csr_matrix = dataset.X[shard]
    y_local = dataset.y[shard]
    n_local = X_local.shape[0]
    if n_local == 0:
        raise ValueError(f"rank {comm.rank} received an empty shard")

    rng = np.random.default_rng(config.seed * 100003 + comm.rank)
    w = np.zeros(model.n_features, dtype=np.float64)
    history = RunHistory()
    steps_per_epoch = max(1, n_local // config.batch_size)

    def resolve_algorithm() -> str:
        # every rank must launch the *same* algorithm or the collective
        # deadlocks, but the §5.3 selector keys on the local stream's nnz,
        # which differs per rank — near the sparse/dense switchover two
        # ranks can legitimately disagree. Resolve "auto" once per
        # membership from a rank-independent estimate instead: the
        # dataset's mean batch nnz (the dataset is replicated, so all
        # ranks compute the identical value).
        if config.algorithm != "auto":
            return config.algorithm
        est_nnz = max(1, int(dataset.X.nnz / dataset.n_samples * config.batch_size))
        return choose_algorithm(
            model.n_features, comm.size, est_nnz, 8, topology=comm.topology
        )

    algorithm = resolve_algorithm()

    pending = None  # in-flight collective handle from the previous step
    start_epoch = 0
    #: first epoch at which synchronized aggregation is (re)enabled; a
    #: shrink mid-epoch pushes it past the current epoch so survivors who
    #: noticed the failure at different step offsets realign locally
    resync_epoch = 0
    if resume:
        # the grow broadcast pairs with the survivors' send in
        # _elastic_epoch_step: root is the lowest surviving member
        members = comm.parent_ranks
        root = _grow_root(members, joiner=members[comm.rank])
        start_epoch, w_sync = comm.bcast(None, root=root)
        resync_epoch = start_epoch
        w[:] = w_sync

    def apply_update(total_stream, contributors: int) -> None:
        model.apply_regularization(w, config.lr)
        if isinstance(total_stream, np.ndarray):
            # the fused path joins to a plain dense update vector
            comm.compute(total_stream.nbytes * 2, "apply")
            w[:] -= (config.lr / contributors) * total_stream.astype(np.float64)
            return
        if total_stream.is_dense:
            comm.compute(total_stream.dense_payload.nbytes * 2, "apply")
            w[:] -= (config.lr / contributors) * total_stream.dense_payload.astype(np.float64)
        else:
            comm.compute(total_stream.nnz * 12, "apply")
            idx = total_stream.indices.astype(np.int64)
            w[idx] -= (config.lr / contributors) * total_stream.values.astype(np.float64)

    def recover(exc: RankFailedError, doomed_handle, epoch: int) -> None:
        # a peer died mid-aggregation: reap the handle that was launched
        # into the already-aborted world, then either degrade to
        # local-only updates for the rest of the run or shrink the world
        # and resume aggregation among the survivors
        nonlocal pending, comm, resync_epoch, algorithm
        if doomed_handle is not None:
            try:
                doomed_handle.wait()
            except WorldAbortedError:
                pass
        pending = None
        if on_failure != "shrink":
            history.degraded_rank = exc.rank
            return
        comm = comm.shrink()
        algorithm = resolve_algorithm()
        # survivors may detect the failure at different step offsets (the
        # pipeline means one rank can clear an epoch boundary another
        # fails at), so the resumption epoch must be agreed, not assumed:
        # everyone proposes "my next epoch" and the max wins. This is the
        # first collective on the fresh post-shrink world, so it lines up
        # regardless of where each survivor's loop currently stands.
        votes = comm.gather_to_root(epoch + 1, root=0)
        resync_epoch = comm.bcast(max(votes) if votes is not None else None, root=0)

    def aggregating(epoch: int) -> bool:
        return history.degraded_rank is None and epoch >= resync_epoch

    def elastic_epoch_step(epoch: int) -> None:
        # epoch boundary = membership commit point: drain the pipeline
        # (an in-flight handle on a superseded world would go stale the
        # moment a join bumps the epoch), commit at most one pending
        # rejoin, and hand the regrown world the current model
        nonlocal pending, comm, algorithm
        if pending is not None:
            try:
                apply_update(pending.wait(), comm.size)
            except RankFailedError as exc:
                recover(exc, None, epoch)
            pending = None
        history.world_sizes.append(comm.size if aggregating(epoch) else 1)
        if not aggregating(epoch):
            return
        try:
            ctx = ElasticContext(comm)
            old_members = getattr(comm, "parent_ranks", None)
            grown = ctx.step()
            if grown is comm or old_members is None:
                comm = grown
                return
            comm = grown
            algorithm = resolve_algorithm()
            members = comm.parent_ranks
            (joiner,) = set(members) - set(old_members)
            root = _grow_root(members, joiner)
            payload = (epoch + 1, w.copy()) if comm.rank == root else None
            comm.bcast(payload, root=root)
        except RankFailedError as exc:
            recover(exc, None, epoch)

    for epoch in range(start_epoch, config.epochs):
        grad_nnz: list[int] = []
        bytes_before = comm_bytes_sent(comm)
        for _ in range(steps_per_epoch):
            rows = rng.choice(n_local, size=min(config.batch_size, n_local), replace=False)
            comm.mark("compute")
            comm.compute(int(X_local[rows].nnz) * 16, "grad")
            grad = model.grad_stream(w, X_local[rows], y_local[rows])
            grad_nnz.append(grad.nnz)
            if not aggregating(epoch):
                apply_update(grad, 1)
                continue
            if selector is not None:
                # collective: every aggregating rank steps the selector at
                # the same iteration, so the agreed estimate (and any
                # algorithm switch) is identical everywhere
                algorithm = selector.step(comm, grad.nnz)
            # launch this step's reduction; it progresses while the next
            # batch's gradient is being computed
            if fuser is not None:
                handle = fuser.i_fused_allreduce(
                    comm,
                    grad.to_dense().astype(np.float32),
                    feedback,
                    algorithm=algorithm,
                    chunks=chunks,
                )
            else:
                handle = i_collective(
                    comm, sparse_allreduce, grad, algorithm=algorithm, chunks=chunks
                )
            if pending is not None:
                try:
                    apply_update(pending.wait(), comm.size)
                except RankFailedError as exc:
                    recover(exc, handle, epoch)
                    apply_update(grad, 1)
                    continue
            pending = handle
        if on_failure == "shrink":
            elastic_epoch_step(epoch)
        history.add(
            EpochRecord(
                epoch=epoch,
                loss=model.loss(w, dataset.X, dataset.y),
                accuracy=model.accuracy(w, dataset.X, dataset.y),
                grad_nnz_mean=float(np.mean(grad_nnz)) if grad_nnz else 0.0,
                bytes_sent=comm_bytes_sent(comm) - bytes_before,
            )
        )
    if pending is not None:
        try:
            apply_update(pending.wait(), comm.size)
        except RankFailedError as exc:
            recover(exc, None, config.epochs)
    if selector is not None:
        history.algorithm_switches = [s.to_dict() for s in selector.switches]
    history.params = w
    return history
