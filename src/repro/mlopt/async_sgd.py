"""Asynchronous (pipelined) gradient aggregation (MPI-OPT, §7).

MPI-OPT supports "sparse, dense, synchronous, and asynchronous
aggregation". The asynchronous mode implemented here is the standard
one-step-pipelined scheme built on the library's non-blocking collectives
(§7): the allreduce of step ``t``'s gradient is *launched* at step ``t``
but only awaited at step ``t+1``, so communication overlaps with the next
batch's gradient computation. The model update is applied with one step of
staleness — the relaxed-consistency trade the paper's introduction calls
out ("individual nodes can compute with a partially inconsistent view of
the parameters").

Convergence: with a modest learning rate, staleness-1 SGD tracks the
synchronous trajectory closely (tested); the win is that the replayed
step time becomes ``max(compute, comm)`` instead of their sum.

Fault tolerance: if a peer rank dies mid-run, the blocked aggregation
raises :class:`~repro.runtime.comm.RankFailedError`. Instead of crashing,
this driver degrades gracefully — it records the failed rank on the
returned history (``history.degraded_rank``) and finishes the remaining
steps on local gradients only, the simplest instance of the paper's
"continue with the surviving ranks' contributions" recovery (§6).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..collectives.api import sparse_allreduce
from ..runtime.comm import Communicator, RankFailedError, WorldAbortedError
from ..runtime.nonblocking import i_collective
from .datasets import SparseDataset, partition_rows
from .linear import LinearModel
from .metrics import EpochRecord, RunHistory
from .sgd import SGDConfig, comm_bytes_sent

__all__ = ["distributed_sgd_async"]


def distributed_sgd_async(
    comm: Communicator,
    dataset: SparseDataset,
    model: LinearModel,
    config: SGDConfig,
) -> RunHistory:
    """Data-parallel SGD with one-step-pipelined sparse aggregation.

    All ranks call collectively. Requires a thread-backend communicator
    (the non-blocking collective machinery lives there). Only sparse mode
    is supported — the asynchronous pipeline exists to hide the sparse
    exchange behind gradient computation.
    """
    if config.mode != "sparse":
        raise ValueError("asynchronous aggregation supports sparse mode only")
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    X_local: sp.csr_matrix = dataset.X[shard]
    y_local = dataset.y[shard]
    n_local = X_local.shape[0]
    if n_local == 0:
        raise ValueError(f"rank {comm.rank} received an empty shard")

    rng = np.random.default_rng(config.seed * 100003 + comm.rank)
    w = np.zeros(model.n_features, dtype=np.float64)
    history = RunHistory()
    steps_per_epoch = max(1, n_local // config.batch_size)

    pending = None  # in-flight collective handle from the previous step

    def apply_update(total_stream, contributors: int) -> None:
        model.apply_regularization(w, config.lr)
        if total_stream.is_dense:
            comm.compute(total_stream.dense_payload.nbytes * 2, "apply")
            w[:] -= (config.lr / contributors) * total_stream.dense_payload.astype(np.float64)
        else:
            comm.compute(total_stream.nnz * 12, "apply")
            idx = total_stream.indices.astype(np.int64)
            w[idx] -= (config.lr / contributors) * total_stream.values.astype(np.float64)

    def degrade(exc: RankFailedError, doomed_handle) -> None:
        # a peer died mid-aggregation: remember who, reap the handle that
        # was launched into the already-aborted world, and fall back to
        # local-only updates for the rest of the run
        nonlocal pending
        history.degraded_rank = exc.rank
        if doomed_handle is not None:
            try:
                doomed_handle.wait()
            except WorldAbortedError:
                pass
        pending = None

    for epoch in range(config.epochs):
        grad_nnz: list[int] = []
        bytes_before = comm_bytes_sent(comm)
        for _ in range(steps_per_epoch):
            rows = rng.choice(n_local, size=min(config.batch_size, n_local), replace=False)
            comm.mark("compute")
            comm.compute(int(X_local[rows].nnz) * 16, "grad")
            grad = model.grad_stream(w, X_local[rows], y_local[rows])
            grad_nnz.append(grad.nnz)
            if history.degraded_rank is not None:
                apply_update(grad, 1)
                continue
            # launch this step's reduction; it progresses while the next
            # batch's gradient is being computed
            handle = i_collective(
                comm, sparse_allreduce, grad, algorithm=config.algorithm
            )
            if pending is not None:
                try:
                    apply_update(pending.wait(), comm.size)
                except RankFailedError as exc:
                    degrade(exc, handle)
                    apply_update(grad, 1)
                    continue
            pending = handle
        history.add(
            EpochRecord(
                epoch=epoch,
                loss=model.loss(w, dataset.X, dataset.y),
                accuracy=model.accuracy(w, dataset.X, dataset.y),
                grad_nnz_mean=float(np.mean(grad_nnz)) if grad_nnz else 0.0,
                bytes_sent=comm_bytes_sent(comm) - bytes_before,
            )
        )
    if pending is not None:
        try:
            apply_update(pending.wait(), comm.size)
        except RankFailedError as exc:
            degrade(exc, None)
    history.params = w
    return history
