"""Distributed minibatch SGD for sparse linear models (MPI-OPT, §8.2).

Each rank holds a contiguous shard of the dataset and a replica of the
weight vector. Per step, ranks compute the sparse minibatch gradient of
their shard, sum it across ranks with a SparCML sparse allreduce (lossless:
no sparsification, the data's natural sparsity is exploited), and apply the
averaged update. The dense baseline runs the identical computation with a
dense allreduce — exactly the Table 2 comparison.

Compute work (gradient evaluation, model update) is charged to the trace
so replayed times include both terms; comm-only time is obtained by
replaying with ``gamma = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..collectives.api import dense_allreduce, sparse_allreduce
from ..runtime.comm import Communicator
from .datasets import SparseDataset, partition_rows
from .linear import LinearModel
from .metrics import EpochRecord, RunHistory

__all__ = ["SGDConfig", "distributed_sgd"]


@dataclass
class SGDConfig:
    """Hyper-parameters for the distributed SGD drivers.

    ``batch_size`` is *per rank* (the paper uses large global batches,
    1000 x P); ``mode`` selects the communication layer: ``"sparse"`` for
    SparCML collectives, ``"dense"`` for the MPI baseline.
    """

    epochs: int = 2
    batch_size: int = 100
    lr: float = 0.5
    mode: str = "sparse"  # "sparse" | "dense"
    algorithm: str = "auto"  # collective algorithm (or dense_* for dense mode)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("sparse", "dense"):
            raise ValueError(f"mode must be 'sparse' or 'dense', got {self.mode!r}")
        if self.epochs < 0 or self.batch_size < 1 or self.lr <= 0:
            raise ValueError("invalid SGD configuration")


def distributed_sgd(
    comm: Communicator,
    dataset: SparseDataset,
    model: LinearModel,
    config: SGDConfig,
    eval_dataset: SparseDataset | None = None,
) -> RunHistory:
    """Run data-parallel SGD at one rank; all ranks call collectively.

    The full dataset is passed everywhere and sharded deterministically by
    rank (this mirrors MPI-OPT's MPI-IO partitioning without a filesystem).
    Evaluation uses the *full* dataset (identical on all ranks), so every
    rank records the same history.
    """
    shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
    X_local: sp.csr_matrix = dataset.X[shard]
    y_local = dataset.y[shard]
    n_local = X_local.shape[0]
    if n_local == 0:
        raise ValueError(f"rank {comm.rank} received an empty shard")

    eval_X = (eval_dataset or dataset).X
    eval_y = (eval_dataset or dataset).y

    rng = np.random.default_rng(config.seed * 100003 + comm.rank)
    w = np.zeros(model.n_features, dtype=np.float64)
    history = RunHistory()
    steps_per_epoch = max(1, n_local // config.batch_size)
    dense_mode = config.mode == "dense"
    dense_algo = config.algorithm if config.algorithm.startswith("dense") else "dense_rabenseifner"

    for epoch in range(config.epochs):
        grad_nnz: list[int] = []
        bytes_before = comm_bytes_sent(comm)
        for _ in range(steps_per_epoch):
            rows = rng.choice(n_local, size=min(config.batch_size, n_local), replace=False)
            X_batch = X_local[rows]
            y_batch = y_local[rows]
            comm.mark("compute")
            # gradient work ~ touching every batch nonzero a few times
            comm.compute(int(X_batch.nnz) * 16, "grad")
            grad = model.grad_stream(w, X_batch, y_batch)
            grad_nnz.append(grad.nnz)
            if dense_mode:
                total = dense_allreduce(comm, grad.to_dense(), algorithm=dense_algo)
                comm.mark("compute")
                comm.compute(total.nbytes * 2, "apply")
                model.apply_regularization(w, config.lr)
                w -= (config.lr / comm.size) * total.astype(np.float64)
            else:
                total_stream = sparse_allreduce(comm, grad, algorithm=config.algorithm)
                comm.mark("compute")
                model.apply_regularization(w, config.lr)
                if total_stream.is_dense:
                    comm.compute(total_stream.dense_payload.nbytes * 2, "apply")
                    w -= (config.lr / comm.size) * total_stream.dense_payload.astype(np.float64)
                else:
                    comm.compute(total_stream.nnz * 12, "apply")
                    idx = total_stream.indices.astype(np.int64)
                    w[idx] -= (config.lr / comm.size) * total_stream.values.astype(np.float64)
        history.add(
            EpochRecord(
                epoch=epoch,
                loss=model.loss(w, eval_X, eval_y),
                accuracy=model.accuracy(w, eval_X, eval_y),
                grad_nnz_mean=float(np.mean(grad_nnz)) if grad_nnz else 0.0,
                bytes_sent=comm_bytes_sent(comm) - bytes_before,
            )
        )
    history.params = w
    return history


def comm_bytes_sent(comm: Communicator) -> int:
    """Bytes this rank has sent so far (works on any backend's trace)."""
    # trace events are attributed to *world* ranks, so read through
    # world_rank — on a sub/elastic communicator the group rank differs
    return comm.trace.bytes_sent_by(comm.world_rank)
