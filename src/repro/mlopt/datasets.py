"""Synthetic dataset generators standing in for the paper's workloads.

The paper evaluates on datasets we cannot ship (URL and Webspam are
multi-GB downloads; ImageNet, ATIS, Hansards and the ASR corpus are large
or proprietary). Each generator below produces a synthetic equivalent that
preserves the property the experiment exercises:

* :func:`make_sparse_classification` — high-dimensional *sparse* binary
  classification with power-law (trigram-like) feature popularity. For
  linear models, the SGD gradient support equals the union of feature
  supports of the minibatch, so this drives exactly the fill-in behaviour
  Table 2 measures. :func:`make_url_like` / :func:`make_webspam_like`
  match the shape of Table 1 (dimension scaled down by default).
* :func:`make_dense_classification` — Gaussian-mixture "images"
  (CIFAR-like / ImageNet-like) for the DNN experiments of Figs. 4-5.
* :func:`make_sequence_task` — token sequences whose label depends on
  trigger tokens (ATIS-like intent classification) for the LSTM runs.

All generators are deterministic given a seed and return plain
numpy/scipy containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = [
    "SparseDataset",
    "DenseDataset",
    "SequenceDataset",
    "make_sparse_classification",
    "make_url_like",
    "make_webspam_like",
    "make_dense_classification",
    "make_cifar_like",
    "make_imagenet_like",
    "make_sequence_task",
    "partition_rows",
    "TABLE1_SHAPES",
]

#: Table 1 of the paper (name -> (#classes, #samples, dimension)).
TABLE1_SHAPES = {
    "url": (2, 2_396_130, 3_231_961),
    "webspam": (2, 350_000, 16_609_143),
    "cifar10": (10, 60_000, 32 * 32 * 3),
    "imagenet1k": (1000, 1_300_000, 224 * 224 * 3),
}


@dataclass
class SparseDataset:
    """Sparse-feature classification data (CSR rows, ±1 labels)."""

    X: sp.csr_matrix
    y: np.ndarray
    name: str = "sparse"
    meta: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def mean_nnz_per_sample(self) -> float:
        return float(self.X.nnz / max(self.X.shape[0], 1))

    @property
    def density(self) -> float:
        return float(self.X.nnz / max(self.X.shape[0] * self.X.shape[1], 1))


@dataclass
class DenseDataset:
    """Dense-feature classification data (float32 rows, int class labels)."""

    X: np.ndarray
    y: np.ndarray
    n_classes: int
    name: str = "dense"

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]


@dataclass
class SequenceDataset:
    """Token sequences with integer intent labels (ATIS-like)."""

    tokens: np.ndarray  # (n_samples, seq_len) int token ids
    y: np.ndarray
    vocab_size: int
    n_classes: int
    name: str = "sequences"

    @property
    def n_samples(self) -> int:
        return self.tokens.shape[0]

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[1]


# ----------------------------------------------------------------------
# sparse text-like data
# ----------------------------------------------------------------------
def _powerlaw_feature_probs(n_features: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity over features, randomly permuted."""
    ranks = np.arange(1, n_features + 1, dtype=np.float64)
    probs = ranks**-exponent
    probs /= probs.sum()
    return rng.permutation(probs)


def make_sparse_classification(
    n_samples: int,
    n_features: int,
    nnz_per_sample: int,
    *,
    seed: int = 0,
    powerlaw_exponent: float = 1.1,
    informative_fraction: float = 0.02,
    label_noise: float = 0.02,
    name: str = "sparse",
) -> SparseDataset:
    """Sparse binary classification with trigram-like feature statistics.

    Each sample activates ``~nnz_per_sample`` features drawn from a
    power-law popularity distribution (text n-gram features are heavily
    skewed); values are positive counts. Labels come from a sparse ground
    truth separator over a random informative subset, flipped with
    probability ``label_noise``.
    """
    if n_samples < 1 or n_features < 1:
        raise ValueError("n_samples and n_features must be positive")
    if not 1 <= nnz_per_sample <= n_features:
        raise ValueError(f"nnz_per_sample must be in [1, {n_features}]")
    rng = np.random.default_rng(seed)
    probs = _powerlaw_feature_probs(n_features, powerlaw_exponent, rng)

    rows: list[np.ndarray] = []
    indptr = np.zeros(n_samples + 1, dtype=np.int64)
    for i in range(n_samples):
        m = max(1, int(rng.poisson(nnz_per_sample)))
        cols = np.unique(rng.choice(n_features, size=m, p=probs))
        rows.append(cols)
        indptr[i + 1] = indptr[i] + cols.size
    indices = np.concatenate(rows)
    data = rng.exponential(1.0, size=indices.size).astype(np.float32) + 0.1
    X = sp.csr_matrix((data, indices, indptr), shape=(n_samples, n_features))
    # row-normalise so margins are O(1) regardless of nnz
    norms = np.sqrt(X.multiply(X).sum(axis=1)).A.ravel()
    X = sp.diags(1.0 / np.maximum(norms, 1e-8)).dot(X).tocsr().astype(np.float32)

    n_informative = max(8, int(n_features * informative_fraction))
    informative = rng.choice(n_features, size=min(n_informative, n_features), replace=False)
    w_true = np.zeros(n_features, dtype=np.float64)
    w_true[informative] = rng.standard_normal(informative.size) * 4.0
    margins = X @ w_true
    y = np.where(margins >= 0, 1.0, -1.0)
    flips = rng.random(n_samples) < label_noise
    y[flips] *= -1
    return SparseDataset(
        X=X,
        y=y.astype(np.float32),
        name=name,
        meta={
            "nnz_per_sample": nnz_per_sample,
            "powerlaw_exponent": powerlaw_exponent,
            "informative": informative,
        },
    )


def make_url_like(scale: float = 0.01, n_samples: int | None = None, seed: int = 1) -> SparseDataset:
    """URL-reputation-like data (Table 1: N=3,231,961; ~115 nnz/sample).

    ``scale`` shrinks the dimension (and default sample count) so the
    workload fits the test machine; the density *per sample* is preserved
    relative to the lower dimension, which is what drives gradient fill-in.
    """
    n_features = max(1000, int(3_231_961 * scale))
    if n_samples is None:
        n_samples = max(500, int(2_396_130 * scale * 0.01))
    return make_sparse_classification(
        n_samples, n_features, nnz_per_sample=115, seed=seed,
        powerlaw_exponent=1.15, name="url-like",
    )


def make_webspam_like(scale: float = 0.002, n_samples: int | None = None, seed: int = 2) -> SparseDataset:
    """Webspam-like data (Table 1: N=16,609,143; trigram features)."""
    n_features = max(1000, int(16_609_143 * scale))
    if n_samples is None:
        n_samples = max(500, int(350_000 * scale * 0.1))
    return make_sparse_classification(
        n_samples, n_features, nnz_per_sample=400, seed=seed,
        powerlaw_exponent=1.05, name="webspam-like",
    )


# ----------------------------------------------------------------------
# dense image-like data
# ----------------------------------------------------------------------
def make_dense_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    seed: int = 0,
    class_separation: float = 2.0,
    name: str = "dense",
) -> DenseDataset:
    """Gaussian-mixture classification (one anisotropic blob per class)."""
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    rng = np.random.default_rng(seed)
    means = rng.standard_normal((n_classes, n_features)) * class_separation / np.sqrt(n_features)
    y = rng.integers(0, n_classes, size=n_samples)
    X = rng.standard_normal((n_samples, n_features)).astype(np.float32)
    X += means[y].astype(np.float32)
    return DenseDataset(X=X, y=y.astype(np.int64), n_classes=n_classes, name=name)


def make_cifar_like(n_samples: int = 2048, seed: int = 3, dim: int = 3072) -> DenseDataset:
    """CIFAR-10-like stand-in: 10 classes, 32x32x3-dimensional blobs."""
    return make_dense_classification(
        n_samples, dim, 10, seed=seed, class_separation=3.0, name="cifar-like"
    )


def make_imagenet_like(
    n_samples: int = 2048, n_classes: int = 100, dim: int = 4096, seed: int = 4
) -> DenseDataset:
    """ImageNet-like stand-in: many classes, higher dimension, harder blobs."""
    return make_dense_classification(
        n_samples, dim, n_classes, seed=seed, class_separation=2.0, name="imagenet-like"
    )


# ----------------------------------------------------------------------
# sequence data
# ----------------------------------------------------------------------
def make_sequence_task(
    n_samples: int = 2048,
    seq_len: int = 20,
    vocab_size: int = 256,
    n_classes: int = 8,
    seed: int = 5,
) -> SequenceDataset:
    """ATIS-like intent classification: trigger tokens determine the label.

    Each class owns a small set of trigger tokens; a sample of class ``c``
    contains 2-4 of class c's triggers at random positions amid background
    tokens. An LSTM must aggregate over the sequence to classify.
    """
    rng = np.random.default_rng(seed)
    triggers_per_class = 4
    triggers = rng.choice(
        np.arange(vocab_size // 2, vocab_size),
        size=(n_classes, triggers_per_class),
        replace=False,
    )
    y = rng.integers(0, n_classes, size=n_samples)
    tokens = rng.integers(0, vocab_size // 2, size=(n_samples, seq_len))
    for i in range(n_samples):
        count = rng.integers(2, 5)
        positions = rng.choice(seq_len, size=count, replace=False)
        tokens[i, positions] = rng.choice(triggers[y[i]], size=count)
    return SequenceDataset(
        tokens=tokens.astype(np.int64),
        y=y.astype(np.int64),
        vocab_size=vocab_size,
        n_classes=n_classes,
    )


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def partition_rows(n_samples: int, nparts: int, rank: int) -> slice:
    """Contiguous row shard of rank ``rank`` out of ``nparts`` (balanced)."""
    if not 0 <= rank < nparts:
        raise ValueError(f"rank {rank} out of range for {nparts} parts")
    lo = rank * n_samples // nparts
    hi = (rank + 1) * n_samples // nparts
    return slice(lo, hi)
