"""On-disk dataset format with rank-sliced loading (MPI-IO stand-in, §7).

MPI-OPT "implements efficient distributed partitioning of any dataset
converted in the predefined format using MPI-IO": every rank reads only
its contiguous row shard straight from the shared file. We reproduce the
behaviour with a directory of raw numpy arrays and memory-mapped
range reads — each rank touches only the bytes of its own shard (plus the
O(n_samples) row-pointer array), never the whole matrix.

Layout of ``<path>/``::

    meta.json      {"n_samples", "n_features", "name", "format": "csr-v1"}
    indptr.npy     int64 [n_samples + 1]
    indices.npy    int32 [nnz]
    data.npy       float32 [nnz]
    labels.npy     float32 [n_samples]
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from .datasets import SparseDataset, partition_rows

__all__ = ["save_dataset", "load_shard", "load_dataset", "dataset_info"]

_FORMAT = "csr-v1"


def save_dataset(path: str | Path, dataset: SparseDataset) -> Path:
    """Write a sparse dataset in the partitionable on-disk format."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    X = dataset.X.tocsr()
    X.sort_indices()
    meta = {
        "n_samples": int(X.shape[0]),
        "n_features": int(X.shape[1]),
        "name": dataset.name,
        "format": _FORMAT,
    }
    (path / "meta.json").write_text(json.dumps(meta))
    np.save(path / "indptr.npy", X.indptr.astype(np.int64))
    np.save(path / "indices.npy", X.indices.astype(np.int32))
    np.save(path / "data.npy", X.data.astype(np.float32))
    np.save(path / "labels.npy", dataset.y.astype(np.float32))
    return path


def dataset_info(path: str | Path) -> dict:
    """Read the metadata header (cheap; no array data touched)."""
    meta = json.loads((Path(path) / "meta.json").read_text())
    if meta.get("format") != _FORMAT:
        raise ValueError(f"unsupported dataset format {meta.get('format')!r}")
    return meta


def load_shard(path: str | Path, rank: int, nranks: int) -> SparseDataset:
    """Load only rank ``rank``'s contiguous row shard.

    The CSR buffers are opened memory-mapped and only the shard's byte
    ranges are materialised — the parallel-I/O access pattern of MPI-OPT.
    """
    path = Path(path)
    meta = dataset_info(path)
    rows = partition_rows(meta["n_samples"], nranks, rank)

    indptr = np.load(path / "indptr.npy", mmap_mode="r")
    lo_ptr = int(indptr[rows.start])
    hi_ptr = int(indptr[rows.stop])

    indices = np.load(path / "indices.npy", mmap_mode="r")
    data = np.load(path / "data.npy", mmap_mode="r")
    labels = np.load(path / "labels.npy", mmap_mode="r")

    # materialise owned, writable copies (asarray on a memmap slice can
    # hand back a read-only view)
    shard_indptr = np.array(indptr[rows.start: rows.stop + 1], dtype=np.int64) - lo_ptr
    shard_indices = np.array(indices[lo_ptr:hi_ptr], dtype=np.int32)
    shard_data = np.array(data[lo_ptr:hi_ptr], dtype=np.float32)
    X = sp.csr_matrix(
        (shard_data, shard_indices, shard_indptr),
        shape=(rows.stop - rows.start, meta["n_features"]),
    )
    return SparseDataset(
        X=X,
        y=np.array(labels[rows.start: rows.stop], dtype=np.float32),
        name=meta["name"],
        meta={"shard": (rows.start, rows.stop), "path": str(path)},
    )


def load_dataset(path: str | Path) -> SparseDataset:
    """Load the full dataset (equivalent to the single-rank shard)."""
    return load_shard(path, 0, 1)
