"""Analytic alpha-beta cost bounds (paper §5.3)."""

from .bounds import (
    Bounds,
    beta_dense,
    beta_sparse,
    dense_rabenseifner_time,
    dense_rec_dbl_time,
    dense_ring_time,
    dsar_split_ag_bounds,
    latency_rec_dbl,
    latency_split,
    lemma_5_1_lower,
    lemma_5_2_lower,
    max_dsar_speedup,
    ssar_rec_dbl_bounds,
    ssar_split_ag_bounds,
)

__all__ = [
    "Bounds",
    "beta_dense",
    "beta_sparse",
    "dense_rabenseifner_time",
    "dense_rec_dbl_time",
    "dense_ring_time",
    "dsar_split_ag_bounds",
    "latency_rec_dbl",
    "latency_split",
    "lemma_5_1_lower",
    "lemma_5_2_lower",
    "max_dsar_speedup",
    "ssar_rec_dbl_bounds",
    "ssar_split_ag_bounds",
]
