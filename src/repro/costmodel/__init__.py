"""The cost-model layer: analytic bounds, the first-class
:class:`CostModel` every selection/replay/sweep consumer shares, fitted
(calibrated) models, and adaptive runtime selection."""

from .adaptive import AdaptiveSelector, AlgorithmSwitch, consistent_mean
from .bounds import (
    Bounds,
    beta_dense,
    beta_sparse,
    dense_rabenseifner_time,
    dense_rec_dbl_time,
    dense_ring_time,
    dsar_split_ag_bounds,
    latency_rec_dbl,
    latency_split,
    lemma_5_1_lower,
    lemma_5_2_lower,
    max_dsar_speedup,
    ssar_rec_dbl_bounds,
    ssar_split_ag_bounds,
)
from .calibrate import (
    DEFAULT_CALIBRATION_OUT,
    calibrate_from_doc,
    fit_alpha_beta,
    fit_gamma,
    run_calibration,
)
from .model import (
    MAX_AUTO_CHUNKS,
    RING_MIN_RANKS,
    SMALL_MESSAGE_BYTES,
    SPARSE_ALGORITHMS,
    CostModel,
    Instance,
    PredictedCost,
    SelectionReport,
)

__all__ = [
    "Bounds",
    "beta_dense",
    "beta_sparse",
    "dense_rabenseifner_time",
    "dense_rec_dbl_time",
    "dense_ring_time",
    "dsar_split_ag_bounds",
    "latency_rec_dbl",
    "latency_split",
    "lemma_5_1_lower",
    "lemma_5_2_lower",
    "max_dsar_speedup",
    "ssar_rec_dbl_bounds",
    "ssar_split_ag_bounds",
    "CostModel",
    "Instance",
    "PredictedCost",
    "SelectionReport",
    "AdaptiveSelector",
    "AlgorithmSwitch",
    "consistent_mean",
    "SMALL_MESSAGE_BYTES",
    "RING_MIN_RANKS",
    "SPARSE_ALGORITHMS",
    "MAX_AUTO_CHUNKS",
    "fit_alpha_beta",
    "fit_gamma",
    "calibrate_from_doc",
    "run_calibration",
    "DEFAULT_CALIBRATION_OUT",
]
