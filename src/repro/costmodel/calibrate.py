"""Fit a :class:`CostModel` from measurement: ``python -m repro calibrate``.

The presets in :mod:`repro.netsim.model` are class-representative
numbers; this module fits the same alpha/beta/gamma parameters from the
bench-kernels measurement layers *on the actual host*:

* per-tier **alpha/beta** from the transport round-trip curve — one-way
  time vs wire bytes is a line ``t(L) = alpha + beta L``, least-squares
  fitted per backend. The shared-memory backend stands in for the intra
  tier and the TCP socket backend for the inter tier (loopback TCP is
  the slowest transport the harness has — the honest stand-in for a
  network link on a single box);
* **gamma** from the microkernel layer: seconds per byte touched by the
  reused-scratch sparse merge (the §5.1 summation kernel).

The fitted model is written as a named JSON under ``results/`` via
:func:`repro.netsim.model.save_network`, and every ``--network`` flag
resolves it back through the ``"calibrated:<path>"`` spec — so a sweep,
a replay or the selector can run under the measured machine instead of a
preset. An existing bench-kernels document with at least two transport
sizes can be reused (``--bench``); otherwise the needed points are
measured directly (a few seconds in ``--quick`` mode).
"""

from __future__ import annotations

import platform
from pathlib import Path
from typing import Any

from ..config import INDEX_BYTES
from ..netsim.model import NetworkModel, TieredNetworkModel, save_network
from .model import CostModel

__all__ = [
    "fit_alpha_beta",
    "fit_gamma",
    "calibrate_from_doc",
    "run_calibration",
    "DEFAULT_CALIBRATION_OUT",
]

#: default output path of ``python -m repro calibrate``.
DEFAULT_CALIBRATION_OUT = Path("results") / "calibrated_network.json"

#: transport backend standing in for each tier (first available wins).
INTRA_BACKENDS = ("shmem", "process")
INTER_BACKENDS = ("socket", "process")

#: bytes per sparse (index, value) pair on the wire (float32 payload).
_PAIR_BYTES = INDEX_BYTES + 4


def fit_alpha_beta(sizes_bytes: list[float], times_s: list[float]) -> tuple[float, float]:
    """Least-squares fit of ``t(L) = alpha + beta * L``, clamped to >= 0.

    With a single point the fit is underdetermined and the whole time is
    attributed to latency (``beta = 0``). Negative fitted parameters
    (possible when measurement noise dominates the slope or intercept)
    are clamped to zero so the result is always a valid
    :class:`~repro.netsim.model.NetworkModel`.
    """
    if len(sizes_bytes) != len(times_s) or not sizes_bytes:
        raise ValueError("need equal, non-empty size and time lists")
    n = len(sizes_bytes)
    if n == 1:
        return max(float(times_s[0]), 0.0), 0.0
    mean_x = sum(sizes_bytes) / n
    mean_y = sum(times_s) / n
    var = sum((x - mean_x) ** 2 for x in sizes_bytes)
    if var == 0.0:
        return max(mean_y, 0.0), 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(sizes_bytes, times_s))
    beta = max(cov / var, 0.0)
    alpha = max(mean_y - beta * mean_x, 0.0)
    return alpha, beta


def fit_gamma(micro: dict) -> float:
    """Seconds per byte of local merge work, from the microkernel layer.

    Uses the reused-scratch sparse merge (the steady-state §5.1 kernel):
    merging two ``nnz``-pair streams touches ``2 nnz`` input pairs, the
    same accounting the trace replay charges compute with.
    """
    nnz = micro["params"]["nnz"]
    best = micro["merge_sparse_pairs_scratch"]["best_s"]
    touched = 2 * nnz * _PAIR_BYTES
    return best / touched if touched else 0.0


def _wire_bytes(dimension: int, nnz: int) -> int:
    """Encoded frame size of an ``nnz``-pair sparse stream (one message)."""
    import numpy as np

    from ..runtime.wire import encode_message
    from ..streams import SparseStream

    s = SparseStream.random_uniform(dimension, nnz, np.random.default_rng(7))
    return len(bytes(encode_message(1, 0, s.nbytes_payload, s)))


def _tier_points(
    transport: dict, backend: str, dimension: int
) -> tuple[list[float], list[float]]:
    """(wire bytes, one-way seconds) points for one backend's rows."""
    sizes, times = [], []
    for key, stats in transport.get(backend, {}).items():
        nnz = int(key.split("_", 1)[1])
        sizes.append(float(_wire_bytes(dimension, nnz)))
        times.append(stats["best_s"] / 2.0)  # round trip -> one way
    return sizes, times


def _pick_backend(transport: dict, preferences: tuple[str, ...]) -> str | None:
    for backend in preferences:
        if len(transport.get(backend, {})) >= 2:
            return backend
    return None


def calibrate_from_doc(
    transport: dict,
    micro: dict,
    dimension: int,
    name: str = "calibrated",
) -> tuple[TieredNetworkModel, dict]:
    """Fit the tiered model from measured transport + microkernel layers.

    Returns ``(model, provenance)``; raises ``ValueError`` when no
    backend has the two transport sizes a line fit needs.
    """
    intra_backend = _pick_backend(transport, INTRA_BACKENDS)
    inter_backend = _pick_backend(transport, INTER_BACKENDS)
    if intra_backend is None or inter_backend is None:
        raise ValueError(
            "calibration needs >= 2 transport round-trip sizes for an intra "
            f"backend {INTRA_BACKENDS} and an inter backend {INTER_BACKENDS}; "
            f"got {sorted(transport)}"
        )
    gamma = fit_gamma(micro)
    tiers: dict[str, NetworkModel] = {}
    fits: dict[str, Any] = {}
    for tier_name, backend in (("intra", intra_backend), ("inter", inter_backend)):
        sizes, times = _tier_points(transport, backend, dimension)
        alpha, beta = fit_alpha_beta(sizes, times)
        tiers[tier_name] = NetworkModel(
            name=f"{name}_{tier_name}", alpha=alpha, beta=beta, gamma=gamma
        )
        fits[tier_name] = {
            "backend": backend,
            "points": [
                {"wire_bytes": s, "one_way_s": t} for s, t in zip(sizes, times)
            ],
        }
    model = TieredNetworkModel(
        name=name, intra=tiers["intra"], inter=tiers["inter"], shared_uplink=True
    )
    provenance = {
        "source": "repro calibrate",
        "dimension": dimension,
        "gamma_kernel": "merge_sparse_pairs_scratch",
        "fits": fits,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    return model, provenance


def _measure(quick: bool, dimension: int) -> tuple[dict, dict, int]:
    """Run just the transport + microkernel measurements calibration needs.

    Imported lazily: :mod:`repro.tools.benchkernels` imports the
    collectives package, which imports this package — a module-level
    import here would be circular.
    """
    from ..tools.benchkernels import _bench_microkernels, _bench_transport

    if quick:
        iters, micro_iters = 5, 5
        sizes = [max(1, dimension // 200), max(2, dimension // 50), max(4, dimension // 10)]
    else:
        iters, micro_iters = 40, 30
        sizes = [dimension // 800, dimension // 100, dimension // 25, dimension // 10]
    backends = sorted(set(INTRA_BACKENDS + INTER_BACKENDS))
    transport = _bench_transport(backends, dimension, sizes, iters)
    micro = _bench_microkernels(dimension, max(1, dimension // 100), micro_iters)
    return transport, micro, dimension


def run_calibration(
    out: "str | Path | None" = None,
    quick: bool = True,
    dimension: int | None = None,
    bench: "str | Path | None" = None,
    name: str = "calibrated",
) -> tuple[TieredNetworkModel, Path, dict]:
    """Measure (or reuse ``bench``), fit, and persist a calibrated model.

    Returns ``(model, path, provenance)``. When ``bench`` points at a
    bench-kernels JSON with at least two transport sizes its rows are
    reused; otherwise — including for quick CI documents, which record a
    single round-trip size — the needed points are measured here.
    """
    transport = micro = None
    if bench is not None:
        import json

        doc = json.loads(Path(bench).read_text())
        dim = doc.get("params", {}).get("dimension", dimension or (1 << 16))
        t = doc.get("transport_roundtrip", {})
        m = doc.get("microkernels")
        if (
            m is not None
            and _pick_backend(t, INTRA_BACKENDS)
            and _pick_backend(t, INTER_BACKENDS)
        ):
            transport, micro, dimension = t, m, dim
    if transport is None or micro is None:
        transport, micro, dimension = _measure(quick, dimension or (1 << 16))
    model, provenance = calibrate_from_doc(transport, micro, dimension, name=name)
    provenance["quick"] = quick
    provenance["reused_bench"] = str(bench) if bench is not None else None
    path = save_network(model, Path(out) if out is not None else DEFAULT_CALIBRATION_OUT,
                        provenance=provenance)
    return model, path, provenance


def calibrated_cost_model(path: "str | Path") -> CostModel:
    """A :class:`CostModel` over a previously fitted model JSON."""
    return CostModel.resolve(f"calibrated:{path}")
