"""The first-class cost model behind every algorithm decision.

Historically the alpha/beta/gamma reasoning lived in four places that
could silently disagree: the selector's switch-point heuristics
(`collectives/selector.py`), the analytic bounds (`costmodel/bounds.py`),
the replay presets (`netsim/model.py`) and the Appendix-B fill-in
(`analysis/density.py`). :class:`CostModel` is the one object that owns
all of them: it wraps a network model (flat or tiered), charges compute
at that model's ``gamma``, estimates fill-in with the Appendix-B
expectation, and exposes

* :meth:`CostModel.predict` — a per-algorithm
  :class:`PredictedCost` with the latency / bandwidth / compute split and
  the intra/inter leg decomposition the pipelined makespan needs;
* :meth:`CostModel.rank` — the full §5.3 selection as an inspectable,
  serializable :class:`SelectionReport` listing every candidate's
  predicted time (``choose_algorithm`` is a thin wrapper over this);
* :meth:`CostModel.auto_chunks` — the pipeline depth minimizing the
  chunked hierarchical makespan ``c + (K-1) max(c, m) + m`` (the
  ``overlap_step_time`` curve) for ``chunks="auto"``;
* :meth:`CostModel.resolve` — construction from any network spec,
  including ``"calibrated:<path>"`` models fitted by
  :mod:`repro.costmodel.calibrate`.

The *choice* :meth:`rank` reports follows the paper's §5.3 switching
procedure (delta threshold, small-message switch point, ring scale gate,
two-tier DSAR comparison) — deliberately, so selection stays stable and
explainable — while the per-candidate times give the quantitative
picture those thresholds summarize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.density import expected_union_size
from ..config import INDEX_BYTES, delta_threshold
from ..netsim.model import (
    TIERED_IB_FDR,
    NetworkModel,
    TieredNetworkModel,
    resolve_network,
)
from ..runtime.topology import Topology, check_topology_size

__all__ = [
    "Instance",
    "PredictedCost",
    "SelectionReport",
    "CostModel",
    "SMALL_MESSAGE_BYTES",
    "RING_MIN_RANKS",
    "SPARSE_ALGORITHMS",
    "MAX_AUTO_CHUNKS",
]

#: below this many reduced payload bytes, latency dominates bandwidth and
#: recursive doubling wins (the classic small-message switch point).
SMALL_MESSAGE_BYTES = 64 * 1024

#: the ring's 2 (P-1) alpha latency only amortizes at scale; below this
#: world size the split phase's (P-1) alpha is never worth trading for it.
RING_MIN_RANKS = 8

#: every algorithm the model can predict and the selector can emit.
SPARSE_ALGORITHMS = (
    "ssar_rec_dbl",
    "ssar_split_ag",
    "ssar_ring",
    "ssar_hier",
    "dsar_split_ag",
    "dsar_hier",
)

#: the hierarchical (chunkable) algorithms.
CHUNKED = ("ssar_hier", "dsar_hier")

#: upper bound of the ``chunks="auto"`` search; past this depth the
#: per-chunk alpha terms always dominate any further overlap gain.
MAX_AUTO_CHUNKS = 16


@dataclass(frozen=True)
class Instance:
    """One allreduce problem shape: ``N``, ``P``, ``k`` (+ itemsize).

    ``expected_k`` is the user's estimate of the reduced size ``K``
    ("we require the user to have some rough idea about K", §5.3);
    ``None`` defers to the uniform Appendix-B fill-in expectation.
    """

    dimension: int
    nranks: int
    nnz_per_rank: float
    value_itemsize: int = 4
    expected_k: float | None = None

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if not 0 <= self.nnz_per_rank <= self.dimension:
            raise ValueError(
                f"nnz_per_rank must be in [0, {self.dimension}], got {self.nnz_per_rank}"
            )

    @property
    def pair_bytes(self) -> int:
        """Wire bytes per sparse (index, value) pair."""
        return INDEX_BYTES + self.value_itemsize

    @property
    def dense_bytes(self) -> float:
        """Bytes of the dense representation of the result."""
        return self.dimension * self.value_itemsize

    @property
    def delta(self) -> float:
        """The sparse-efficiency threshold on ``K`` (paper §4)."""
        return delta_threshold(self.dimension, self.value_itemsize, INDEX_BYTES)

    def fill_in(self, nranks: int | None = None) -> float:
        """Appendix-B ``E[K]`` over ``nranks`` supports (default: all)."""
        p = self.nranks if nranks is None else nranks
        return expected_union_size(self.nnz_per_rank, self.dimension, p)

    def resolved_k(self) -> float:
        """The reduced-size estimate selection runs on."""
        return self.expected_k if self.expected_k is not None else self.fill_in()

    def to_dict(self) -> dict:
        return {
            "dimension": self.dimension,
            "nranks": self.nranks,
            "nnz_per_rank": self.nnz_per_rank,
            "value_itemsize": self.value_itemsize,
            "expected_k": self.expected_k,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Instance":
        return cls(**d)


@dataclass(frozen=True)
class PredictedCost:
    """One candidate algorithm's predicted wall-clock decomposition.

    ``time_s = latency_s + bandwidth_s + compute_s`` for ``chunks == 1``;
    for a chunked hierarchical run it is the pipelined makespan over the
    ``intra_s`` / ``inter_s`` legs instead (the two never double-count:
    ``intra_s + inter_s`` equals the unchunked total).
    """

    algorithm: str
    time_s: float
    latency_s: float
    bandwidth_s: float
    compute_s: float
    intra_s: float
    inter_s: float
    expected_k: float
    chunks: int = 1
    eligible: bool = True
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "time_s": self.time_s,
            "latency_s": self.latency_s,
            "bandwidth_s": self.bandwidth_s,
            "compute_s": self.compute_s,
            "intra_s": self.intra_s,
            "inter_s": self.inter_s,
            "expected_k": self.expected_k,
            "chunks": self.chunks,
            "eligible": self.eligible,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PredictedCost":
        return cls(**d)


@dataclass(frozen=True)
class SelectionReport:
    """The full record of one selection: every candidate, the choice, why.

    ``candidates`` are sorted eligible-first then by predicted time. The
    ``choice`` follows the §5.3 switching procedure (see
    :meth:`CostModel.rank`), which coincides with the fastest *eligible*
    candidate on well-separated shapes but is threshold-driven by design.
    Round-trips through ``to_dict``/``from_dict`` (JSON-safe).
    """

    instance: Instance
    network: str
    topology: str
    choice: str
    reason: str
    delta: float
    expected_k: float
    candidates: tuple = field(default_factory=tuple)

    def predicted(self, algorithm: str) -> PredictedCost:
        """The candidate row for ``algorithm`` (KeyError if unknown)."""
        for c in self.candidates:
            if c.algorithm == algorithm:
                return c
        raise KeyError(algorithm)

    def to_dict(self) -> dict:
        return {
            "instance": self.instance.to_dict(),
            "network": self.network,
            "topology": self.topology,
            "choice": self.choice,
            "reason": self.reason,
            "delta": self.delta,
            "expected_k": self.expected_k,
            "candidates": [c.to_dict() for c in self.candidates],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SelectionReport":
        return cls(
            instance=Instance.from_dict(d["instance"]),
            network=d["network"],
            topology=d["topology"],
            choice=d["choice"],
            reason=d["reason"],
            delta=d["delta"],
            expected_k=d["expected_k"],
            candidates=tuple(PredictedCost.from_dict(c) for c in d["candidates"]),
        )

    def describe(self) -> str:
        lines = [
            f"instance N={self.instance.dimension} P={self.instance.nranks} "
            f"k={self.instance.nnz_per_rank:g} (E[K]={self.expected_k:.0f}, "
            f"delta={self.delta:.0f}) on {self.network} [{self.topology}]",
            f"choice: {self.choice} — {self.reason}",
        ]
        for c in self.candidates:
            flag = " " if c.eligible else "x"
            note = f"  ({c.note})" if c.note else ""
            lines.append(
                f"  [{flag}] {c.algorithm:<14} {c.time_s * 1e6:12.1f} us "
                f"(lat {c.latency_s * 1e6:.1f} bw {c.bandwidth_s * 1e6:.1f} "
                f"cmp {c.compute_s * 1e6:.1f}){note}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _pipelined(intra_s: float, inter_s: float, lat_intra: float,
               lat_inter: float, chunks: int) -> float:
    """Makespan of ``chunks`` pipelined (intra leg, inter leg) stages.

    Mirrors :func:`repro.netsim.replay.overlap_step_time`: per-chunk leg
    times are the bandwidth/compute shares split ``chunks`` ways plus the
    *full* per-leg latency (alpha is paid per message, so chunking
    multiplies it), and the makespan is ``c + (K-1) max(c, m) + m``.
    """
    k = max(1, int(chunks))
    c = lat_intra + (intra_s - lat_intra) / k
    m = lat_inter + (inter_s - lat_inter) / k
    return c + (k - 1) * max(c, m) + m


@dataclass(frozen=True)
class CostModel:
    """Alpha-beta-gamma cost model over a (possibly tiered) network.

    The single object every cost consumer shares: the selector
    (:func:`repro.collectives.choose_algorithm` wraps :meth:`rank`), the
    sweeps and bench-kernels (predicted-vs-measured columns), the netsim
    replay (which reads :attr:`network`), and the adaptive runtime
    selector (:class:`repro.costmodel.AdaptiveSelector`).
    """

    network: "NetworkModel | TieredNetworkModel" = TIERED_IB_FDR

    # -- tier accessors -------------------------------------------------
    @property
    def name(self) -> str:
        return self.network.name

    @property
    def tiered(self) -> bool:
        return isinstance(self.network, TieredNetworkModel)

    @property
    def intra(self) -> NetworkModel:
        """The fast (intra-host) tier; the whole model when flat."""
        return self.network.intra if self.tiered else self.network

    @property
    def inter(self) -> NetworkModel:
        """The slow (inter-host) tier; the whole model when flat."""
        return self.network.inter if self.tiered else self.network

    @property
    def shared_uplink(self) -> bool:
        """Whether co-hosted ranks serialize on one NIC (congestion)."""
        return self.network.shared_uplink if self.tiered else True

    @property
    def gamma(self) -> float:
        return self.network.gamma

    # -- construction ---------------------------------------------------
    @classmethod
    def resolve(cls, spec) -> "CostModel":
        """A model from any network spec :func:`resolve_network` accepts
        (instance, preset name, ``tiered:...``, ``calibrated:<path>``) —
        or an existing :class:`CostModel`, returned as-is."""
        if isinstance(spec, CostModel):
            return spec
        return cls(resolve_network(spec))

    @classmethod
    def default(cls) -> "CostModel":
        """The canonical tiered cluster (shared memory + InfiniBand)."""
        return cls(TIERED_IB_FDR)

    # -- shape helpers --------------------------------------------------
    @staticmethod
    def _shape(inst: Instance, topology: "Topology | None") -> tuple[int, int, int]:
        """``(P, H, m)`` — ranks, hosts, max ranks per host."""
        P = inst.nranks
        if topology is not None and topology.is_hierarchical:
            return P, topology.nnodes, min(topology.max_ranks_per_node, P)
        return P, P, 1

    def _congestion(self, m: int) -> int:
        """Transmit-serialization factor on a shared per-host uplink."""
        return m if self.shared_uplink else 1

    # -- per-algorithm predictions --------------------------------------
    def predict(
        self,
        instance: Instance,
        algorithm: str,
        topology: "Topology | None" = None,
        chunks: int = 1,
    ) -> PredictedCost:
        """Predicted wall-clock for one algorithm on one instance.

        ``chunks`` > 1 applies the pipelined makespan to the hierarchical
        algorithms; the flat algorithms ignore it (as they do at
        runtime).
        """
        if algorithm not in SPARSE_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(SPARSE_ALGORITHMS)}"
            )
        if topology is not None:
            check_topology_size(topology, instance.nranks)
        fn = getattr(self, f"_predict_{algorithm}")
        return fn(instance, topology, chunks)

    def _finish(
        self,
        instance: Instance,
        algorithm: str,
        lat_i: float,
        bw_i: float,
        lat_e: float,
        bw_e: float,
        comp: float,
        chunks: int,
        eligible: bool,
        note: str,
        chunkable: bool = False,
    ) -> PredictedCost:
        intra_s = lat_i + bw_i + comp  # compute overlaps with the local leg
        inter_s = lat_e + bw_e
        k = max(1, int(chunks)) if chunkable else 1
        if k > 1:
            time_s = _pipelined(intra_s, inter_s, lat_i, lat_e, k)
        else:
            time_s = intra_s + inter_s
        return PredictedCost(
            algorithm=algorithm,
            time_s=time_s,
            latency_s=lat_i + lat_e,
            bandwidth_s=bw_i + bw_e,
            compute_s=comp,
            intra_s=intra_s,
            inter_s=inter_s,
            expected_k=instance.resolved_k(),
            chunks=k,
            eligible=eligible,
            note=note,
        )

    def _predict_ssar_rec_dbl(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        pair = inst.pair_bytes
        rounds = math.ceil(math.log2(P)) if P > 1 else 0
        intra_rounds = min(rounds, math.ceil(math.log2(m))) if m > 1 else 0
        lat_i = bw_i = lat_e = bw_e = comp = 0.0
        cong = self._congestion(m)
        for r in range(rounds):
            nbytes = inst.fill_in(2**r) * pair
            if r < intra_rounds:
                lat_i += self.intra.alpha
                bw_i += self.intra.beta * nbytes
            else:
                # past the host boundary every co-hosted rank exchanges
                # with a remote peer at once -> m transmits per uplink
                lat_e += self.inter.alpha
                bw_e += self.inter.beta * nbytes * cong
            comp += self.gamma * 2 * nbytes  # merge reads both operands
        return self._finish(
            inst, "ssar_rec_dbl", lat_i, bw_i, lat_e, bw_e, comp, chunks,
            eligible=True, note="chunks ignored" if chunks not in (1, "auto") else "",
        )

    def _predict_ssar_split_ag(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        pair = inst.pair_bytes
        k_bytes = inst.nnz_per_rank * pair
        ek_bytes = inst.resolved_k() * pair
        cong = self._congestion(m)
        lat_i = bw_i = lat_e = bw_e = comp = 0.0
        if P > 1:
            # split phase: (P-1) direct sends of the local stream's slices
            lat_i += (m - 1) * self.intra.alpha
            lat_e += (P - m) * self.inter.alpha
            bw_i += self.intra.beta * k_bytes * (m - 1) / P
            bw_e += self.inter.beta * k_bytes * (P - m) / P * cong
            # sparse allgather of the reduced slices (recursive doubling)
            rounds = math.ceil(math.log2(P))
            intra_rounds = min(rounds, math.ceil(math.log2(m))) if m > 1 else 0
            for r in range(rounds):
                nbytes = min(ek_bytes / P * (2**r), ek_bytes)
                if r < intra_rounds:
                    lat_i += self.intra.alpha
                    bw_i += self.intra.beta * nbytes
                else:
                    lat_e += self.inter.alpha
                    bw_e += self.inter.beta * nbytes * cong
        comp = self.gamma * 2 * (k_bytes + ek_bytes)
        return self._finish(
            inst, "ssar_split_ag", lat_i, bw_i, lat_e, bw_e, comp, chunks,
            eligible=True, note="",
        )

    def _predict_ssar_ring(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        ek_bytes = inst.resolved_k() * inst.pair_bytes
        lat_e = bw_e = comp = 0.0
        if P > 1:
            # critical path: a host-boundary rank pays every one of its
            # 2(P-1) slice sends at inter rates (one message per uplink
            # per step, so no congestion factor)
            steps = 2 * (P - 1)
            lat_e = steps * self.inter.alpha
            bw_e = self.inter.beta * ek_bytes * steps / P
            comp = self.gamma * 2 * ek_bytes * (P - 1) / P
        return self._finish(
            inst, "ssar_ring", 0.0, 0.0, lat_e, bw_e, comp, chunks,
            eligible=P >= 2,
            note="" if P >= 2 else "needs >= 2 ranks",
        )

    def _predict_ssar_hier(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        hierarchical = topology is not None and topology.is_hierarchical
        pair = inst.pair_bytes
        ek_bytes = inst.resolved_k() * pair
        lat_i = bw_i = lat_e = bw_e = comp = 0.0
        # intra-host tree reduce: round r sends unions of 2^r supports
        intra_rounds = math.ceil(math.log2(m)) if m > 1 else 0
        for r in range(intra_rounds):
            nbytes = inst.fill_in(2**r) * pair
            lat_i += self.intra.alpha
            bw_i += self.intra.beta * nbytes
            comp += self.gamma * 2 * nbytes
        # leader recursive doubling: round r sends unions of m * 2^r
        leader_rounds = math.ceil(math.log2(H)) if H > 1 else 0
        for r in range(leader_rounds):
            nbytes = inst.fill_in(m * 2**r) * pair
            lat_e += self.inter.alpha
            bw_e += self.inter.beta * nbytes
            comp += self.gamma * 2 * nbytes
        # intra-host binomial broadcast of the reduced result
        lat_i += intra_rounds * self.intra.alpha
        bw_i += intra_rounds * self.intra.beta * ek_bytes
        return self._finish(
            inst, "ssar_hier", lat_i, bw_i, lat_e, bw_e, comp, chunks,
            eligible=hierarchical,
            note="" if hierarchical else "needs a hierarchical topology",
            chunkable=True,
        )

    def _predict_dsar_split_ag(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        k_bytes = inst.nnz_per_rank * inst.pair_bytes
        dense = inst.dense_bytes
        lat_e = bw_e = 0.0
        if P > 1:
            # flat DSAR: every rank's split slices and (forwarded) dense
            # partitions cross the inter tier; the busiest uplink carries
            # m ranks' share
            lat_e = (P - 1) * self.inter.alpha
            bw_e = self.inter.beta * m * (P - m) / P * (k_bytes + dense)
        comp = self.gamma * (2 * k_bytes + 2 * dense)
        return self._finish(
            inst, "dsar_split_ag", 0.0, 0.0, lat_e, bw_e, comp, chunks,
            eligible=True, note="",
        )

    def _predict_dsar_hier(self, inst, topology, chunks) -> PredictedCost:
        P, H, m = self._shape(inst, topology)
        hierarchical = topology is not None and topology.is_hierarchical
        pair = inst.pair_bytes
        dense = inst.dense_bytes
        k_local_bytes = inst.fill_in(m) * pair
        intra_rounds = math.ceil(math.log2(m)) if m > 1 else 0
        lat_e = bw_e = lat_i = bw_i = 0.0
        if H > 1:
            # hierarchical DSAR: one leader per uplink, merged unions only
            lat_e = (H - 1) * self.inter.alpha
            bw_e = self.inter.beta * (H - 1) / H * (k_local_bytes + dense)
        # plus the intra-host tree reduce and dense broadcast rounds
        lat_i = intra_rounds * 2 * self.intra.alpha
        bw_i = intra_rounds * self.intra.beta * (k_local_bytes + dense)
        comp = self.gamma * (2 * k_local_bytes + 2 * dense)
        return self._finish(
            inst, "dsar_hier", lat_i, bw_i, lat_e, bw_e, comp, chunks,
            eligible=hierarchical,
            note="" if hierarchical else "needs a hierarchical topology",
            chunkable=True,
        )

    # -- selection ------------------------------------------------------
    def rank(
        self,
        instance: Instance,
        topology: "Topology | None" = None,
        small_message_bytes: int = SMALL_MESSAGE_BYTES,
        chunks: int = 1,
    ) -> SelectionReport:
        """Run the §5.3 selection and report every candidate's cost.

        The decision procedure is the paper's switching heuristic —
        identical to the historical ``choose_algorithm``:

        1. ``E[K] > delta`` → dynamic instance → DSAR; on a hierarchical
           topology the flat vs leader-only dense stage is decided by the
           two predicted times (the old two-tier comparison);
        2. otherwise hierarchical topology → ``ssar_hier``;
        3. otherwise reduced payload under the small-message switch point
           → ``ssar_rec_dbl``;
        4. otherwise bandwidth-bound at scale (``P >= RING_MIN_RANKS``
           and per-rank slice above the switch point) → ``ssar_ring``;
        5. otherwise → ``ssar_split_ag``.
        """
        if topology is not None:
            # the launcher-uniform size check: a topology for a different
            # world would feed garbage H/m into the two-tier comparison
            check_topology_size(topology, instance.nranks)
        expected_k = instance.resolved_k()
        delta = instance.delta
        hierarchical = topology is not None and topology.is_hierarchical
        candidates = {
            algo: self.predict(instance, algo, topology, chunks)
            for algo in SPARSE_ALGORITHMS
        }
        if expected_k > delta:
            if hierarchical and (
                candidates["dsar_hier"].time_s < candidates["dsar_split_ag"].time_s
            ):
                choice = "dsar_hier"
                reason = (
                    f"dynamic instance (E[K]={expected_k:.0f} > delta={delta:.0f}); "
                    "two-tier model favors the leader-only dense stage"
                )
            else:
                choice = "dsar_split_ag"
                reason = (
                    f"dynamic instance (E[K]={expected_k:.0f} > delta={delta:.0f})"
                )
        elif hierarchical:
            choice = "ssar_hier"
            reason = "static-sparse on a hierarchical topology: reduce intra-host first"
        else:
            reduced_bytes = expected_k * instance.pair_bytes
            if reduced_bytes <= small_message_bytes:
                choice = "ssar_rec_dbl"
                reason = (
                    f"latency-bound: reduced payload {reduced_bytes:.0f} B <= "
                    f"{small_message_bytes} B switch point"
                )
            elif (
                instance.nranks >= RING_MIN_RANKS
                and reduced_bytes > small_message_bytes * instance.nranks
            ):
                choice = "ssar_ring"
                reason = "bandwidth-bound at scale: per-rank slice above the switch point"
            else:
                choice = "ssar_split_ag"
                reason = "large static-sparse payload: split + sparse allgather"
        ordered = tuple(
            sorted(candidates.values(), key=lambda c: (not c.eligible, c.time_s))
        )
        return SelectionReport(
            instance=instance,
            network=self.name,
            topology=topology.describe() if topology is not None else "flat",
            choice=choice,
            reason=reason,
            delta=delta,
            expected_k=expected_k,
            candidates=ordered,
        )

    def choose(
        self,
        instance: Instance,
        topology: "Topology | None" = None,
        small_message_bytes: int = SMALL_MESSAGE_BYTES,
    ) -> str:
        """Just the chosen algorithm name (see :meth:`rank`)."""
        return self.rank(instance, topology, small_message_bytes).choice

    # -- auto-chunking --------------------------------------------------
    def auto_chunks(
        self,
        instance: Instance,
        algorithm: str,
        topology: "Topology | None" = None,
        max_chunks: int = MAX_AUTO_CHUNKS,
    ) -> int:
        """The pipeline depth minimizing the chunked makespan curve.

        Evaluates :meth:`predict` at every ``K in [1, max_chunks]`` for
        the hierarchical algorithms and returns the argmin (smallest K on
        ties — fewer messages for the same makespan). Flat algorithms
        ignore chunking at runtime, so they always get 1.
        """
        if algorithm not in CHUNKED:
            return 1
        best_k, best_t = 1, None
        for k in range(1, max(1, max_chunks) + 1):
            t = self.predict(instance, algorithm, topology, chunks=k).time_s
            if best_t is None or t < best_t:
                best_k, best_t = k, t
        return best_k
