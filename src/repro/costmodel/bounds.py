"""Analytic alpha-beta bounds from §5.3 and Lemmas 5.1 / 5.2.

All formulas return *seconds* under a :class:`~repro.netsim.model.NetworkModel`.
The paper states them in "items"; we convert with

* ``beta_s`` — transfer time of one sparse index/value pair
  (``beta * (c + isize)`` seconds),
* ``beta_d`` — transfer time of one dense value (``beta * isize``).

The replayed execution times of the actual algorithms must land between the
corresponding lower and upper bounds (validated by
``benchmarks/bench_bounds_validation.py`` and the costmodel tests); the
bounds ignore local reduction time, so replays are compared with
``gamma = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import INDEX_BYTES, delta_threshold
from ..netsim.model import NetworkModel

__all__ = [
    "Bounds",
    "beta_sparse",
    "beta_dense",
    "latency_rec_dbl",
    "latency_split",
    "ssar_rec_dbl_bounds",
    "ssar_split_ag_bounds",
    "dsar_split_ag_bounds",
    "dense_ring_time",
    "dense_rec_dbl_time",
    "dense_rabenseifner_time",
    "lemma_5_1_lower",
    "lemma_5_2_lower",
    "max_dsar_speedup",
]


@dataclass(frozen=True)
class Bounds:
    """A (lower, upper) runtime sandwich in seconds."""

    lower: float
    upper: float

    def contains(self, t: float, slack: float = 1.05) -> bool:
        """Check ``t`` lies in the sandwich, allowing ``slack`` headroom."""
        return self.lower / slack <= t <= self.upper * slack


def beta_sparse(model: NetworkModel, value_itemsize: int = 4) -> float:
    """Seconds per sparse index/value pair (``beta_s``)."""
    return model.beta * (INDEX_BYTES + value_itemsize)


def beta_dense(model: NetworkModel, value_itemsize: int = 4) -> float:
    """Seconds per dense value (``beta_d < beta_s``)."""
    return model.beta * value_itemsize


def latency_rec_dbl(nranks: int, model: NetworkModel) -> float:
    """``L1(P) = log2(P) alpha`` — latency of the doubling schedules."""
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    return math.log2(nranks) * model.alpha if nranks > 1 else 0.0


def latency_split(nranks: int, model: NetworkModel) -> float:
    """``L2(P) = (P-1) alpha + L1(P)`` — split phase plus allgather."""
    return (nranks - 1) * model.alpha + latency_rec_dbl(nranks, model)


def ssar_rec_dbl_bounds(
    nranks: int, nnz: int, model: NetworkModel, value_itemsize: int = 4
) -> Bounds:
    """§5.3.1: ``L1 + log2(P) k beta_s <= T <= L1 + (P-1) k beta_s``."""
    l1 = latency_rec_dbl(nranks, model)
    bs = beta_sparse(model, value_itemsize)
    log_p = math.log2(nranks) if nranks > 1 else 0.0
    return Bounds(l1 + log_p * nnz * bs, l1 + (nranks - 1) * nnz * bs)


def ssar_split_ag_bounds(
    nranks: int, nnz: int, model: NetworkModel, value_itemsize: int = 4
) -> Bounds:
    """§5.3.2: ``L2 + 2 (P-1)/P k beta_s <= T <= L2 + P k beta_s``."""
    l2 = latency_split(nranks, model)
    bs = beta_sparse(model, value_itemsize)
    frac = (nranks - 1) / nranks
    return Bounds(l2 + 2 * frac * nnz * bs, l2 + nranks * nnz * bs)


def dsar_split_ag_bounds(
    nranks: int,
    nnz: int,
    dimension: int,
    model: NetworkModel,
    value_itemsize: int = 4,
) -> Bounds:
    """§5.3.3: ``L2 + (P-1)/P N beta_d <= T <= L2 + k beta_s + (P-1)/P N beta_d``."""
    l2 = latency_split(nranks, model)
    bs = beta_sparse(model, value_itemsize)
    bd = beta_dense(model, value_itemsize)
    frac = (nranks - 1) / nranks
    dense_term = frac * dimension * bd
    return Bounds(l2 + dense_term, l2 + nnz * bs + dense_term)


def dense_ring_time(
    nranks: int, dimension: int, model: NetworkModel, value_itemsize: int = 4
) -> float:
    """Ring allreduce: ``2 (P-1) alpha + 2 (P-1)/P N beta_d``."""
    if nranks == 1:
        return 0.0
    bd = beta_dense(model, value_itemsize)
    frac = (nranks - 1) / nranks
    return 2 * (nranks - 1) * model.alpha + 2 * frac * dimension * bd


def dense_rec_dbl_time(
    nranks: int, dimension: int, model: NetworkModel, value_itemsize: int = 4
) -> float:
    """Recursive doubling: ``log2(P) (alpha + N beta_d)``."""
    if nranks == 1:
        return 0.0
    bd = beta_dense(model, value_itemsize)
    return math.log2(nranks) * (model.alpha + dimension * bd)


def dense_rabenseifner_time(
    nranks: int, dimension: int, model: NetworkModel, value_itemsize: int = 4
) -> float:
    """Rabenseifner (§5.3.2): ``2 log2(P) alpha + 2 (P-1)/P N beta_d``."""
    if nranks == 1:
        return 0.0
    bd = beta_dense(model, value_itemsize)
    frac = (nranks - 1) / nranks
    return 2 * math.log2(nranks) * model.alpha + 2 * frac * dimension * bd


def lemma_5_1_lower(
    nranks: int,
    nnz: int,
    model: NetworkModel,
    value_itemsize: int = 4,
    overlap: str = "none",
) -> float:
    """Lemma 5.1 lower bounds for sparse allreduce.

    ``overlap="none"`` is the maximum fill-in case K = kP:
    ``log2(P) alpha + (P-1) k beta_d``; ``overlap="full"`` is K = k:
    ``log2(P) alpha + 2 (P-1)/P k beta_d``.
    """
    l1 = latency_rec_dbl(nranks, model)
    bd = beta_dense(model, value_itemsize)
    if overlap == "none":
        return l1 + (nranks - 1) * nnz * bd
    if overlap == "full":
        return l1 + 2 * (nranks - 1) / nranks * nnz * bd
    raise ValueError(f"overlap must be 'none' or 'full', got {overlap!r}")


def lemma_5_2_lower(
    nranks: int, dimension: int, model: NetworkModel, value_itemsize: int = 4
) -> float:
    """Lemma 5.2: any DSAR algorithm needs ``>= log2(P) alpha + delta beta_d``."""
    delta = delta_threshold(dimension, value_itemsize, INDEX_BYTES)
    return latency_rec_dbl(nranks, model) + delta * beta_dense(model, value_itemsize)


def max_dsar_speedup(kappa: float) -> float:
    """Maximum sparse-over-dense speedup when the result is dense (§5.3.3).

    The dense allreduce bandwidth term is ``2 (P-1)/P N beta_d ~ 2 N beta_d``
    and the DSAR lower bound is ``delta beta_d = kappa N beta_d``, capping
    the speedup at ``2 / kappa`` (with ``kappa = 0.5`` this yields the 4x
    the paper quotes; the paper's "2 kappa" phrasing is the same quantity
    written for ``delta = kappa N`` with kappa expressed as a divisor).
    """
    if not 0 < kappa <= 1:
        raise ValueError(f"kappa must be in (0, 1], got {kappa}")
    return 2.0 / kappa
