"""Adaptive runtime algorithm selection under density drift.

SparCML's §5.3 selection assumes the user's "rough idea about K" holds
for the whole run — but real training sweeps density regimes (top-k
schedules warm up, gradients densify near convergence, elastic worlds
change ``P``). :class:`AdaptiveSelector` closes the loop: it tracks the
*realized* per-iteration sparsity with an EWMA over ``stream.nnz``,
re-runs :meth:`~repro.costmodel.CostModel.rank` when the estimate drifts
past a threshold (or the world size changes), and — crucially — agrees
on the estimate *collectively* so every rank switches algorithm on the
same iteration. The agreement is one cheap scalar round (a rank-ordered
gather to root plus a broadcast of the mean), the same rank-independent
resolution idiom the async driver uses for post-shrink worlds: the mean
of a deterministic, rank-ordered gather is bit-identical everywhere, so
the switch sequence replays identically on every backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .model import CostModel, Instance, SelectionReport

__all__ = ["AdaptiveSelector", "AlgorithmSwitch", "consistent_mean"]


def consistent_mean(comm, value: float) -> float:
    """One collectively-agreed scalar: the mean of every rank's ``value``.

    Root gathers (rank order is deterministic), reduces with ``fsum``
    (one fixed summation order), and broadcasts — so every rank receives
    the *same float*, bit for bit, regardless of backend or scheduling.
    At world size 1 this is free.
    """
    if comm.size == 1:
        return float(value)
    votes = comm.gather_to_root(float(value), root=0)
    mean = math.fsum(votes) / len(votes) if votes is not None else None
    return comm.bcast(mean, root=0)


@dataclass(frozen=True)
class AlgorithmSwitch:
    """One re-selection event in an adaptive run."""

    iteration: int
    algorithm: str
    previous: str | None
    estimate: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "algorithm": self.algorithm,
            "previous": self.previous,
            "estimate": self.estimate,
            "reason": self.reason,
        }


@dataclass
class AdaptiveSelector:
    """Re-select the allreduce algorithm when observed density drifts.

    Parameters
    ----------
    model:
        The :class:`~repro.costmodel.CostModel` selection runs under
        (default: the canonical tiered cluster).
    dimension, value_itemsize:
        The stream shape selection is for.
    ewma:
        Smoothing factor of the nnz estimate (1.0 = trust only the last
        iteration).
    drift_threshold:
        Relative drift of the agreed estimate from the anchor (the
        estimate at the last selection) that triggers a re-rank.
    sync_every:
        Run the collective agreement every this many iterations; between
        agreements the current algorithm is reused unchanged (a world
        size change always forces an agreement + re-rank).

    Every rank must call :meth:`step` once per iteration with its local
    ``stream.nnz``; the returned algorithm name is identical on all
    ranks. :attr:`switches` records every (re-)selection; :attr:`report`
    holds the latest full :class:`~repro.costmodel.SelectionReport`.
    """

    model: CostModel = field(default_factory=CostModel.default)
    dimension: int = 0
    value_itemsize: int = 4
    ewma: float = 0.25
    drift_threshold: float = 0.25
    sync_every: int = 1

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {self.ewma}")
        if self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if self.sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {self.sync_every}")
        self.model = CostModel.resolve(self.model)
        self.reset()

    def reset(self) -> None:
        """Forget all observations (e.g. after a dataset change)."""
        self._local_ewma: float | None = None
        self._anchor: float | None = None
        self._world_size: int | None = None
        self._iteration = 0
        self.algorithm: str | None = None
        self.report: SelectionReport | None = None
        self.switches: list[AlgorithmSwitch] = []

    # ------------------------------------------------------------------
    def observe(self, local_nnz: float) -> float:
        """Fold one local observation into the EWMA (non-collective)."""
        x = float(local_nnz)
        if self._local_ewma is None:
            self._local_ewma = x
        else:
            self._local_ewma += self.ewma * (x - self._local_ewma)
        return self._local_ewma

    def step(self, comm, local_nnz: float) -> str:
        """One iteration: observe, agree, maybe re-select; returns the
        algorithm every rank should run this iteration.

        Collective when it syncs (all ranks must call it the same
        iteration — the natural contract, since they are about to run an
        allreduce together anyway).
        """
        self.observe(local_nnz)
        self._iteration += 1
        resized = self._world_size is not None and comm.size != self._world_size
        due = (self._iteration - 1) % self.sync_every == 0
        if self.algorithm is not None and not due and not resized:
            return self.algorithm
        estimate = consistent_mean(comm, self._local_ewma)
        estimate = min(max(estimate, 0.0), float(self.dimension))
        self._world_size = comm.size
        drifted = (
            self._anchor is not None
            and abs(estimate - self._anchor) > self.drift_threshold * max(self._anchor, 1.0)
        )
        if self.algorithm is None or resized or drifted:
            reason = (
                "initial selection" if self.algorithm is None
                else "world size changed" if resized
                else f"density drift (anchor {self._anchor:.1f} -> {estimate:.1f})"
            )
            self._select(comm, estimate, reason)
        return self.algorithm

    def _select(self, comm, estimate: float, reason: str) -> None:
        instance = Instance(
            self.dimension, comm.size, estimate, self.value_itemsize
        )
        report = self.model.rank(instance, topology=comm.topology)
        previous = self.algorithm
        self.report = report
        self.algorithm = report.choice
        self._anchor = estimate
        self.switches.append(
            AlgorithmSwitch(
                iteration=self._iteration,
                algorithm=report.choice,
                previous=previous,
                estimate=estimate,
                reason=reason,
            )
        )

    @property
    def switch_count(self) -> int:
        """Number of *changes* of algorithm (excludes re-confirmations)."""
        return sum(
            1 for s in self.switches
            if s.previous is not None and s.algorithm != s.previous
        )
