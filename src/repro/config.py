"""Global configuration and constants for the SparCML reproduction.

The paper fixes a handful of representation choices that the rest of the
library depends on (Section 5.1 and Section 8 of the paper):

* indices are stored as unsigned 32-bit integers ("Since our problems usually
  have dimension N > 65K, we fix the datatype for storing an index to an
  unsigned int"),
* values are single or double precision floats,
* every stream carries a one-word header that flags whether the payload is
  sparse (index/value pairs) or dense (a contiguous value block),
* the sparse representation is only kept while ``nnz <= delta`` where
  ``delta = N * isize / (c + isize)``.

This module centralises those constants so that the streams, collectives and
cost-model packages agree on byte accounting.
"""

from __future__ import annotations

import numpy as np

#: dtype used for non-zero indices throughout the library.
INDEX_DTYPE = np.dtype(np.uint32)

#: number of bytes of one stored index (``c`` in the paper's notation).
INDEX_BYTES = INDEX_DTYPE.itemsize

#: default dtype for stream values (``isize = 4`` bytes).
DEFAULT_VALUE_DTYPE = np.dtype(np.float32)

#: bytes of the stream header (the sparse/dense flag word, Section 5.1).
STREAM_HEADER_BYTES = 8

#: value dtypes the library accepts for streams.
SUPPORTED_VALUE_DTYPES = (
    np.dtype(np.float16),
    np.dtype(np.float32),
    np.dtype(np.float64),
)

#: default QSGD bucket size (Section 6: "buckets of size B (in the order of
#: 1024 consecutive entries)").
DEFAULT_QSGD_BUCKET = 1024

#: default seed used by deterministic components when none is supplied.
DEFAULT_SEED = 0xC0FFEE


def delta_threshold(dimension: int, value_itemsize: int, index_bytes: int = INDEX_BYTES) -> int:
    """Sparsity-efficiency threshold ``delta`` from Section 5.1.

    A sparse stream of ``nnz`` elements transmits ``nnz * (c + isize)`` bytes
    while the dense format transmits ``N * isize`` bytes, so the sparse format
    only reduces communication volume while::

        nnz <= delta = N * isize / (c + isize)

    Parameters
    ----------
    dimension:
        Universe size ``N``.
    value_itemsize:
        Bytes per value (``isize``), e.g. 4 for float32.
    index_bytes:
        Bytes per index (``c``), 4 for the library default uint32.

    Returns
    -------
    int
        The largest number of non-zeros for which the sparse representation
        is no larger than the dense one.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be non-negative, got {dimension}")
    if value_itemsize <= 0 or index_bytes <= 0:
        raise ValueError("itemsizes must be positive")
    return (dimension * value_itemsize) // (index_bytes + value_itemsize)


def validate_value_dtype(dtype: np.dtype | type) -> np.dtype:
    """Return the canonical value dtype, rejecting unsupported ones."""
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_VALUE_DTYPES:
        supported = ", ".join(str(d) for d in SUPPORTED_VALUE_DTYPES)
        raise TypeError(f"unsupported value dtype {dt}; supported: {supported}")
    return dt
