"""§8.4 negative result: ResNet50-class models barely benefit.

Paper finding: on ResNet50 (25M params, compute-heavy, well-overlapped
baseline) sparsification bought only ~6% (1950s vs 2071s per epoch),
because (1) gradients densify during aggregation at 64 nodes, (2) TopK
overhead is non-negligible, (3) the dense baseline is strong. The general
lesson: when compute dominates and fill-in is high, sparsity cannot help.

We reproduce the *mechanism*: the same model/run as Fig. 5 but narrow
(width 1) and compute-heavy (4x the per-sample compute of the wide run,
reflecting ResNet50's conv-heavy profile) — the measured end-to-end gain
must collapse to a few percent even though the communication itself still
shrinks.
"""

from __future__ import annotations

from common import format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.core import TopKSGDConfig, dense_sgd, quantized_topk_sgd
from repro.mlopt import make_imagenet_like
from repro.netsim import ARIES, replay
from repro.nn import make_eval_fn, make_grad_fn, make_mlp
from repro.runtime import run_ranks


P = 8
STEPS = 60
BATCH = 16
# ResNet50 profile: lots of compute per byte of gradient
COMPUTE_BYTES_PER_SAMPLE = 3_000_000


def _build(comm):
    ds = make_imagenet_like(n_samples=512, n_classes=50, dim=512, seed=23)
    net = make_mlp(512, 50, hidden=(96,), width_multiplier=1, seed=41)
    grad_fn = make_grad_fn(
        net, ds, comm, batch_size=BATCH, seed=8,
        compute_bytes_per_sample=COMPUTE_BYTES_PER_SAMPLE,
    )
    return net, grad_fn, make_eval_fn(net, ds, max_samples=256)


def _run_experiment():
    def topk_prog(comm):
        net, grad_fn, eval_fn = _build(comm)
        cfg = TopKSGDConfig(k=1, bucket_size=512, lr=0.04, quantizer_bits=4)
        return quantized_topk_sgd(
            comm, grad_fn, net.n_params, STEPS, cfg,
            init_params=net.param_vector(),
        )

    def dense_prog(comm):
        net, grad_fn, eval_fn = _build(comm)
        return dense_sgd(
            comm, grad_fn, net.n_params, STEPS, lr=0.04 / comm.size,
            init_params=net.param_vector(),
        )

    out = {}
    for name, prog in (("dense", dense_prog), ("topk 1/512+4bit", topk_prog)):
        run = run_ranks(prog, P)
        out[name] = {
            "step": replay(run.trace, ARIES).makespan / STEPS,
            "comm": replay(run.trace, ARIES.with_(gamma=0.0)).makespan / STEPS,
        }
    return out


def _render(o) -> str:
    rows = [
        [name, f"{v['step'] * 1e3:.2f}ms", f"{v['comm'] * 1e3:.3f}ms",
         f"{v['comm'] / v['step']:.1%}"]
        for name, v in o.items()
    ]
    gain = o["dense"]["step"] / o["topk 1/512+4bit"]["step"]
    note = (
        f"\nCompute-heavy narrow model (ResNet50 profile), P={P}.\n"
        f"End-to-end gain: {gain:.3f}x — paper measured ~1.06x for ResNet50\n"
        "('the runtime improvements ... are of ~6%'): when computation\n"
        "dominates, shrinking communication buys almost nothing.\n"
    )
    return format_table(
        ["variant", "t/step", "comm/step", "comm share"],
        rows, title="ResNet50-class negative result (§8.4)",
    ) + note


def test_resnet50_negative_result(benchmark):
    o = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("resnet50_negative", _render(o))

    gain = o["dense"]["step"] / o["topk 1/512+4bit"]["step"]
    # communication itself still shrinks a lot...
    assert o["dense"]["comm"] / o["topk 1/512+4bit"]["comm"] > 5
    # ...but the end-to-end gain collapses to a few percent (paper: ~6%)
    assert 1.0 <= gain < 1.20, f"gain {gain}"
    # the dense run is compute-bound (that's the premise of the result)
    assert o["dense"]["comm"] / o["dense"]["step"] < 0.2
