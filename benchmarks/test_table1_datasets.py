"""Table 1: the dataset inventory.

The paper's table lists the real datasets; we cannot ship them, so this
bench generates the synthetic stand-ins at their default (scaled)
configurations and reports paper shape vs generated shape side by side.
The property that matters downstream — per-sample feature sparsity for
the text datasets — is matched in *density order of magnitude* rather
than absolute dimension.
"""

from __future__ import annotations

from common import format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.mlopt import (
    TABLE1_SHAPES,
    make_cifar_like,
    make_imagenet_like,
    make_sequence_task,
    make_url_like,
    make_webspam_like,
)



def _run_experiment():
    url = make_url_like(scale=0.01, n_samples=400)
    webspam = make_webspam_like(scale=0.002, n_samples=400)
    cifar = make_cifar_like(n_samples=512)
    imagenet = make_imagenet_like(n_samples=256)
    atis = make_sequence_task(n_samples=512, seq_len=20, vocab_size=256, n_classes=8)
    return url, webspam, cifar, imagenet, atis


def _render(url, webspam, cifar, imagenet, atis) -> str:
    rows = []
    paper_url = TABLE1_SHAPES["url"]
    paper_web = TABLE1_SHAPES["webspam"]
    rows.append(
        ["URL", f"{paper_url[1]} x {paper_url[2]}",
         f"{url.n_samples} x {url.n_features}",
         f"{url.mean_nnz_per_sample:.0f} nnz/sample ({url.density:.2e})"]
    )
    rows.append(
        ["Webspam", f"{paper_web[1]} x {paper_web[2]}",
         f"{webspam.n_samples} x {webspam.n_features}",
         f"{webspam.mean_nnz_per_sample:.0f} nnz/sample ({webspam.density:.2e})"]
    )
    rows.append(
        ["CIFAR-10", "60000 x 32x32x3", f"{cifar.n_samples} x {cifar.n_features}",
         f"{cifar.n_classes} classes, dense"]
    )
    rows.append(
        ["ImageNet-1K", "1.3M x 224x224x3", f"{imagenet.n_samples} x {imagenet.n_features}",
         f"{imagenet.n_classes} classes, dense"]
    )
    rows.append(
        ["ATIS", "4978 s / 56590 w", f"{atis.n_samples} seqs x {atis.seq_len} tokens",
         f"vocab {atis.vocab_size}, {atis.n_classes} intents"]
    )
    return format_table(
        ["dataset", "paper shape", "generated shape", "generated stats"],
        rows,
        title="Table 1: datasets (paper originals vs synthetic stand-ins)",
    )


def test_table1_dataset_inventory(benchmark):
    url, webspam, cifar, imagenet, atis = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    write_result("table1_datasets", _render(url, webspam, cifar, imagenet, atis))

    # the text datasets must be extremely sparse (the Table 2 premise)
    assert url.density < 1e-2
    assert webspam.density < 2e-2
    # both labels balanced enough to learn from
    for ds in (url, webspam):
        pos = (ds.y > 0).mean()
        assert 0.1 < pos < 0.9
