"""Ablations of the design choices DESIGN.md calls out.

1. **delta switch** — disable the automatic sparse->dense representation
   switch and re-run a high-fill-in recursive-doubling reduction: without
   the switch, the sparse representation wastes bandwidth once the
   intermediate result exceeds delta (the §5.1 motivation).
2. **quantized DSAR stage** — fp32 vs 8/4/2-bit second stage: bytes and
   replayed time shrink with bits, error grows (the §6 trade-off).
3. **TopK variants** — error feedback on/off and per-bucket vs global
   selection: EF is what preserves accuracy at high sparsity (§2.2/§4).
"""

from __future__ import annotations

from common import fmt_bytes, fmt_time, format_table, uniform_stream, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

import repro.streams.stream as stream_mod
from repro.collectives import dsar_split_allgather, ssar_recursive_double
from repro.core import ErrorFeedback, TopKSGDConfig, quantized_topk_sgd, topk_stream
from repro.netsim import ARIES, GIGE, replay
from repro.quant import QSGDQuantizer
from repro.runtime import run_ranks



# ----------------------------------------------------------------------
# ablation 1: the delta representation switch
# ----------------------------------------------------------------------
def _run_delta_ablation():
    # heavy fill-in (E[K] ~ 0.99 N) and enough rounds after the switch
    # point that the representation choice dominates total traffic
    N, k, P = 1 << 13, 2500, 16

    def prog(comm):
        return ssar_recursive_double(comm, uniform_stream(N, k, comm.rank, seed=15000))

    with_switch = run_ranks(prog, P)

    original = stream_mod.delta_threshold
    # disable switching: pretend delta is unbounded (ablation-only hook)
    stream_mod.delta_threshold = lambda dim, isize, c=4: 1 << 62
    try:
        without_switch = run_ranks(prog, P)
    finally:
        stream_mod.delta_threshold = original

    ref = with_switch[0].to_dense()
    assert np.allclose(without_switch[0].to_dense(), ref, atol=1e-3)
    return {
        "with switch": {
            "bytes": with_switch.trace.total_bytes_sent,
            "time": replay(with_switch.trace, ARIES).makespan,
            "dense_result": with_switch[0].is_dense,
        },
        "no switch": {
            "bytes": without_switch.trace.total_bytes_sent,
            "time": replay(without_switch.trace, ARIES).makespan,
            "dense_result": without_switch[0].is_dense,
        },
    }


# ----------------------------------------------------------------------
# ablation 2: quantized DSAR second stage
# ----------------------------------------------------------------------
def _run_quant_ablation():
    N, k, P = 1 << 16, 2000, 8
    ref = None
    out = {}
    for label, bits in (("fp32", None), ("8-bit", 8), ("4-bit", 4), ("2-bit", 2)):
        def prog(comm, bits=bits):
            q = QSGDQuantizer(bits=bits, bucket_size=512, seed=3) if bits else None
            return dsar_split_allgather(comm, uniform_stream(N, k, comm.rank, seed=16000), q)

        run = run_ranks(prog, P)
        dense = run[0].to_dense()
        if ref is None:
            ref = dense
        err = float(np.linalg.norm(dense - ref) / max(np.linalg.norm(ref), 1e-12))
        out[label] = {
            "bytes": run.trace.total_bytes_sent,
            "time": replay(run.trace, GIGE).makespan,
            "err": err,
        }
    return out


# ----------------------------------------------------------------------
# ablation 3: error feedback and selection rule
# ----------------------------------------------------------------------
def _run_topk_ablation():
    dim, P, steps = 256, 4, 250
    centres = [np.random.default_rng(800 + r).standard_normal(dim) * 2 for r in range(P)]
    optimum = np.mean(centres, axis=0)

    def grad_fn_for(rank):
        g = np.random.default_rng(900 + rank)

        def fn(params, step):
            return ((params - centres[rank]) / P + g.standard_normal(dim) * 0.02).astype(
                np.float32
            )

        return fn

    def with_ef(comm, bucket, k):
        cfg = TopKSGDConfig(k=k, bucket_size=bucket, lr=0.3, lr_decay=0.05)
        return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, steps, cfg)

    def without_ef(comm):
        """TopK with the residual discarded (no error feedback)."""
        from repro.collectives import sparse_allreduce

        params = np.zeros(dim, dtype=np.float32)
        fn = grad_fn_for(comm.rank)
        for step in range(steps):
            lr = 0.3 / (1 + 0.05 * step)
            sent = topk_stream(lr * fn(params, step), 4, bucket_size=64)
            total = sparse_allreduce(comm, sent, algorithm="ssar_rec_dbl")
            params -= total.to_dense()
        return params

    err = lambda p: float(np.linalg.norm(p - optimum) / np.linalg.norm(optimum))
    out = {}
    # same total selection budget: 4 of every 64 == 16 of 256 globally
    out["EF + bucket topk"] = err(run_ranks(lambda c: with_ef(c, 64, 4), P)[0].params)
    out["EF + global topk"] = err(run_ranks(lambda c: with_ef(c, None, 16), P)[0].params)
    out["no EF"] = err(run_ranks(without_ef, P)[0])
    return out


def test_ablation_delta_switch(benchmark):
    o = benchmark.pedantic(_run_delta_ablation, rounds=1, iterations=1)
    rows = [
        [name, fmt_bytes(v["bytes"]), fmt_time(v["time"]), str(v["dense_result"])]
        for name, v in o.items()
    ]
    write_result(
        "ablation_delta_switch",
        format_table(
            ["variant", "bytes", "replayed time", "dense result"],
            rows, title="Ablation: sparse->dense representation switch (§5.1)",
        )
        + "\nWithout the switch the reduction keeps shipping index/value pairs\n"
        "past delta and pays ~2x the bytes for a dense-sized result.\n",
    )
    assert o["with switch"]["dense_result"]
    assert not o["no switch"]["dense_result"]
    assert o["no switch"]["bytes"] > 1.4 * o["with switch"]["bytes"]
    assert o["no switch"]["time"] > o["with switch"]["time"]


def test_ablation_quantized_stage(benchmark):
    o = benchmark.pedantic(_run_quant_ablation, rounds=1, iterations=1)
    rows = [
        [name, fmt_bytes(v["bytes"]), fmt_time(v["time"]), f"{v['err']:.4f}"]
        for name, v in o.items()
    ]
    write_result(
        "ablation_quant_stage",
        format_table(
            ["stage precision", "bytes", "GigE time", "rel. error"],
            rows, title="Ablation: DSAR dense-stage precision (§6)",
        ),
    )
    assert o["fp32"]["bytes"] > o["8-bit"]["bytes"] > o["4-bit"]["bytes"] > o["2-bit"]["bytes"]
    assert o["fp32"]["time"] > o["4-bit"]["time"]
    assert o["8-bit"]["err"] < o["4-bit"]["err"] < o["2-bit"]["err"]
    # QSGD bound at s=127, d=512 allows ~0.18 relative; measured ~0.03
    assert o["8-bit"]["err"] < 0.06


def test_ablation_topk_variants(benchmark):
    o = benchmark.pedantic(_run_topk_ablation, rounds=1, iterations=1)
    rows = [[name, f"{err:.4f}"] for name, err in o.items()]
    write_result(
        "ablation_topk",
        format_table(
            ["variant", "rel. error to optimum"],
            rows, title="Ablation: error feedback and TopK selection rule",
        )
        + "\nDropping the residual ('no EF') biases the iterates: the accumulated\n"
        "unsent mass never reaches the model (the Alg. 1 epsilon is the fix).\n",
    )
    assert o["EF + bucket topk"] < 0.2
    assert o["EF + global topk"] < 0.2
    assert o["no EF"] > 2 * min(o["EF + bucket topk"], o["EF + global topk"])
