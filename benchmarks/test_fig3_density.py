"""Figure 3 (right): reduction time versus per-node density.

Paper setup: Greina, Gigabit Ethernet, N = 16M, P = 8, density swept.
Expected shape: at very low density every sparse algorithm crushes dense;
as density rises the static-sparse algorithms lose their edge (fill-in),
DSAR converges to a bounded constant-factor win, and dense becomes
competitive — the relative ordering matches the left plot but compressed,
and absolute times are much larger on the slow network.
"""

from __future__ import annotations

from common import FULL_SCALE, fmt_time, format_table, uniform_stream, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.collectives import (
    allreduce_rabenseifner,
    allreduce_ring,
    dsar_split_allgather,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from repro.netsim import GIGE, replay
from repro.runtime import run_ranks


N = 1 << 24 if FULL_SCALE else 1 << 20
P = 8
DENSITIES = (0.0001, 0.001, 0.01, 0.05, 0.10, 0.25)

ALGOS = {
    "ssar_rec_dbl": lambda c, s: ssar_recursive_double(c, s),
    "ssar_split_ag": lambda c, s: ssar_split_allgather(c, s),
    "ssar_ring": lambda c, s: ssar_ring(c, s),
    "dsar_split_ag": lambda c, s: dsar_split_allgather(c, s),
    "dense_mpi(rab.)": lambda c, s: allreduce_rabenseifner(c, s.to_dense()),
    "dense_ring": lambda c, s: allreduce_ring(c, s.to_dense()),
}


def _run_experiment() -> dict[str, dict[float, float]]:
    times: dict[str, dict[float, float]] = {name: {} for name in ALGOS}
    for d in DENSITIES:
        k = max(1, int(N * d))
        for name, algo in ALGOS.items():
            out = run_ranks(
                lambda c, a=algo: a(c, uniform_stream(N, k, c.rank, seed=11000)), P
            )
            times[name][d] = replay(out.trace, GIGE).makespan
    return times


def _render(times) -> str:
    headers = ["algorithm"] + [f"d={d:.2%}" for d in DENSITIES]
    rows = [[name] + [fmt_time(times[name][d]) for d in DENSITIES] for name in times]
    note = (
        f"\nN={N}, P={P}, GigE-class network (Greina setting).\n"
        "Sparse wins shrink as density rises; DSAR converges to a bounded\n"
        "constant-factor improvement over dense (Lemma 5.2).\n"
    )
    return format_table(headers, rows, title="Fig. 3 (right): reduction time vs density") + note


def test_fig3_reduction_time_vs_density(benchmark):
    times = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig3_density", _render(times))

    dense = times["dense_mpi(rab.)"]
    # low density: order-of-magnitude sparse win
    assert dense[0.0001] / times["ssar_rec_dbl"][0.0001] > 50
    # sparse advantage must shrink monotonically-ish with density
    gains = [dense[d] / times["ssar_split_ag"][d] for d in DENSITIES]
    assert gains[0] > gains[-1]
    # at 25% per-node density the result is dense: static sparse loses badly,
    # DSAR stays within a small constant of dense
    assert times["dsar_split_ag"][0.25] < 3 * dense[0.25]
