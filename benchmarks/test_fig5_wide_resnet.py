"""Figure 5: wide residual networks on ImageNet — TopK quantized vs dense.

Paper setup: 4xResNet18/34 on ImageNet-1K, 64 GPUs, TopK with K=1/512
(0.2% density), standard hyper-parameters. Findings: (i) final top-1
within 0.9% / top-5 within 0.5% of dense; (ii) ~2x end-to-end speedup,
almost entirely from the huge final layers; (iii) TopK's loss falls
*faster* early and the advantage saturates late.

Our stand-in: a 4x-widened MLP on ImageNet-like data (the 4x widening is
exactly the paper's transformation; wide layers are what make gradients
compressible). End-to-end speedup is computed with the overlap-free step
model: t_step = t_compute + t_comm(replayed), with the per-sample compute
budget chosen so the *dense* run is ~50% communication — the regime the
paper reports for wide models on 64 GPUs.
"""

from __future__ import annotations

from common import FULL_SCALE, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.core import TopKSGDConfig, dense_sgd, quantized_topk_sgd
from repro.mlopt import make_imagenet_like
from repro.netsim import ARIES, replay
from repro.nn import make_eval_fn, make_grad_fn, make_mlp
from repro.runtime import run_ranks


P = 8
STEPS = 200 if FULL_SCALE else 140
EVAL_EVERY = 35
LR = 0.04
WIDTH = 4  # the "4x" of 4xResNet
BATCH = 16
COMPUTE_BYTES_PER_SAMPLE = 500_000
# GPU-class compute: the paper's nodes compute on P100s while the network
# is the same Aries — model that with a 10x faster gamma, which puts the
# dense wide-model run at ~50% communication (the Fig. 5 regime).
GPU_ARIES = ARIES.with_(gamma=2e-11)


def _build(comm, width):
    ds = make_imagenet_like(n_samples=1024, n_classes=50, dim=1024, seed=19)
    net = make_mlp(1024, 50, hidden=(96,), width_multiplier=width, seed=37)
    grad_fn = make_grad_fn(
        net, ds, comm, batch_size=BATCH, seed=7,
        compute_bytes_per_sample=COMPUTE_BYTES_PER_SAMPLE,
    )
    eval_fn = make_eval_fn(net, ds, max_samples=512)
    return net, grad_fn, eval_fn


def _run_experiment():
    def topk_prog(comm):
        net, grad_fn, eval_fn = _build(comm, WIDTH)
        cfg = TopKSGDConfig(k=1, bucket_size=512, lr=LR, quantizer_bits=4)
        return quantized_topk_sgd(
            comm, grad_fn, net.n_params, STEPS, cfg, eval_fn,
            eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    def dense_prog(comm):
        net, grad_fn, eval_fn = _build(comm, WIDTH)
        # the paper's baseline applies the *sum* of rank gradients
        # (x <- x - eta * sum_i grad_i), matching Algorithm 1's step
        return dense_sgd(
            comm, grad_fn, net.n_params, STEPS, lr=LR,
            eval_fn=eval_fn, eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    topk_out = run_ranks(topk_prog, P)
    dense_out = run_ranks(dense_prog, P)
    results = {}
    for name, out in (("dense", dense_out), ("topk 1/512+4bit", topk_out)):
        total = replay(out.trace, GPU_ARIES).makespan
        comm_only = replay(out.trace, GPU_ARIES.with_(gamma=0.0)).makespan
        results[name] = {
            "res": out[0],
            "step_time": total / STEPS,
            "comm_time": comm_only / STEPS,
        }
    return results


def _render(results) -> str:
    steps = [h["step"] for h in results["dense"]["res"].history]
    headers = ["variant"] + [f"err@{s}" for s in steps] + ["KB/step", "t/step", "comm/step"]
    rows = []
    for name, r in results.items():
        rows.append(
            [name]
            + [f"{1 - h['accuracy']:.3f}" for h in r["res"].history]
            + [
                f"{r['res'].mean_bytes_per_step / 1e3:.0f}",
                f"{r['step_time'] * 1e3:.2f}ms",
                f"{r['comm_time'] * 1e3:.2f}ms",
            ]
        )
    speedup = results["dense"]["step_time"] / results["topk 1/512+4bit"]["step_time"]
    note = (
        f"\n4x-wide MLP ({results['dense']['res'].params.size} params) on ImageNet-like"
        f" data, P={P}.\nEnd-to-end step speedup: {speedup:.2f}x "
        "(paper: ~2x for 4xResNet18, ~1.85x for 4xResNet34).\n"
    )
    return format_table(headers, rows, title="Fig. 5: wide network, error vs step") + note


def test_fig5_wide_network(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig5_wide_resnet", _render(results))

    dense = results["dense"]
    topk = results["topk 1/512+4bit"]
    # accuracy parity (paper: <0.9% top-1 difference)
    assert (
        topk["res"].history[-1]["accuracy"]
        >= dense["res"].history[-1]["accuracy"] - 0.03
    )
    # ~2x end-to-end speedup in the comm-bound wide regime
    speedup = dense["step_time"] / topk["step_time"]
    assert 1.5 < speedup < 3.5, f"speedup {speedup}"
    # the speedup comes from communication (paper: "due almost entirely to
    # the reduced aggregation time")
    assert dense["comm_time"] / topk["comm_time"] > 5
