"""Figure 1: density of the reduced result vs node count and per-node density.

Paper setup: TopK gradients of ResNet20 on CIFAR-10 at epoch 5; the plot
shows that e.g. 10% per-node density is essentially dense after reducing
over 64 nodes. We reproduce it two ways:

1. **measured** — train a small CNN on CIFAR-like data for a few steps,
   take per-node TopK gradient supports (each simulated node selects from
   its own minibatch gradient) and measure the union density;
2. **uniform model** — the closed form 1 - (1-d)^P of Appendix B.

The measured values should track the model closely (TopK supports on
distinct minibatches are near-independent), reproducing both Fig. 1 and
Fig. 7's message: fill-in is driven by P, which is why high node counts
force the dynamic (dense) regime.
"""

from __future__ import annotations

from common import format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.analysis import empirical_union_density, expected_density_of_sum
from repro.core import topk_bucket_indices
from repro.mlopt import make_cifar_like
from repro.nn import make_cnn_lite


NODE_COUNTS = (2, 4, 8, 16, 32, 64, 128)
DENSITIES = (0.001, 0.01, 0.05, 0.10)
BUCKET = 512


def _warmed_up_network():
    """A CNN a few steps into training (the paper snapshots epoch 5)."""
    ds = make_cifar_like(n_samples=512, dim=3 * 16 * 16, seed=77)
    net = make_cnn_lite(16, 3, 10, channels=(8, 16), seed=7)
    params = net.param_vector()
    gen = np.random.default_rng(0)
    for _ in range(10):
        rows = gen.choice(512, 64, replace=False)
        net.set_param_vector(params)
        _, grad = net.batch_grad(ds.X[rows].reshape(-1, 3, 16, 16), ds.y[rows])
        params -= 0.05 * grad
    net.set_param_vector(params)
    return net, ds, params


def _node_gradient_support(net, ds, params, node, density):
    gen = np.random.default_rng(500 + node)
    rows = gen.choice(ds.n_samples, 64, replace=False)
    net.set_param_vector(params)
    _, grad = net.batch_grad(ds.X[rows].reshape(-1, 3, 16, 16), ds.y[rows])
    k = max(1, int(round(density * BUCKET)))
    return topk_bucket_indices(grad, k, BUCKET).astype(np.int64)


def _run_experiment():
    net, ds, params = _warmed_up_network()
    dim = net.n_params
    measured: dict[tuple[float, int], float] = {}
    for d in DENSITIES:
        supports = [
            _node_gradient_support(net, ds, params, node, d)
            for node in range(max(NODE_COUNTS))
        ]
        for P in NODE_COUNTS:
            measured[(d, P)] = empirical_union_density(supports[:P], dim)
    return dim, measured


def _render(dim, measured) -> str:
    headers = ["per-node d"] + [f"P={p}" for p in NODE_COUNTS] + ["(model P=64)"]
    rows = []
    for d in DENSITIES:
        row = [f"{d:.1%}"]
        row += [f"{measured[(d, p)]:.1%}" for p in NODE_COUNTS]
        row.append(f"{expected_density_of_sum(d, 64):.1%}")
        rows.append(row)
    note = (
        f"\nCNN-lite gradient TopK supports, {dim} params, bucket={BUCKET}.\n"
        "Reading (paper Fig. 1): moderate per-node densities become dense-\n"
        "regime after reduction over many nodes. Real gradient supports are\n"
        "correlated across nodes (the large coordinates repeat), so the\n"
        "measured fill-in sits below the uniform closed form — which App. B\n"
        "explicitly calls 'a worst-case scenario in terms of probabilistic\n"
        "growth of the intermediate results'.\n"
    )
    return format_table(headers, rows, title="Fig. 1: density of reduced result") + note


def test_fig1_density_of_reduced_result(benchmark):
    dim, measured = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig1_fillin", _render(dim, measured))

    # paper headline: 10% per node over 64 nodes crosses the sparse-
    # efficiency threshold (kappa = 0.5 for float32) -> dynamic instance
    assert measured[(0.10, 64)] > 0.5
    # fill-in grows monotonically with P at fixed density
    for d in DENSITIES:
        series = [measured[(d, p)] for p in NODE_COUNTS]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
    # the uniform model upper-bounds measured fill-in (App. B worst case);
    # small-sample wiggle allowed at the lowest density
    for d in DENSITIES:
        for P in (8, 64):
            model = expected_density_of_sum(d, P)
            assert measured[(d, P)] <= model + 0.05
    # and the per-node density lower-bounds it
    for d in DENSITIES:
        assert measured[(d, 2)] >= d * 0.9
