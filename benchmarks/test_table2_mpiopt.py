"""Table 2: distributed optimisation with MPI-OPT.

Paper rows: {Webspam, URL} x {LR, SVM} x {Piz Daint P=32 rec-dbl,
Piz Daint P=8 split-ag, Greina IB P=8, Greina GigE P=8}; columns: epoch
time for the dense-MPI baseline vs the sparse algorithm, end-to-end and
communication-only speedups (in brackets in the paper).

We run the same workloads on synthetic URL-like/Webspam-like data, time
by trace replay under the corresponding network presets, and report the
same row structure. Expected shape: modest (2-4x) end-to-end speedups on
fast networks, very large (>10x) on GigE — communication dominates there.
"""

from __future__ import annotations

from common import FULL_SCALE, fmt_time, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.mlopt import (
    LinearSVM,
    LogisticRegression,
    SGDConfig,
    distributed_sgd,
    make_url_like,
    make_webspam_like,
)
from repro.netsim import ARIES, GIGE, IB_FDR, replay
from repro.runtime import run_ranks


EPOCHS = 1
BATCH = 25

ROWS = [
    # (system, network, dataset_name, model_name, P, sparse algorithm)
    ("Piz Daint", ARIES, "webspam", "LR", 16, "ssar_rec_dbl"),
    ("Piz Daint", ARIES, "webspam", "SVM", 16, "ssar_rec_dbl"),
    ("Piz Daint", ARIES, "url", "LR", 16, "ssar_rec_dbl"),
    ("Piz Daint", ARIES, "url", "SVM", 16, "ssar_rec_dbl"),
    ("Piz Daint", ARIES, "webspam", "LR", 8, "ssar_split_ag"),
    ("Piz Daint", ARIES, "url", "LR", 8, "ssar_split_ag"),
    ("Greina (IB)", IB_FDR, "webspam", "LR", 8, "ssar_split_ag"),
    ("Greina (IB)", IB_FDR, "url", "LR", 8, "ssar_split_ag"),
    ("Greina (GigE)", GIGE, "webspam", "LR", 8, "ssar_split_ag"),
    ("Greina (GigE)", GIGE, "url", "LR", 8, "ssar_split_ag"),
]


def _datasets():
    """URL/Webspam stand-ins with the *batch-gradient density* of the real
    datasets preserved: dimension and nnz/sample are scaled together so a
    50-sample minibatch gradient stays ~1% dense, as on the originals.
    """
    from repro.mlopt import make_sparse_classification

    if FULL_SCALE:
        url_dim, url_nnz, web_dim, web_nnz, n = 640_000, 115, 800_000, 370, 3200
    else:
        url_dim, url_nnz, web_dim, web_nnz, n = 160_000, 60, 170_000, 150, 1600
    return {
        "url": make_sparse_classification(
            n, url_dim, url_nnz, seed=1, powerlaw_exponent=1.15, name="url-like"
        ),
        "webspam": make_sparse_classification(
            n, web_dim, web_nnz, seed=2, powerlaw_exponent=1.05, name="webspam-like"
        ),
    }


def _model(name, n_features):
    cls = LogisticRegression if name == "LR" else LinearSVM
    return cls(n_features, reg=1e-5)


def _epoch_times(dataset, model_name, P, mode, algorithm, network):
    def prog(comm):
        cfg = SGDConfig(
            epochs=EPOCHS, batch_size=BATCH, lr=1.0, mode=mode, algorithm=algorithm
        )
        return distributed_sgd(comm, dataset, _model(model_name, dataset.n_features), cfg)

    out = run_ranks(prog, P)
    total = replay(out.trace, network).makespan / EPOCHS
    comm = replay(out.trace, network.with_(gamma=0.0)).makespan / EPOCHS
    return total, comm, out[0]


def _run_experiment():
    datasets = _datasets()
    results = []
    for system, network, ds_name, model_name, P, algo in ROWS:
        ds = datasets[ds_name]
        dense_total, dense_comm, dense_hist = _epoch_times(
            ds, model_name, P, "dense", "dense_rabenseifner", network
        )
        sparse_total, sparse_comm, sparse_hist = _epoch_times(
            ds, model_name, P, "sparse", algo, network
        )
        results.append(
            {
                "system": system,
                "dataset": ds_name,
                "model": model_name,
                "P": P,
                "algo": algo,
                "dense_total": dense_total,
                "dense_comm": dense_comm,
                "sparse_total": sparse_total,
                "sparse_comm": sparse_comm,
                "same_model": bool(
                    abs(dense_hist.final_loss - sparse_hist.final_loss) < 1e-6
                ),
            }
        )
    return results


def _render(results) -> str:
    headers = [
        "system", "dataset", "model", "P", "algorithm",
        "baseline t (comm)", "sparcml t (comm)", "speedup (comm)",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                r["system"], r["dataset"], r["model"], r["P"], r["algo"],
                f"{fmt_time(r['dense_total'])} ({fmt_time(r['dense_comm'])})",
                f"{fmt_time(r['sparse_total'])} ({fmt_time(r['sparse_comm'])})",
                f"{r['dense_total'] / r['sparse_total']:.2f} "
                f"({r['dense_comm'] / r['sparse_comm']:.2f})",
            ]
        )
    note = (
        "\nTimes are per dataset epoch (communication in brackets), replayed\n"
        "under the row's network preset. The paper's Table 2 shape: modest\n"
        "speedups on Aries/IB (1.3-3.7x end-to-end), 12-26x on GigE.\n"
    )
    return format_table(headers, rows, title="Table 2: MPI-OPT sparse vs dense") + note


def test_table2_mpiopt_speedups(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("table2_mpiopt", _render(results))

    by_key = {(r["system"], r["dataset"], r["model"], r["P"]): r for r in results}
    # the communication is lossless: identical final models everywhere
    assert all(r["same_model"] for r in results)
    # sparse must beat dense end-to-end on every row
    for r in results:
        assert r["sparse_total"] < r["dense_total"], r
    # GigE *communication* speedups dominate the fast-network ones (paper:
    # 23.8-25.8x on GigE vs 3.6-7x on Aries/IB for the same workloads); the
    # end-to-end ratio is muddied by compute, so the comm ratio is the
    # robust claim.
    gige = by_key[("Greina (GigE)", "url", "LR", 8)]
    aries = by_key[("Piz Daint", "url", "LR", 8)]
    assert (gige["dense_comm"] / gige["sparse_comm"]) > (
        aries["dense_comm"] / aries["sparse_comm"]
    )
    assert gige["dense_comm"] / gige["sparse_comm"] > 4
    # on GigE the epoch is communication-bound (comm >= 90% of dense epoch)
    assert gige["dense_comm"] / gige["dense_total"] > 0.9
