"""Validation of §5.3's analytic bounds against replayed executions.

For every sparse algorithm and a grid of (P, k), the replayed runtime of
the actual execution (compute excluded, matching the bounds' assumption)
must land inside the paper's lower/upper sandwich, and the two §5.3.1
extremes (full overlap -> lower bound, disjoint -> upper bound) must be
approached from the right side.
"""

from __future__ import annotations

from common import format_table, uniform_stream, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.collectives import (
    dsar_split_allgather,
    ssar_recursive_double,
    ssar_split_allgather,
)
from repro.costmodel import (
    dsar_split_ag_bounds,
    ssar_rec_dbl_bounds,
    ssar_split_ag_bounds,
)
from repro.netsim import NetworkModel, replay
from repro.runtime import run_ranks
from repro.streams import SparseStream


MODEL = NetworkModel(name="bounds", alpha=1e-6, beta=1e-9, gamma=0.0)
GRID = [(2, 500), (4, 500), (8, 500), (16, 500), (8, 5000), (16, 5000)]
N = 1 << 20


def _measure(algo, P, k):
    out = run_ranks(lambda c: algo(c, uniform_stream(N, k, c.rank, seed=13000)), P)
    return replay(out.trace, MODEL).makespan


def _run_experiment():
    rows = []
    checks = []
    for P, k in GRID:
        for name, algo, bound_fn in (
            ("ssar_rec_dbl", ssar_recursive_double, lambda: ssar_rec_dbl_bounds(P, k, MODEL)),
            ("ssar_split_ag", ssar_split_allgather, lambda: ssar_split_ag_bounds(P, k, MODEL)),
            ("dsar_split_ag", dsar_split_allgather, lambda: dsar_split_ag_bounds(P, k, N, MODEL)),
        ):
            t = _measure(algo, P, k)
            b = bound_fn()
            inside = b.contains(t, slack=1.10)
            rows.append(
                [name, P, k, f"{b.lower * 1e6:.1f}us", f"{t * 1e6:.1f}us",
                 f"{b.upper * 1e6:.1f}us", "yes" if inside else "NO"]
            )
            checks.append((name, P, k, inside))
    return rows, checks


def _extremes():
    """Full-overlap vs disjoint supports for recursive doubling (§5.3.1)."""
    P, k = 8, 2000
    idx = np.arange(k, dtype=np.uint32)

    def overlap_prog(comm):
        return ssar_recursive_double(
            comm, SparseStream(N, indices=idx, values=np.ones(k, dtype=np.float32))
        )

    def disjoint_prog(comm):
        own = np.arange(comm.rank * k, (comm.rank + 1) * k, dtype=np.uint32)
        return ssar_recursive_double(
            comm, SparseStream(N, indices=own, values=np.ones(k, dtype=np.float32))
        )

    t_overlap = replay(run_ranks(overlap_prog, P).trace, MODEL).makespan
    t_disjoint = replay(run_ranks(disjoint_prog, P).trace, MODEL).makespan
    bounds = ssar_rec_dbl_bounds(P, k, MODEL)
    return t_overlap, t_disjoint, bounds


def test_bounds_validation(benchmark):
    (rows, checks), (t_overlap, t_disjoint, bounds) = benchmark.pedantic(
        lambda: (_run_experiment(), _extremes()), rounds=1, iterations=1
    )
    extra = (
        f"\nExtremes (P=8, k=2000, rec-dbl): full overlap {t_overlap * 1e6:.1f}us vs\n"
        f"lower bound {bounds.lower * 1e6:.1f}us; disjoint {t_disjoint * 1e6:.1f}us vs\n"
        f"upper bound {bounds.upper * 1e6:.1f}us.\n"
    )
    write_result(
        "bounds_validation",
        format_table(
            ["algorithm", "P", "k", "lower", "measured", "upper", "inside"],
            rows, title="§5.3 analytic bounds vs replayed executions",
        ) + extra,
    )

    for name, P, k, inside in checks:
        assert inside, f"{name} (P={P}, k={k}) escaped its bound sandwich"
    # the overlap extreme sits near the lower bound, disjoint near the upper
    assert t_overlap <= bounds.lower * 1.35
    assert t_disjoint >= bounds.upper * 0.65
    assert t_overlap < t_disjoint
