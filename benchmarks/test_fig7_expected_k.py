"""Figure 7 / Appendix B: expected reduced size under uniform supports.

The paper plots the multiplicative growth of E[K] for N = 512 as a
function of node count P and per-node non-zeros k, from the closed-form
inclusion-exclusion formula. We regenerate the exact grid and check it
against Monte-Carlo simulation and the union bound.
"""

from __future__ import annotations

from common import format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.analysis import (
    expected_union_size,
    expected_union_size_inclusion_exclusion,
    monte_carlo_union_size,
)


N = 512
K_VALUES = (1, 4, 16, 64, 128, 256)
P_VALUES = (2, 4, 8, 16, 32, 64)


def _run_experiment():
    grid = {
        (k, p): expected_union_size(k, N, p) for k in K_VALUES for p in P_VALUES
    }
    gen = np.random.default_rng(123)
    mc = {
        (k, p): monte_carlo_union_size(k, N, p, gen, trials=40)
        for k in (4, 64) for p in (4, 32)
    }
    return grid, mc


def _render(grid, mc) -> str:
    headers = ["k \\ P"] + [str(p) for p in P_VALUES]
    rows = []
    for k in K_VALUES:
        rows.append([str(k)] + [f"{grid[(k, p)]:.1f}" for p in P_VALUES])
    mc_lines = "\n".join(
        f"  Monte-Carlo check k={k}, P={p}: {mc[(k, p)]:.1f} vs closed form "
        f"{grid[(k, p)]:.1f}"
        for (k, p) in sorted(mc)
    )
    note = (
        f"\nE[K] for N={N}, uniform random supports (paper Fig. 7).\n{mc_lines}\n"
        "Growth saturates at N: beyond moderate P x k the reduction is dense,\n"
        "which is what motivates the DSAR representation switch.\n"
    )
    return format_table(headers, rows, title="Fig. 7: expected reduced size E[K]") + note


def test_fig7_expected_union_size(benchmark):
    grid, mc = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig7_expected_k", _render(grid, mc))

    # closed form == the paper's inclusion-exclusion series
    for k in (4, 64):
        for p in (4, 32):
            assert grid[(k, p)] == np.testing.assert_allclose(
                grid[(k, p)],
                expected_union_size_inclusion_exclusion(k, N, p),
                rtol=1e-9,
            ) or grid[(k, p)]
    # Monte Carlo agrees within a few percent
    for key, value in mc.items():
        assert abs(value - grid[key]) / grid[key] < 0.05
    # monotone growth in both axes, saturating at N
    for k in K_VALUES:
        series = [grid[(k, p)] for p in P_VALUES]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1] <= N + 1e-9
    # union-bound tightness at tiny density: E[K] ~ P*k when k=1
    assert abs(grid[(1, 8)] - 8) / 8 < 0.01
