"""§8.2 Spark comparison: MPI-OPT vs a coordinator-based dense layer.

Paper numbers (URL, P=8): MPI-OPT + SparCML converges 63x faster than
Spark (185x communication); even MPI-OPT with the *dense* Cray allreduce
beats Spark 31x (43x communication). The defining property of the Spark
baseline is coordinator-centred dense aggregation (treeAggregate + model
broadcast) with no sparsity support; our `frameworks.spark_like`
reproduces that communication pattern (and, per the paper's own caveat,
none of Spark's fault-tolerance overheads — so our gaps are smaller but
ordered identically).

Expected ordering: t(spark-like) > t(dense MPI) > t(SparCML sparse), with
the communication gaps larger than the end-to-end gaps.
"""

from __future__ import annotations

from common import fmt_time, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.frameworks import coordinator_allreduce
from repro.mlopt import LogisticRegression, SGDConfig, distributed_sgd, make_url_like
from repro.mlopt.datasets import partition_rows
from repro.netsim import GIGE, replay
from repro.runtime import run_ranks


P = 8
EPOCHS = 1
BATCH = 50


def _spark_like_prog(dataset):
    def prog(comm):
        model = LogisticRegression(dataset.n_features, reg=1e-5)
        shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
        X, y = dataset.X[shard], dataset.y[shard]
        gen = np.random.default_rng(comm.rank)
        w = np.zeros(dataset.n_features)
        for _ in range(EPOCHS * max(1, X.shape[0] // BATCH)):
            rows = gen.choice(X.shape[0], size=min(BATCH, X.shape[0]), replace=False)
            comm.mark("compute")
            comm.compute(int(X[rows].nnz) * 16, "grad")
            grad = model.grad_stream(w, X[rows], y[rows]).to_dense()
            total = coordinator_allreduce(comm, grad)
            comm.mark("compute")
            model.apply_regularization(w, 1.0)
            w -= (1.0 / comm.size) * total.astype(np.float64)
        return model.loss(w, dataset.X, dataset.y)

    return prog


def _run_experiment():
    ds = make_url_like(scale=0.008, n_samples=800)

    def mpiopt_prog(mode, algo):
        def prog(comm):
            cfg = SGDConfig(epochs=EPOCHS, batch_size=BATCH, lr=1.0, mode=mode, algorithm=algo)
            return distributed_sgd(comm, ds, LogisticRegression(ds.n_features, 1e-5), cfg)

        return prog

    runs = {
        "spark-like": run_ranks(_spark_like_prog(ds), P),
        "mpiopt dense": run_ranks(mpiopt_prog("dense", "dense_rabenseifner"), P),
        "mpiopt sparcml": run_ranks(mpiopt_prog("sparse", "auto"), P),
    }
    outcomes = {}
    for name, out in runs.items():
        outcomes[name] = {
            "total": replay(out.trace, GIGE).makespan,
            "comm": replay(out.trace, GIGE.with_(gamma=0.0)).makespan,
            "bytes": out.trace.total_bytes_sent,
        }
    return ds, outcomes


def _render(ds, o) -> str:
    base = o["spark-like"]
    rows = []
    for name in ("spark-like", "mpiopt dense", "mpiopt sparcml"):
        rows.append(
            [name, fmt_time(o[name]["total"]), fmt_time(o[name]["comm"]),
             f"{o[name]['bytes'] / 1e6:.1f}MB",
             f"{base['total'] / o[name]['total']:.1f}x "
             f"({base['comm'] / o[name]['comm']:.1f}x)"]
        )
    note = (
        f"\nURL-like ({ds.n_samples} x {ds.n_features}), P={P}, GigE preset.\n"
        "Paper (URL, P=8): SparCML 63x (185x comm) over Spark; dense MPI\n"
        "31x (43x comm). Our spark-like baseline has no fault-tolerance\n"
        "cost, so the ordering matches with smaller absolute gaps.\n"
    )
    return format_table(
        ["layer", "epoch time", "comm time", "bytes", "speedup vs spark (comm)"],
        rows, title="Spark-like comparison (paper §8.2)",
    ) + note


def test_spark_comparison(benchmark):
    ds, o = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("spark_comparison", _render(ds, o))

    # the paper's ordering
    assert o["spark-like"]["total"] > o["mpiopt dense"]["total"] > o["mpiopt sparcml"]["total"]
    assert o["spark-like"]["comm"] > o["mpiopt dense"]["comm"] > o["mpiopt sparcml"]["comm"]
    # sparcml's win over spark-like must exceed dense MPI's win over it
    assert (
        o["spark-like"]["total"] / o["mpiopt sparcml"]["total"]
        > o["spark-like"]["total"] / o["mpiopt dense"]["total"]
    )
