"""Shared machinery for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it executes
the real workload on the thread backend, replays the recorded trace under
a network preset, renders an ASCII table mirroring the paper's rows/series
and writes it to ``results/<experiment>.txt`` (also echoed to stdout so
``pytest -s`` shows it live).

Scale note: the paper's micro-benchmarks use N = 16M on up to hundreds of
nodes; we default to N = 2^20 and P <= 32 so the whole harness runs in
minutes on a laptop. Set ``REPRO_BENCH_SCALE=full`` for paper-sized runs.
The replayed *shape* (who wins, crossover locations) is scale-stable
because every term of the alpha-beta model scales linearly.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Standalone bootstrap: when a benchmark is executed directly
# (``python benchmarks/test_xyz.py``) nothing has put ``src/`` on the
# path yet; pytest runs get it from pyproject's ``pythonpath`` instead.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:  # pragma: no cover - trivial path plumbing
    sys.path.insert(0, _SRC)

import numpy as np

from repro.streams import SparseStream

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text if text.endswith("\n") else text + "\n")
    print(f"\n=== {name} ===\n{text}")
    return path


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render a fixed-width ASCII table."""
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows)) if rows else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def uniform_stream(dimension: int, nnz: int, rank: int, seed: int = 9000) -> SparseStream:
    """The paper's synthetic micro-benchmark input: k uniform random
    indices with random values (§8.1)."""
    gen = np.random.default_rng(seed + rank)
    return SparseStream.random_uniform(dimension, nnz=nnz, rng=gen)


def fmt_time(seconds: float) -> str:
    """Human-readable seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def fmt_bytes(n: float) -> str:
    if n < 1 << 10:
        return f"{n:.0f}B"
    if n < 1 << 20:
        return f"{n / (1 << 10):.1f}KB"
    if n < 1 << 30:
        return f"{n / (1 << 20):.2f}MB"
    return f"{n / (1 << 30):.2f}GB"
