"""Two-tier replay: hierarchical vs flat collectives on simulated clusters.

The §6 argument in figure form: on a cluster whose intra-node links run at
shared-memory speed while all ranks of a host share one uplink to the
slow inter-node network, the hierarchical schedules (``ssar_hier`` for
static-sparse instances, ``dsar_hier`` for dynamic ones) beat every flat
algorithm because only one merged union (or dense partition) per host
crosses — and serializes on — the shared uplink.

We execute every algorithm once per topology (``2x4`` and ``4x8``) on the
thread backend and replay the recorded traces under each tiered preset
(``tiered_aries`` / ``tiered_ib_fdr`` / ``tiered_gige``) plus the flat
GigE preset for reference. Expected shape: under the GigE-class tier
(wire-dominated, the cloud setting) the hierarchical algorithm is
strictly fastest in its class; on the faster fabrics the replay becomes
CPU-bound at these small scales, but ``ssar_hier`` still beats its
structural counterpart ``ssar_rec_dbl``, whose inter-node round pushes
``ranks_per_host`` unions through each uplink instead of one.
"""

from __future__ import annotations

from common import FULL_SCALE, fmt_time, format_table, uniform_stream, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.collectives import choose_algorithm, run_sparse_allreduce
from repro.netsim import GIGE, TIERED_ARIES, TIERED_GIGE, TIERED_IB_FDR, replay
from repro.runtime import Topology

N = 1 << 20 if FULL_SCALE else 1 << 18
STATIC_DENSITY = 0.002  # E[K] stays far below delta on every topology
DYNAMIC_DENSITY = 0.12  # E[K] crosses delta -> DSAR territory

TOPOLOGIES = ("2x4", "4x8")
TIERED_PRESETS = (TIERED_ARIES, TIERED_IB_FDR, TIERED_GIGE)
STATIC_ALGOS = ("ssar_hier", "ssar_rec_dbl", "ssar_split_ag", "ssar_ring")
DYNAMIC_ALGOS = ("dsar_hier", "dsar_split_ag")


def _measure(topology: Topology) -> dict[str, dict[str, float]]:
    """algorithm -> {preset name or 'gige_flat': replayed makespan}."""
    times: dict[str, dict[str, float]] = {}
    for algos, density in ((STATIC_ALGOS, STATIC_DENSITY), (DYNAMIC_ALGOS, DYNAMIC_DENSITY)):
        nnz = int(N * density)
        streams = [uniform_stream(N, nnz, rank) for rank in range(topology.nranks)]
        for algo in algos:
            trace = run_sparse_allreduce(streams, algo, topology=topology).trace
            times[algo] = {
                preset.name: replay(trace, preset, topology=topology).makespan
                for preset in TIERED_PRESETS
            }
            times[algo]["gige_flat"] = replay(trace, GIGE).makespan
    return times


def _run_experiment() -> dict[str, dict[str, dict[str, float]]]:
    return {spec: _measure(Topology.from_spec(spec)) for spec in TOPOLOGIES}


def _render(all_times: dict[str, dict[str, dict[str, float]]]) -> str:
    columns = [p.name for p in TIERED_PRESETS] + ["gige_flat"]
    blocks = []
    for spec, times in all_times.items():
        headers = ["algorithm"] + columns
        rows = [
            [algo] + [fmt_time(times[algo][c]) for c in columns]
            for algo in times
        ]
        blocks.append(
            format_table(
                headers, rows,
                title=f"Two-tier replay on {spec} (N={N}, "
                      f"d_static={STATIC_DENSITY:.3%}, d_dynamic={DYNAMIC_DENSITY:.1%})",
            )
        )
    note = (
        "\nEach host's ranks share one uplink under the tiered presets; the\n"
        "hierarchical rows cross it once per host instead of once per rank.\n"
    )
    return "\n".join(blocks) + note


def test_tiered_replay_hier_vs_flat(benchmark):
    all_times = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("tiered_replay", _render(all_times))

    for spec, times in all_times.items():
        topo = Topology.from_spec(spec)
        nranks = topo.nranks
        # under the wire-dominated GigE tier the hierarchical schedule
        # sweeps its class on every topology ...
        static_gige = {a: times[a][TIERED_GIGE.name] for a in STATIC_ALGOS}
        assert static_gige["ssar_hier"] == min(static_gige.values()), (spec, static_gige)
        assert (
            times["dsar_hier"][TIERED_GIGE.name]
            < times["dsar_split_ag"][TIERED_GIGE.name]
        ), spec
        # ... and the selector's verdict matches the replay's
        assert (
            choose_algorithm(N, nranks, int(N * STATIC_DENSITY), topology=topo)
            == "ssar_hier"
        )
        assert (
            choose_algorithm(
                N, nranks, int(N * DYNAMIC_DENSITY), topology=topo, network=TIERED_GIGE
            )
            == "dsar_hier"
        )
        # on every tiered preset, hier beats its structural counterpart
        # (same unions, but rec_dbl's inter round contends on the uplinks)
        for preset in TIERED_PRESETS:
            assert times["ssar_hier"][preset.name] < times["ssar_rec_dbl"][preset.name], (
                spec, preset.name,
            )
        # the flat-preset column keeps the historical (topology-blind)
        # ordering: hierarchy pays extra rounds and cannot win there
        assert times["ssar_hier"]["gige_flat"] >= times["ssar_rec_dbl"]["gige_flat"]
