"""Ablation: momentum correction and warm-up (§8.4's DGC techniques).

The paper deployed momentum correction and warm-up training when pushing
ResNet50 to high sparsity at large batch sizes — i.e. at *aggressive
effective step sizes*. This bench isolates both knobs on an
ill-conditioned quadratic in two regimes:

* a **stable** step size: every variant converges; the corrections cost
  nothing (same traffic, same error);
* an **aggressive** step size (edge of stability): plain TopK SGD blows
  up while momentum correction keeps the run bounded and warm-up further
  stabilises the early phase — the §8.4 deployment scenario.
"""

from __future__ import annotations

from common import fmt_bytes, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.core import DGCConfig, TopKSGDConfig, dgc_sgd, quantized_topk_sgd
from repro.runtime import run_ranks


DIM = 256
P = 4
STEPS = 300
MOMENTUM = 0.9


def _setup():
    scales = np.logspace(0, 1.5, DIM)  # condition number ~30
    centre = np.random.default_rng(17).standard_normal(DIM)

    def grad_fn_for(rank):
        g = np.random.default_rng(70 + rank)

        def fn(params, step):
            return (
                scales * (params - centre) / P + g.standard_normal(DIM) * 0.01
            ).astype(np.float32)

        return fn

    return grad_fn_for, centre


def _run_regime(lr: float):
    grad_fn_for, centre = _setup()
    m = MOMENTUM

    def plain(comm):
        cfg = TopKSGDConfig(k=4, bucket_size=64, lr=lr / (1 - m), lr_decay=0.005)
        return quantized_topk_sgd(comm, grad_fn_for(comm.rank), DIM, STEPS, cfg)

    def corrected(comm):
        cfg = DGCConfig(k=4, bucket_size=64, lr=lr, momentum=m, lr_decay=0.005)
        return dgc_sgd(comm, grad_fn_for(comm.rank), DIM, STEPS, cfg)

    def corrected_warmup(comm):
        cfg = DGCConfig(
            k=4, bucket_size=64, lr=lr, momentum=m, lr_decay=0.005, warmup_steps=40
        )
        return dgc_sgd(comm, grad_fn_for(comm.rank), DIM, STEPS, cfg)

    out = {}
    for name, prog in (
        ("plain topk", plain),
        ("+momentum corr.", corrected),
        ("+corr.+warmup", corrected_warmup),
    ):
        run = run_ranks(prog, P)
        err = float(np.linalg.norm(run[0].params - centre) / np.linalg.norm(centre))
        out[name] = {
            "err": err,
            "bytes": sum(run[0].bytes_sent_per_step),
            "early_bytes": sum(run[0].bytes_sent_per_step[:40]),
        }
    return out


def _run_experiment():
    return {"stable (lr=0.003)": _run_regime(0.003), "aggressive (lr=0.005)": _run_regime(0.005)}


def test_ablation_momentum_warmup(benchmark):
    regimes = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    rows = []
    for regime, variants in regimes.items():
        for name, v in variants.items():
            err = "diverged" if (not np.isfinite(v["err"]) or v["err"] > 100) else f"{v['err']:.4f}"
            rows.append([regime, name, err, fmt_bytes(v["bytes"]), fmt_bytes(v["early_bytes"])])
    write_result(
        "ablation_dgc",
        format_table(
            ["regime", "variant", "rel. error", "total bytes", "first-40-step bytes"],
            rows, title="Ablation: momentum correction + warm-up (§8.4 / DGC)",
        )
        + "\nAt stable step sizes the corrections are free; at aggressive step\n"
        "sizes (the high-sparsity/large-batch regime of §8.4) they are what\n"
        "keeps sparse training from destabilising.\n",
    )

    stable = regimes["stable (lr=0.003)"]
    aggressive = regimes["aggressive (lr=0.005)"]
    # stable: everything converges
    for name, v in stable.items():
        assert v["err"] < 0.2, f"stable {name}: {v['err']}"
    # aggressive: the corrections dominate plain TopK
    plain_err = aggressive["plain topk"]["err"]
    warm_err = aggressive["+corr.+warmup"]["err"]
    assert not np.isfinite(plain_err) or warm_err < plain_err / 2
    assert warm_err <= aggressive["+momentum corr."]["err"] * 1.2
    # warm-up spends visibly more early traffic
    assert (
        aggressive["+corr.+warmup"]["early_bytes"]
        > 2 * aggressive["+momentum corr."]["early_bytes"]
    )
