"""§8.2 SCD experiment: sparse vs dense allgather for coordinate descent.

Paper numbers (URL, P=8, 100 coordinates per node per iteration, Piz
Daint): dense allgather epoch 49s with 24s communication; sparse
allgather epoch 26s with 4.5s communication — a 1.8x end-to-end speedup
from a 5.3x communication speedup. We reproduce the same experiment on
URL-like data and check the two speedup factors have that shape.
"""

from __future__ import annotations

from common import fmt_time, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.mlopt import LogisticRegression, SCDConfig, distributed_scd, make_url_like
from repro.netsim import ARIES, replay
from repro.runtime import run_ranks


P = 8
ITERS = 40


def _run_experiment():
    ds = make_url_like(scale=0.01, n_samples=600)
    outcomes = {}
    for mode in ("dense", "sparse"):
        def prog(comm, mode=mode):
            cfg = SCDConfig(
                epochs=1, iterations_per_epoch=ITERS, block_size=100, lr=1.0, mode=mode
            )
            return distributed_scd(comm, ds, LogisticRegression(ds.n_features, 1e-5), cfg)

        out = run_ranks(prog, P)
        outcomes[mode] = {
            "total": replay(out.trace, ARIES).makespan,
            "comm": replay(out.trace, ARIES.with_(gamma=0.0)).makespan,
            "loss": out[0].final_loss,
            "params": out[0].params,
            "bytes": out.trace.total_bytes_sent,
        }
    return ds, outcomes


def _render(ds, o) -> str:
    rows = [
        [mode,
         fmt_time(o[mode]["total"]), fmt_time(o[mode]["comm"]),
         f"{o[mode]['bytes'] / 1e6:.2f}MB", f"{o[mode]['loss']:.4f}"]
        for mode in ("dense", "sparse")
    ]
    total_speedup = o["dense"]["total"] / o["sparse"]["total"]
    comm_speedup = o["dense"]["comm"] / o["sparse"]["comm"]
    note = (
        f"\nURL-like ({ds.n_samples} x {ds.n_features}), P={P}, 100 coords/node/iter.\n"
        f"end-to-end speedup {total_speedup:.1f}x from a {comm_speedup:.1f}x\n"
        "communication speedup (paper: 1.8x from 5.3x).\n"
    )
    return format_table(
        ["allgather", "epoch time", "comm time", "bytes", "final loss"],
        rows, title="SCD: sparse vs dense allgather (paper §8.2)",
    ) + note


def test_scd_sparse_allgather_speedup(benchmark):
    import numpy as np

    ds, o = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("scd_allgather", _render(ds, o))

    # identical optimisation path: the collective is lossless
    assert np.allclose(o["dense"]["params"], o["sparse"]["params"], atol=1e-6)
    comm_speedup = o["dense"]["comm"] / o["sparse"]["comm"]
    total_speedup = o["dense"]["total"] / o["sparse"]["total"]
    assert comm_speedup > 3.0  # paper: 5.3x
    assert total_speedup > 1.2  # paper: 1.8x
    assert comm_speedup > total_speedup  # comm is only part of the epoch
