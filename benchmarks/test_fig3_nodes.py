"""Figure 3 (left): reduction time versus node count.

Paper setup: Piz Daint (Aries), N = 16M, per-node density d = 0.781%,
algorithms {dense allreduce, ring dense, sparse ring, SSAR_Recursive_double,
SSAR_Split_allgather, DSAR_Split_allgather}, node counts 2..many.

We execute the real algorithms at N = 2^20 (same density) on the thread
backend and replay under the Aries-class preset. Expected shape (paper):
sparse algorithms win by orders of magnitude at this density; the ring
dense allreduce is competitive only at small P; SSAR_Recursive_double's
advantage shrinks as P grows (fill-in makes its messages grow); DSAR gives
only a bounded improvement.
"""

from __future__ import annotations

from common import FULL_SCALE, fmt_time, format_table, uniform_stream, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.collectives import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    dsar_split_allgather,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from repro.netsim import ARIES, replay
from repro.runtime import run_ranks


N = 1 << 24 if FULL_SCALE else 1 << 20
DENSITY = 0.00781
K = int(N * DENSITY)
NODE_COUNTS = (2, 4, 8, 16, 32)

SPARSE_ALGOS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
    "dsar_split_ag": dsar_split_allgather,
}
DENSE_ALGOS = {
    "dense_mpi(rab.)": allreduce_rabenseifner,
    "dense_rec_dbl": allreduce_recursive_doubling,
    "dense_ring": allreduce_ring,
}


def _run_experiment() -> dict[str, dict[int, float]]:
    times: dict[str, dict[int, float]] = {}
    for name, algo in SPARSE_ALGOS.items():
        times[name] = {}
        for P in NODE_COUNTS:
            out = run_ranks(lambda c, a=algo: a(c, uniform_stream(N, K, c.rank)), P)
            times[name][P] = replay(out.trace, ARIES).makespan
    for name, algo in DENSE_ALGOS.items():
        times[name] = {}
        for P in NODE_COUNTS:
            out = run_ranks(
                lambda c, a=algo: a(c, uniform_stream(N, K, c.rank).to_dense()), P
            )
            times[name][P] = replay(out.trace, ARIES).makespan
    return times


def _render(times: dict[str, dict[int, float]]) -> str:
    headers = ["algorithm"] + [f"P={p}" for p in NODE_COUNTS]
    rows = [
        [name] + [fmt_time(times[name][p]) for p in NODE_COUNTS]
        for name in times
    ]
    best_sparse = min(times["ssar_rec_dbl"][8], times["ssar_split_ag"][8])
    speedup = times["dense_mpi(rab.)"][8] / best_sparse
    note = (
        f"\nN={N}, d={DENSITY:.3%} (k={K}), Aries-class network.\n"
        f"Best sparse vs dense MPI at P=8: {speedup:.1f}x "
        f"(paper: order-of-magnitude at this density).\n"
    )
    return format_table(headers, rows, title="Fig. 3 (left): reduction time vs node count") + note


def test_fig3_reduction_time_vs_nodes(benchmark):
    times = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig3_nodes", _render(times))

    # qualitative assertions from the paper
    for P in NODE_COUNTS:
        best_sparse = min(times[a][P] for a in SPARSE_ALGOS if a != "dsar_split_ag")
        assert best_sparse < times["dense_mpi(rab.)"][P], f"sparse must win at P={P}"
    # order-of-magnitude at small P; the advantage shrinks as fill-in grows
    # with P ("less improvement ... at higher node count", §8.1)
    assert times["dense_mpi(rab.)"][2] / times["ssar_rec_dbl"][2] > 10
    gain = lambda P: times["dense_mpi(rab.)"][P] / min(
        times["ssar_rec_dbl"][P], times["ssar_split_ag"][P]
    )
    assert gain(8) > 5
    assert gain(2) > gain(32)
    # rec-dbl specifically degrades faster than split_ag as P grows
    assert (times["ssar_rec_dbl"][32] / times["ssar_rec_dbl"][2]) > (
        times["ssar_split_ag"][32] / times["ssar_split_ag"][2]
    )
    # DSAR improves on dense but only by a bounded factor (Lemma 5.2)
    assert times["dsar_split_ag"][32] < times["dense_mpi(rab.)"][32]
    assert times["dense_mpi(rab.)"][32] / times["dsar_split_ag"][32] < 8
