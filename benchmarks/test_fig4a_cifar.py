"""Figure 4a: training accuracy, sparsified+quantized vs dense SGD (CIFAR).

Paper setup: ResNet-110 on CIFAR-10, TopK with k=8 and k=16 out of every
512 coordinates (~1.6-3% density) with 4-bit stochastic quantization,
versus full-precision dense SGD. Finding: the sparse variants recover the
dense accuracy ("the end accuracy matches that of the full-precision
baseline when selecting k=16 ... and for k=8/512 the accuracy is 1% above
the 32-bit variant").

Our stand-in: an MLP on CIFAR-like data (the gradient-compression
behaviour is architecture-agnostic; DESIGN.md documents the
substitution). Series reported: accuracy-vs-step for dense, TopK-8+Q4,
TopK-16+Q4.
"""

from __future__ import annotations

from common import FULL_SCALE, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.core import TopKSGDConfig, dense_sgd, quantized_topk_sgd
from repro.mlopt import make_cifar_like
from repro.nn import make_eval_fn, make_grad_fn, make_mlp
from repro.runtime import run_ranks


P = 8
STEPS = 240 if FULL_SCALE else 160
DIM = 512
EVAL_EVERY = 40
LR = 0.05


def _build(comm):
    ds = make_cifar_like(n_samples=1024, dim=DIM, seed=13)
    net = make_mlp(DIM, 10, hidden=(128,), seed=29)
    grad_fn = make_grad_fn(net, ds, comm, batch_size=32, seed=5)
    eval_fn = make_eval_fn(net, ds, max_samples=512)
    return net, grad_fn, eval_fn


def _run_experiment():
    def topk_prog(comm, k):
        net, grad_fn, eval_fn = _build(comm)
        cfg = TopKSGDConfig(k=k, bucket_size=512, lr=LR, quantizer_bits=4)
        return quantized_topk_sgd(
            comm, grad_fn, net.n_params, STEPS, cfg, eval_fn,
            eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    def dense_prog(comm):
        net, grad_fn, eval_fn = _build(comm)
        # sum semantics (x <- x - eta * sum_i grad_i), as in Algorithm 1
        return dense_sgd(
            comm, grad_fn, net.n_params, STEPS, lr=LR,
            eval_fn=eval_fn, eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    return {
        "dense 32-bit": run_ranks(dense_prog, P)[0],
        "topk 8/512 + 4bit": run_ranks(topk_prog, P, 8)[0],
        "topk 16/512 + 4bit": run_ranks(topk_prog, P, 16)[0],
    }


def _render(results) -> str:
    steps = [h["step"] for h in next(iter(results.values())).history]
    headers = ["variant"] + [f"step {s}" for s in steps] + ["KB/step"]
    rows = []
    for name, res in results.items():
        rows.append(
            [name]
            + [f"{h['accuracy']:.3f}" for h in res.history]
            + [f"{res.mean_bytes_per_step / 1e3:.1f}"]
        )
    note = (
        f"\nMLP on CIFAR-like data, P={P}, {STEPS} steps, lr={LR}, bucket=512.\n"
        "Paper finding (Fig. 4a): TopK 8-16/512 + 4-bit recovers the dense\n"
        "accuracy; compressed traffic is ~2 orders of magnitude smaller.\n"
    )
    return format_table(headers, rows, title="Fig. 4a: train accuracy, sparse vs dense") + note


def test_fig4a_cifar_accuracy(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig4a_cifar", _render(results))

    dense_final = results["dense 32-bit"].history[-1]["accuracy"]
    for name in ("topk 8/512 + 4bit", "topk 16/512 + 4bit"):
        final = results[name].history[-1]["accuracy"]
        assert final >= dense_final - 0.02, f"{name} lost accuracy: {final} vs {dense_final}"
    # compression: bytes per step at least 20x smaller
    assert (
        results["dense 32-bit"].mean_bytes_per_step
        / results["topk 8/512 + 4bit"].mean_bytes_per_step
        > 20
    )
    # k=16 sends roughly twice the payload of k=8 (index-dominated)
    ratio = (
        results["topk 16/512 + 4bit"].mean_bytes_per_step
        / results["topk 8/512 + 4bit"].mean_bytes_per_step
    )
    assert 1.5 < ratio < 2.5
