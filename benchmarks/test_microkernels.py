"""Micro-kernel wall-clock benchmarks (pytest-benchmark, multiple rounds).

These time the actual Python/NumPy kernels (not replayed models): stream
summation in all representation combinations, QSGD encode/decode, TopK
selection and bit packing. They are the library's §5.1 "Efficient
Summation" cost story and guard against performance regressions.
"""

from __future__ import annotations

import common  # noqa: F401, E402  (path bootstrap: keep before repro imports)

import numpy as np
import pytest

from repro.core import topk_bucket_indices, topk_global_indices
from repro.quant import QSGDQuantizer, pack_integers, unpack_integers
from repro.streams import SparseStream, add_streams, merge_sparse_pairs

N = 1 << 20
NNZ = 10_000


@pytest.fixture(scope="module")
def sparse_pair():
    gen = np.random.default_rng(1)
    a = SparseStream.random_uniform(N, NNZ, gen)
    b = SparseStream.random_uniform(N, NNZ, gen)
    return a, b


@pytest.fixture(scope="module")
def dense_vec():
    return np.random.default_rng(2).standard_normal(N).astype(np.float32)


def test_kernel_sparse_sparse_sum(benchmark, sparse_pair):
    a, b = sparse_pair
    out = benchmark(add_streams, a, b)
    assert out.nnz <= 2 * NNZ


def test_kernel_merge_pairs(benchmark, sparse_pair):
    a, b = sparse_pair
    idx, val = benchmark(merge_sparse_pairs, a.indices, a.values, b.indices, b.values)
    assert idx.size <= 2 * NNZ


def test_kernel_dense_dense_sum(benchmark, dense_vec):
    a = SparseStream(N, dense=dense_vec)
    b = SparseStream(N, dense=dense_vec)
    out = benchmark(add_streams, a, b)
    assert out.is_dense


def test_kernel_sparse_into_dense(benchmark, sparse_pair, dense_vec):
    a, _ = sparse_pair
    d = SparseStream(N, dense=dense_vec)
    out = benchmark(add_streams, d, a)
    assert out.is_dense


def test_kernel_qsgd_quantize(benchmark, dense_vec):
    q = QSGDQuantizer(bits=4, bucket_size=1024, seed=0)
    block = benchmark(q.quantize, dense_vec)
    assert block.length == N


def test_kernel_qsgd_dequantize(benchmark, dense_vec):
    q = QSGDQuantizer(bits=4, bucket_size=1024, seed=0)
    block = q.quantize(dense_vec)
    out = benchmark(q.dequantize, block)
    assert out.shape == (N,)


def test_kernel_topk_global(benchmark, dense_vec):
    idx = benchmark(topk_global_indices, dense_vec, NNZ)
    assert idx.size == NNZ


def test_kernel_topk_bucket(benchmark, dense_vec):
    idx = benchmark(topk_bucket_indices, dense_vec, 4, 512)
    assert idx.size == (N // 512) * 4


def test_kernel_pack_unpack(benchmark):
    codes = np.random.default_rng(3).integers(0, 16, size=N, dtype=np.uint8)

    def roundtrip():
        return unpack_integers(pack_integers(codes, 4), 4, N)

    out = benchmark(roundtrip)
    assert np.array_equal(out, codes)


def test_kernel_stream_to_dense(benchmark, sparse_pair):
    a, _ = sparse_pair
    out = benchmark(a.to_dense)
    assert out.shape == (N,)
