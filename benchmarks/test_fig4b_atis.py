"""Figure 4b: LSTM training accuracy on ATIS, TopK vs dense.

Paper setup: encoder-decoder LSTM on the ATIS corpus, TopK k=2 out of
every 512 coordinates (~0.4% density), no additional quantization;
training and test metrics stay within 1% of the full-precision baseline.
The ATIS model is the communication-bound case: the paper reports a
5.99x end-to-end speedup there.

Our stand-in: LSTM intent classifier on a synthetic trigger-token task.
"""

from __future__ import annotations

from common import FULL_SCALE, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

from repro.core import TopKSGDConfig, dense_sgd, quantized_topk_sgd
from repro.mlopt import make_sequence_task
from repro.netsim import ARIES, replay
from repro.nn import make_lstm, make_sequence_eval_fn, make_sequence_grad_fn
from repro.runtime import run_ranks


P = 4
STEPS = 160 if FULL_SCALE else 120
EVAL_EVERY = 30
LR = 0.4
K = 2  # of every 512: the paper's ATIS setting


def _build(comm):
    ds = make_sequence_task(n_samples=512, seq_len=12, vocab_size=128, n_classes=6, seed=17)
    net = make_lstm(128, 6, embed_dim=24, hidden_dim=48, seed=31)
    grad_fn = make_sequence_grad_fn(net, ds, comm, batch_size=24, seed=6)
    eval_fn = make_sequence_eval_fn(net, ds, max_samples=256)
    return net, grad_fn, eval_fn


def _run_experiment():
    def topk_prog(comm):
        net, grad_fn, eval_fn = _build(comm)
        cfg = TopKSGDConfig(k=K, bucket_size=512, lr=LR)
        return quantized_topk_sgd(
            comm, grad_fn, net.n_params, STEPS, cfg, eval_fn,
            eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    def dense_prog(comm):
        net, grad_fn, eval_fn = _build(comm)
        # sum semantics (x <- x - eta * sum_i grad_i), as in Algorithm 1
        return dense_sgd(
            comm, grad_fn, net.n_params, STEPS, lr=LR,
            eval_fn=eval_fn, eval_every=EVAL_EVERY, init_params=net.param_vector(),
        )

    topk_out = run_ranks(topk_prog, P)
    dense_out = run_ranks(dense_prog, P)
    comm_topk = replay(topk_out.trace, ARIES.with_(gamma=0.0)).makespan
    comm_dense = replay(dense_out.trace, ARIES.with_(gamma=0.0)).makespan
    return {
        "dense 32-bit": (dense_out[0], comm_dense),
        f"topk {K}/512": (topk_out[0], comm_topk),
    }


def _render(results) -> str:
    steps = [h["step"] for h in next(iter(results.values()))[0].history]
    headers = ["variant"] + [f"step {s}" for s in steps] + ["KB/step", "comm total"]
    rows = []
    for name, (res, comm_t) in results.items():
        rows.append(
            [name]
            + [f"{h['accuracy']:.3f}" for h in res.history]
            + [f"{res.mean_bytes_per_step / 1e3:.1f}", f"{comm_t * 1e3:.2f}ms"]
        )
    note = (
        f"\nLSTM on ATIS-like sequences, P={P}, {STEPS} steps, k={K}/512.\n"
        "Paper finding (Fig. 4b): TopK 2/512 matches dense accuracy within\n"
        "1%; the 20M-param ATIS LSTM sent <0.5MB instead of 80MB per step.\n"
    )
    return format_table(headers, rows, title="Fig. 4b: LSTM train accuracy, sparse vs dense") + note


def test_fig4b_atis_lstm_accuracy(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig4b_atis", _render(results))

    dense_res, dense_comm = results["dense 32-bit"]
    topk_res, topk_comm = results[f"topk {K}/512"]
    # accuracy within a point or two of dense (paper: within 1%)
    assert topk_res.history[-1]["accuracy"] >= dense_res.history[-1]["accuracy"] - 0.03
    # the task is actually learned
    assert topk_res.history[-1]["accuracy"] > 0.9
    # large traffic reduction (paper: 80MB -> 0.5MB is 160x; index overhead
    # makes ours ~2x smaller than that at k=2/512)
    assert dense_res.mean_bytes_per_step / topk_res.mean_bytes_per_step > 50
    # and the replayed communication time shrinks accordingly
    assert dense_comm / topk_comm > 5
