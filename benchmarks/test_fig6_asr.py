"""Figure 6: ASR production workload — loss vs time and scalability.

Paper setup: 60M-parameter attention LSTM, 30k hours of speech, 128 V100
GPUs. Baseline: carefully tuned block-momentum SGD (BMUF) on 16 GPUs
(higher counts diverged) taking ~14 days. SparCML TopK (4/512) trains to
the same CE loss in <1.8 days on 128 GPUs; Fig. 6b shows near-linear
scalability of the sparse exchange.

Simulation-scale reproduction (documented in DESIGN.md): an LSTM-shaped
parameter vector (scaled from 60M to 2M), one TopK gradient exchange per
step measured by trace replay on an IB-like network, and a fitted
loss-vs-epoch curve from an actual LSTM training run, so "loss vs wall
time" combines measured comm times with measured convergence behaviour.
The BMUF baseline is modelled as dense allreduce at P=16 with updates
exchanged 4x less often (its defining communication reduction).
"""

from __future__ import annotations

from common import FULL_SCALE, fmt_time, format_table, write_result  # noqa: E402  (path bootstrap: keep before repro imports)

import numpy as np

from repro.collectives import dense_allreduce, ssar_split_allgather
from repro.core import ErrorFeedback
from repro.netsim import IB_FDR, replay
from repro.runtime import run_ranks


MODEL_PARAMS = 1 << 22 if FULL_SCALE else 1 << 21
K, BUCKET = 4, 512
GPU_COUNTS = (16, 32, 64, 128)  # ranks stand in for GPUs
RANK_CAP = 32  # thread backend cap; larger counts replayed at cap pattern
COMPUTE_PER_STEP_S = 0.040
BMUF_EXCHANGE_PERIOD = 4  # BMUF communicates every 4 steps
TARGET_LOSS = 0.35
STEPS_TO_TARGET = 400  # from the convergence harness (same for both: the
# paper reports TopK reaches the same CE loss per epoch)


HOT_PER_BUCKET = 16  # "attention layer" coordinates: ~3% of the model


def _asr_gradient(rank: int) -> np.ndarray:
    """ASR-like gradient: most update mass concentrates in a hot subset.

    The paper leverages exactly this ("most updates will occur in the
    parameters of the attention layer", §8.4): all ranks' TopK selections
    overlap heavily, so the reduced size K stays small and P-stable.
    """
    gen = np.random.default_rng(60 + rank)
    grad = gen.standard_normal(MODEL_PARAMS).astype(np.float32) * 0.05
    hot = (np.arange(MODEL_PARAMS) % BUCKET) < HOT_PER_BUCKET
    grad[hot] += gen.standard_normal(int(hot.sum())).astype(np.float32)
    return grad


def _sparse_step_time(P: int) -> float:
    ranks = min(P, RANK_CAP)

    def prog(comm):
        ef = ErrorFeedback(MODEL_PARAMS, K, BUCKET)
        stream = ef.select(_asr_gradient(comm.rank))
        return ssar_split_allgather(comm, stream).nnz

    out = run_ranks(prog, ranks)
    t = replay(out.trace, IB_FDR).makespan
    if P > ranks:
        # K saturates at the hot-set size, so the bandwidth term is flat in
        # P; only the split latency keeps growing ((P-1) alpha, §5.3.2)
        t = t + (P - ranks) * IB_FDR.alpha
    return t


def _dense_step_time(P: int) -> float:
    ranks = min(P, RANK_CAP)

    def prog(comm):
        gen = np.random.default_rng(60 + comm.rank)
        return dense_allreduce(
            comm, gen.standard_normal(MODEL_PARAMS).astype(np.float32), "dense_ring"
        ).shape[0]

    out = run_ranks(prog, ranks)
    t = replay(out.trace, IB_FDR).makespan
    # ring bandwidth term is ~P-independent; latency term negligible here
    return t


def _run_experiment():
    sparse_steps = {P: COMPUTE_PER_STEP_S + _sparse_step_time(P) for P in GPU_COUNTS}
    bmuf_16 = COMPUTE_PER_STEP_S + _dense_step_time(16) / BMUF_EXCHANGE_PERIOD

    # strong scaling: global batch fixed, so P ranks process a step in
    # compute/P ... the paper keeps batch fixed at 512 and scales workers.
    results = {}
    for P in GPU_COUNTS:
        step = COMPUTE_PER_STEP_S * (16 / P) + (sparse_steps[P] - COMPUTE_PER_STEP_S)
        results[P] = {
            "step_time": step,
            "time_to_target": step * STEPS_TO_TARGET,
        }
    baseline_time = bmuf_16 * STEPS_TO_TARGET
    return results, baseline_time


def _render(results, baseline_time) -> str:
    rows = [["BMUF dense (16)", fmt_time(baseline_time / STEPS_TO_TARGET),
             fmt_time(baseline_time), "1.00x", "-"]]
    for P, r in results.items():
        rows.append(
            [f"sparcml topk ({P})", fmt_time(r["step_time"]),
             fmt_time(r["time_to_target"]),
             f"{baseline_time / r['time_to_target']:.2f}x",
             f"{results[16]['time_to_target'] / r['time_to_target']:.2f}x"]
        )
    note = (
        f"\n{MODEL_PARAMS / 1e6:.0f}M-param LSTM stand-in, TopK {K}/{BUCKET}, IB-like"
        " network,\nstrong scaling at fixed global batch (the paper's §8.4 protocol).\n"
        "Paper: 14 days (16-GPU BMUF) -> <1.8 days (128 GPUs) ~ 8x; scaling\n"
        "from 16->128 GPUs is near-linear (Fig. 6b).\n"
    )
    return format_table(
        ["configuration", "t/step", "time to CE target", "vs BMUF", "vs sparcml-16"],
        rows, title="Fig. 6: ASR time-to-accuracy and scalability",
    ) + note


def test_fig6_asr_scaling(benchmark):
    results, baseline_time = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_result("fig6_asr", _render(results, baseline_time))

    # Fig. 6a: sparse at high GPU counts reaches the target much faster
    # than the BMUF baseline (paper: ~8x at 128)
    speedup_128 = baseline_time / results[128]["time_to_target"]
    assert speedup_128 > 4, f"128-GPU speedup {speedup_128}"
    # Fig. 6b: monotone scalability 16 -> 128
    times = [results[P]["time_to_target"] for P in GPU_COUNTS]
    assert all(a > b for a, b in zip(times, times[1:]))
    # scaling efficiency from 16 to 128 stays above 50%
    eff = (results[16]["time_to_target"] / results[128]["time_to_target"]) / (128 / 16)
    assert eff > 0.5, f"scaling efficiency {eff}"
