# Developer entry points for the SparCML reproduction.
#
#   make test         the tier-1 suite (what CI gates on)
#   make smoke        fast subset: skips tests with "slow" in their name
#                     and those marked @pytest.mark.slow
#   make bench-smoke  a quick pass over the cheapest benchmark figures
#   make bench        every benchmark table/figure (minutes)

PYTHON ?= python

.PHONY: test smoke bench-smoke bench

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) -m pytest -x -q -k "not slow" -m "not slow"

bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_fig1_fillin.py benchmarks/test_fig7_expected_k.py benchmarks/test_table1_datasets.py

bench:
	$(PYTHON) -m pytest -q benchmarks/
