# Developer entry points for the SparCML reproduction.
#
#   make test               the tier-1 suite (what CI gates on)
#   make lint               ruff check (config in pyproject.toml; CI-enforced)
#   make smoke              fast subset (skips "slow" tests) plus a
#                           one-iteration bench-kernels sanity pass
#   make bench-kernels      quick wall-clock microkernel/transport/allreduce/
#                           overlap bench; validates the emitted JSON (CI-safe,
#                           writes to results/, never touches the committed
#                           baseline)
#   make bench-kernels-full full bench refreshing BENCH_microkernels.json at
#                           the repo root (the committed perf trajectory)
#   make calibrate          quick alpha/beta/gamma fit from measured curves,
#                           written to results/calibrated_network.json (load
#                           anywhere with --network calibrated:<path>)
#   make bench-smoke        a quick pass over the cheapest benchmark figures
#   make bench              every benchmark table/figure (minutes)
#
# CI (.github/workflows/ci.yml) runs `make test` + `make bench-kernels` as
# the main gate, the backend-equivalence/property suites as a separate leg
# (transport flakiness surfaces there, with results/ uploaded on failure),
# and `make lint` — all on every push/PR.

PYTHON ?= python

# pytest picks up src/ from pyproject's pythonpath; direct `-m repro`
# invocations need it on PYTHONPATH explicitly.
RUN = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON)

.PHONY: test lint smoke bench-smoke bench bench-kernels bench-kernels-full calibrate

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m ruff check .

smoke:
	$(PYTHON) -m pytest -x -q -k "not slow" -m "not slow"
	$(MAKE) bench-kernels

bench-kernels:
	$(RUN) -m repro bench-kernels --quick --out results/BENCH_microkernels.quick.json
	$(PYTHON) -c "import json; d = json.load(open('results/BENCH_microkernels.quick.json')); \
	assert d['schema'] == 5 and d['microkernels'] and d['allreduce'] and d['transport_roundtrip'], 'malformed bench JSON'; \
	assert d['allreduce_ordering_check']['ok'], 'predicted vs measured ordering violated'; \
	hier = d['hierarchy']['per_algorithm']; \
	assert 'ssar_hier' in hier and 'dsar_hier' in hier, 'missing hier rows'; \
	assert all('replay_tiered_s' in row and 'replay_flat_s' in row for row in hier.values()), 'missing tiered replay fields'; \
	assert all(row['replay_tiered_s'] > 0 and row['replay_flat_s'] > 0 for row in hier.values()), 'bad replay makespans'; \
	assert all('ssar_hier' in per_algo and 'dsar_hier' in per_algo for per_algo in d['allreduce'].values()), 'missing hier allreduce rows'; \
	ov = d['overlap']; \
	assert ov['chunks'] >= 2 and ov['per_backend'], 'missing overlap rows'; \
	assert all('overlap_fraction' in m and m['overlapped_s']['median_s'] > 0 for m in ov['per_backend'].values()), 'bad overlap metrics'; \
	assert ov['predicted']['pipelined_makespan_s'] > 0 and ov['predicted']['pipelined_makespan_s'] <= ov['predicted']['blocking_makespan_s'], 'bad predicted makespans'; \
	print('bench JSON OK')"

bench-kernels-full:
	$(RUN) -m repro bench-kernels

calibrate:
	$(RUN) -m repro calibrate --quick

bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_fig1_fillin.py benchmarks/test_fig7_expected_k.py benchmarks/test_table1_datasets.py benchmarks/test_tiered_replay.py

bench:
	$(PYTHON) -m pytest -q benchmarks/
