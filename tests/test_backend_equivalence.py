"""Backend-parametrized equivalence layer: every collective, every backend.

The contract of the pluggable runtime (ISSUE 1) is that the backends are
*indistinguishable* to the algorithms: same results bit for bit, same
trace byte/message accounting. These tests pin that down for every
collective in :mod:`repro.collectives` at P in {1, 2, 3, 4, 8}, with the
thread backend as the reference each real-transport backend (``process``
pipes, ``shmem`` shared-memory rings, ``socket`` TCP mesh) is held to.
"""

import numpy as np
import pytest

from repro.collectives import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    dsar_split_allgather,
    run_sparse_allreduce,
    sparse_allgather,
    sparse_allreduce,
    ssar_hierarchical,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from repro.runtime import available_backends, get_backend, run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

BACKENDS = ["thread", "process", "shmem", "socket"]
WORLD_SIZES = [1, 2, 3, 4, 8]

SPARSE_ALGOS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
    "ssar_hier": ssar_hierarchical,  # flat fallback path; non-flat below
    "dsar_split_ag": dsar_split_allgather,
}
DENSE_ALGOS = {
    "dense_rec_dbl": allreduce_recursive_doubling,
    "dense_ring": allreduce_ring,
    "dense_rabenseifner": allreduce_rabenseifner,
}

DIM, NNZ = 2048, 64


def _run_sparse(algo, nranks, backend):
    return run_ranks(
        lambda comm: algo(comm, make_rank_stream(DIM, NNZ, comm.rank)), nranks, backend=backend
    )


def test_all_backends_registered():
    assert set(BACKENDS) <= set(available_backends())
    for name in BACKENDS:
        assert get_backend(name).name == name
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("mpi")


@pytest.mark.parametrize("nranks", WORLD_SIZES)
@pytest.mark.parametrize("name,algo", sorted(SPARSE_ALGOS.items()))
class TestSparseCollectiveEquivalence:
    def test_backends_bit_identical(self, name, algo, nranks):
        """All backends agree bit for bit with each other, on every rank."""
        by_backend = {b: _run_sparse(algo, nranks, b) for b in BACKENDS}
        ref = reference_sum(DIM, NNZ, nranks)
        thread_out = by_backend["thread"]
        for backend in BACKENDS[1:]:
            other_out = by_backend[backend]
            for r in range(nranks):
                t, o = thread_out[r].to_dense(), other_out[r].to_dense()
                assert np.array_equal(t, o), (
                    f"{name} P={nranks} rank {r}: thread vs {backend} differ"
                )
                assert np.allclose(t, ref, atol=1e-4)
                assert thread_out[r].is_dense == other_out[r].is_dense

    def test_traces_equivalent(self, name, algo, nranks):
        """Byte accounting is a property of the algorithm, not the backend."""
        by_backend = {b: _run_sparse(algo, nranks, b) for b in BACKENDS}
        thread_out = by_backend["thread"]
        for backend in BACKENDS[1:]:
            other_out = by_backend[backend]
            assert thread_out.trace.total_messages == other_out.trace.total_messages, backend
            assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent, backend
            for r in range(nranks):
                assert thread_out.trace.bytes_sent_by(r) == other_out.trace.bytes_sent_by(r)


@pytest.mark.parametrize("nranks", WORLD_SIZES)
def test_hier_equivalence_on_simulated_hosts(nranks):
    """ssar_hier under a non-flat topology: every backend agrees bit for
    bit (results and byte accounting) on a simulated two-host world."""
    ranks_per_node = max(1, (nranks + 1) // 2)
    streams = [make_rank_stream(DIM, NNZ, r) for r in range(nranks)]
    by_backend = {
        b: run_sparse_allreduce(streams, "ssar_hier", backend=b, topology=ranks_per_node)
        for b in BACKENDS
    }
    ref = reference_sum(DIM, NNZ, nranks)
    thread_out = by_backend["thread"]
    for backend in BACKENDS[1:]:
        other_out = by_backend[backend]
        for r in range(nranks):
            t, o = thread_out[r].to_dense(), other_out[r].to_dense()
            assert np.array_equal(t, o), f"P={nranks} rank {r}: thread vs {backend}"
            assert np.allclose(t, ref, atol=1e-4)
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


@pytest.mark.parametrize("nranks", [2, 4, 8])
@pytest.mark.parametrize("algorithm", ["ssar_hier", "dsar_hier"])
@pytest.mark.parametrize("chunks", [2, 4])
def test_chunked_hier_equivalence(algorithm, chunks, nranks):
    """The chunked pipeline joins the equivalence layer: chunked
    ssar_hier/dsar_hier are bit-identical to the unchunked schedule AND
    across all four backends on a simulated two-host world, with
    backend-independent byte accounting."""
    ranks_per_node = max(1, (nranks + 1) // 2)
    streams = [make_rank_stream(DIM, NNZ, r) for r in range(nranks)]
    base = run_sparse_allreduce(streams, algorithm, topology=ranks_per_node)
    by_backend = {
        b: run_sparse_allreduce(
            streams, algorithm, backend=b, topology=ranks_per_node, chunks=chunks
        )
        for b in BACKENDS
    }
    ref = reference_sum(DIM, NNZ, nranks)
    thread_out = by_backend["thread"]
    for r in range(nranks):
        t = thread_out[r].to_dense()
        assert np.array_equal(t, base[r].to_dense()), (
            f"{algorithm} K={chunks} P={nranks} rank {r}: chunked vs unchunked"
        )
        assert np.allclose(t, ref, atol=1e-4)
        assert thread_out[r].is_dense == base[r].is_dense
    for backend in BACKENDS[1:]:
        other_out = by_backend[backend]
        for r in range(nranks):
            assert np.array_equal(thread_out[r].to_dense(), other_out[r].to_dense()), (
                f"{algorithm} K={chunks} P={nranks} rank {r}: thread vs {backend}"
            )
        assert thread_out.trace.total_messages == other_out.trace.total_messages
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


SPLIT_SCHEMES = {
    # color, key as functions of (rank, size): parity groups, reversed-key
    # halves, and a split that excludes rank 0 entirely (color None)
    "parity": lambda rank, size: (rank % 2, 0),
    "halves_reversed": lambda rank, size: (rank * 2 // max(size, 1), -rank),
    "exclude_rank0": lambda rank, size: (None if rank == 0 else 0, rank),
}


def _split_prog(comm, scheme_name):
    color, key = SPLIT_SCHEMES[scheme_name](comm.rank, comm.size)
    sub = comm.split(color, key)
    if sub is None:
        return None
    out = ssar_recursive_double(sub, make_rank_stream(DIM, NNZ, comm.rank))
    return (sub.rank, sub.size, sub.parent_ranks, out)


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
@pytest.mark.parametrize("scheme", sorted(SPLIT_SCHEMES))
class TestSplitEquivalence:
    """comm.split joins the equivalence layer: identical group shapes and
    bit-identical collective results on every backend."""

    def test_split_collectives_bit_identical(self, scheme, nranks):
        by_backend = {
            b: run_ranks(_split_prog, nranks, scheme, backend=b) for b in BACKENDS
        }
        thread_out = by_backend["thread"]
        for backend in BACKENDS[1:]:
            other_out = by_backend[backend]
            for r in range(nranks):
                t, o = thread_out[r], other_out[r]
                assert (t is None) == (o is None), f"{scheme} rank {r} on {backend}"
                if t is None:
                    continue
                assert t[:3] == o[:3], f"{scheme} rank {r}: group shape differs"
                assert np.array_equal(t[3].to_dense(), o[3].to_dense()), (
                    f"{scheme} P={nranks} rank {r}: thread vs {backend} differ"
                )
            assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent

    def test_split_results_match_member_reference(self, scheme, nranks):
        out = run_ranks(_split_prog, nranks, scheme, backend="thread")
        for r in range(nranks):
            if out[r] is None:
                continue
            _sub_rank, _sub_size, members, reduced = out[r]
            ref = sum(
                make_rank_stream(DIM, NNZ, m).to_dense() for m in members
            )
            assert np.allclose(reduced.to_dense(), ref, atol=1e-4)


@pytest.mark.parametrize("nranks", WORLD_SIZES)
@pytest.mark.parametrize("name,algo", sorted(DENSE_ALGOS.items()))
def test_dense_collective_equivalence(name, algo, nranks):
    def prog(comm):
        return algo(comm, make_rank_stream(DIM, NNZ, comm.rank).to_dense())

    by_backend = {b: run_ranks(prog, nranks, backend=b) for b in BACKENDS}
    ref = reference_sum(DIM, NNZ, nranks)
    thread_out = by_backend["thread"]
    for backend in BACKENDS[1:]:
        other_out = by_backend[backend]
        for r in range(nranks):
            assert np.array_equal(thread_out[r], other_out[r]), backend
            assert np.allclose(thread_out[r], ref, atol=1e-4)
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


@pytest.mark.parametrize("nranks", WORLD_SIZES)
def test_sparse_allgather_equivalence(nranks):
    dim = 600

    def prog(comm):
        lo = comm.rank * dim // comm.size
        hi = (comm.rank + 1) * dim // comm.size
        idx = np.arange(lo, hi, 2, dtype=np.uint32)
        vals = np.full(idx.size, comm.rank + 1.0, dtype=np.float32)
        return sparse_allgather(comm, SparseStream(dim, indices=idx, values=vals))

    by_backend = {b: run_ranks(prog, nranks, backend=b) for b in BACKENDS}
    thread_out = by_backend["thread"]
    for backend in BACKENDS[1:]:
        other_out = by_backend[backend]
        for r in range(nranks):
            assert np.array_equal(thread_out[r].to_dense(), other_out[r].to_dense()), backend
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


@pytest.mark.parametrize("backend", BACKENDS)
class TestApiOnBothBackends:
    def test_auto_dispatch(self, backend):
        def prog(comm):
            return sparse_allreduce(comm, make_rank_stream(4096, 50, comm.rank), algorithm="auto")

        out = run_ranks(prog, 4, backend=backend)
        assert np.allclose(out[0].to_dense(), reference_sum(4096, 50, 4), atol=1e-4)

    def test_run_sparse_allreduce_driver(self, backend):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        out = run_sparse_allreduce(streams, "ssar_rec_dbl", backend=backend)
        ref = reference_sum(DIM, NNZ, 4)
        for r in range(4):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)
        assert out.trace.total_messages > 0

    def test_mlopt_byte_accounting(self, backend):
        """EpochRecord.bytes_sent must come from the backend-neutral
        ``comm.trace``, not thread-world internals (regression: it silently
        reported 0 on the process backend)."""
        from repro.mlopt import LogisticRegression, SGDConfig, distributed_sgd, make_url_like

        ds = make_url_like(n_samples=120, seed=3)

        def prog(comm):
            history = distributed_sgd(
                comm, ds, LogisticRegression(ds.n_features), SGDConfig(epochs=1, lr=0.1, seed=5)
            )
            return history.records[-1].bytes_sent

        out = run_ranks(prog, 2, backend=backend)
        assert out[0] > 0
        # deterministic volume, identical across backends (includes the
        # 8-byte rank-consistent "auto" agreement round per resolution)
        assert out[0] == 13808

    def test_quantized_dsar(self, backend):
        from repro.quant import QSGDQuantizer

        def prog(comm):
            return dsar_split_allgather(
                comm,
                make_rank_stream(2048, 128, comm.rank),
                quantizer=QSGDQuantizer(bits=8, bucket_size=256, seed=7),
            )

        out = run_ranks(prog, 4, backend=backend)
        ref = reference_sum(2048, 128, 4)
        err = np.linalg.norm(out[0].to_dense() - ref) / np.linalg.norm(ref)
        assert err < 0.05
        # quantized codes travel identically: all ranks agree exactly
        for r in range(1, 4):
            assert np.array_equal(out[r].to_dense(), out[0].to_dense())
