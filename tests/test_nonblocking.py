"""Direct coverage for :mod:`repro.runtime.nonblocking` (paper §7).

Previously only exercised indirectly through async SGD; these tests pin
down request completion ordering, the deferred trace-flush contract, and
that the machinery is backend-agnostic.
"""

import threading
import time

import numpy as np
import pytest

from repro.collectives import sparse_allreduce, ssar_recursive_double
from repro.runtime import i_collective, run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

BACKENDS = ["thread", "process"]


class TestRequestCompletionOrdering:
    def test_isend_completes_before_matching_recv(self):
        """Buffered sends are complete at return: test() is True immediately."""
        def prog(comm):
            if comm.rank == 0:
                handles = [comm.isend(i, 1, tag=i) for i in range(5)]
                states = [h.test() for h in handles]
                for h in handles:
                    h.wait()
                return states
            # receive out of order relative to posting order
            return [comm.recv(0, tag=t) for t in (4, 2, 0, 1, 3)]

        out = run_ranks(prog, 2)
        assert out[0] == [True] * 5
        assert out[1] == [4, 2, 0, 1, 3]

    def test_irecv_handles_complete_in_arrival_order(self):
        """Multiple posted irecvs on one channel drain FIFO at wait() time."""
        def prog(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i * 10, 1, tag=6)
                return None
            handles = [comm.irecv(0, tag=6) for _ in range(4)]
            return [h.wait() for h in handles]

        out = run_ranks(prog, 2)
        assert out[1] == [0, 10, 20, 30]

    def test_irecv_test_tracks_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=1)  # wait until peer has posted its irecv
                comm.send("x", 1, tag=2)
                return None
            handle = comm.irecv(0, tag=2)
            assert not handle.test()  # nothing sent yet
            comm.send(0, 0, tag=1)
            deadline = time.monotonic() + 5.0
            while not handle.test():
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("irecv never became ready")
                time.sleep(0.005)
            return handle.wait()

        out = run_ranks(prog, 2)
        assert out[1] == "x"

    def test_icollective_wait_is_idempotent(self):
        def prog(comm):
            stream = make_rank_stream(256, 16, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            first = handle.wait()
            second = handle.wait()
            return first is second

        out = run_ranks(prog, 2)
        assert all(out.results)

    def test_icollective_overlaps_with_blocking_traffic(self):
        """User p2p traffic and the background collective share the wire."""
        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            peer = 1 - comm.rank
            user = comm.sendrecv(comm.rank + 100, peer, tag=3)
            return user, handle.wait().to_dense()

        out = run_ranks(prog, 2)
        assert out[0][0] == 101 and out[1][0] == 100
        ref = reference_sum(512, 32, 2)
        for r in range(2):
            assert np.allclose(out[r][1], ref, atol=1e-4)

    def test_two_icollectives_in_program_order(self):
        """Tag-space shifting keeps back-to-back collectives separate."""
        def prog(comm):
            s1 = make_rank_stream(256, 10, comm.rank, base_seed=100)
            s2 = make_rank_stream(256, 10, comm.rank, base_seed=200)
            h1 = i_collective(comm, ssar_recursive_double, s1)
            h2 = i_collective(comm, ssar_recursive_double, s2)
            return h2.wait().to_dense(), h1.wait().to_dense()

        out = run_ranks(prog, 4)
        ref1 = reference_sum(256, 10, 4, base_seed=100)
        ref2 = reference_sum(256, 10, 4, base_seed=200)
        for r in range(4):
            assert np.allclose(out[r][0], ref2, atol=1e-4)
            assert np.allclose(out[r][1], ref1, atol=1e-4)


class TestDeferredTraceFlush:
    def test_events_absent_until_wait(self):
        """The rank's log gains the collective's events only at the join."""
        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            while not handle.test():
                time.sleep(0.002)
            # collective finished in the background, but its events are
            # still buffered: the rank log only holds what *we* recorded.
            before = len(comm.trace.events(comm.rank))
            comm.compute(64, "local")
            handle.wait()
            after = len(comm.trace.events(comm.rank))
            return before, after

        out = run_ranks(prog, 2)
        for before, after in out.results:
            assert before == 0
            assert after > before + 1  # compute marker + flushed collective

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_counts_match_blocking_ssar(self, backend):
        """One SSAR via i_collective records exactly the events of a
        blocking SSAR call (same messages, same bytes), on both backends."""
        def blocking(comm):
            return ssar_recursive_double(comm, make_rank_stream(1024, 40, comm.rank))

        def nonblocking(comm):
            h = i_collective(comm, ssar_recursive_double, make_rank_stream(1024, 40, comm.rank))
            return h.wait()

        P = 4
        blk = run_ranks(blocking, P, backend=backend)
        nbk = run_ranks(nonblocking, P, backend=backend)
        assert nbk.trace.total_messages == blk.trace.total_messages
        assert nbk.trace.total_bytes_sent == blk.trace.total_bytes_sent
        for r in range(P):
            blk_ops = [e.op for e in blk.trace.events(r)]
            nbk_ops = [e.op for e in nbk.trace.events(r)]
            assert nbk_ops == blk_ops
            assert np.array_equal(nbk[r].to_dense(), blk[r].to_dense())

    def test_error_surfaces_at_wait_not_launch(self):
        def bad_collective(comm):
            raise RuntimeError("collective failed")

        def prog(comm):
            handle = i_collective(comm, bad_collective)
            time.sleep(0.01)  # failure already happened in the background
            with pytest.raises(RuntimeError, match="collective failed"):
                handle.wait()
            return True

        out = run_ranks(prog, 2)
        assert all(out.results)


@pytest.mark.parametrize("backend", BACKENDS)
def test_icollective_correct_on_backend(backend):
    """The §7 non-blocking allreduce works over real process transport too."""
    def prog(comm):
        stream = make_rank_stream(1000, 20, comm.rank)
        handle = i_collective(comm, ssar_recursive_double, stream)
        local = sum(range(1000))  # overlapped local work
        return handle.wait().to_dense(), local

    out = run_ranks(prog, 4, backend=backend)
    ref = reference_sum(1000, 20, 4)
    for r in range(4):
        assert np.allclose(out[r][0], ref, atol=1e-4)
        assert out[r][1] == sum(range(1000))


class TestStreamForm:
    """The redesigned surface: i_collective(comm, stream, ...) accepts the
    knobs of sparse_allreduce directly and resolves them through the same
    path, eagerly at launch."""

    def test_keyword_algorithm_equals_blocking(self):
        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            blocking = sparse_allreduce(comm, stream, algorithm="ssar_rec_dbl")
            handle = i_collective(comm, stream, algorithm="ssar_rec_dbl")
            return blocking.to_dense(), handle.wait().to_dense()

        out = run_ranks(prog, 4)
        for r in range(4):
            assert np.array_equal(out[r][0], out[r][1])

    def test_positional_algorithm(self):
        def prog(comm):
            handle = i_collective(comm, make_rank_stream(512, 32, comm.rank), "ssar_ring")
            return handle.wait().to_dense()

        out = run_ranks(prog, 4)
        ref = reference_sum(512, 32, 4)
        for r in range(4):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_default_is_auto_selection(self):
        """No algorithm at all: the stream form picks like sparse_allreduce
        ("auto"), here ssar_hier on a hierarchical world."""
        def prog(comm):
            out = i_collective(comm, make_rank_stream(2048, 64, comm.rank)).wait()
            marks = [e.label for e in comm.trace.events(comm.rank) if e.op == "mark"]
            return "ssar_hier" in marks, out.to_dense()

        out = run_ranks(prog, 4, topology="2x2")
        picked, dense = out[0]
        assert picked
        assert np.allclose(dense, reference_sum(2048, 64, 4), atol=1e-4)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunked_hier_equals_unchunked_blocking(self, backend):
        """The full knob set in flight: chunked ssar_hier through the
        stream form is bit-identical to the blocking unchunked call."""
        def prog(comm):
            stream = make_rank_stream(2048, 64, comm.rank)
            blocking = sparse_allreduce(comm, stream, algorithm="ssar_hier")
            handle = i_collective(comm, stream, algorithm="ssar_hier", chunks=4)
            return blocking.to_dense(), handle.wait().to_dense()

        out = run_ranks(prog, 4, backend=backend, topology="2x2")
        for r in range(4):
            assert np.array_equal(out[r][0], out[r][1]), f"rank {r} on {backend}"

    def test_quantized_dsar_through_stream_form(self):
        from repro.quant import QSGDQuantizer

        def prog(comm):
            return i_collective(
                comm,
                make_rank_stream(2048, 128, comm.rank),
                algorithm="dsar_split_ag",
                quantizer=QSGDQuantizer(bits=8, bucket_size=256, seed=7),
            ).wait()

        out = run_ranks(prog, 4)
        ref = reference_sum(2048, 128, 4)
        err = np.linalg.norm(out[0].to_dense() - ref) / np.linalg.norm(ref)
        assert err < 0.05
        for r in range(1, 4):
            assert np.array_equal(out[r].to_dense(), out[0].to_dense())

    def test_bad_algorithm_raises_at_launch_not_wait(self):
        def prog(comm):
            with pytest.raises(ValueError, match="unknown algorithm"):
                i_collective(comm, make_rank_stream(256, 16, comm.rank), "nope")
            return True

        assert all(run_ranks(prog, 2).results)

    def test_invalid_chunks_raise_at_launch(self):
        def prog(comm):
            with pytest.raises(ValueError, match="chunks"):
                i_collective(comm, make_rank_stream(256, 16, comm.rank), chunks=0)
            return True

        assert all(run_ranks(prog, 2).results)

    def test_double_algorithm_rejected(self):
        def prog(comm):
            stream = make_rank_stream(256, 16, comm.rank)
            with pytest.raises(TypeError, match="at most one positional"):
                i_collective(comm, stream, "ssar_ring", algorithm="ssar_rec_dbl")
            with pytest.raises(TypeError, match="at most one positional"):
                i_collective(comm, stream, "ssar_ring", "extra")
            return True

        assert all(run_ranks(prog, 1).results)

    def test_stray_kwargs_rejected(self):
        def prog(comm):
            with pytest.raises(TypeError, match="unexpected keyword"):
                i_collective(comm, make_rank_stream(256, 16, comm.rank), bogus=1)
            return True

        assert all(run_ranks(prog, 1).results)

    def test_callable_form_forwards_knobs(self):
        """The pre-redesign call sites keep working: a callable collective
        with knob kwargs receives them verbatim."""
        from repro.collectives import sparse_allreduce as sa

        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            handle = i_collective(comm, sa, stream, algorithm="ssar_rec_dbl")
            return handle.wait().to_dense()

        out = run_ranks(prog, 4)
        ref = reference_sum(512, 32, 4)
        for r in range(4):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_stream_form_trace_matches_blocking(self):
        def blocking(comm):
            return sparse_allreduce(
                comm, make_rank_stream(1024, 40, comm.rank), algorithm="ssar_split_ag"
            )

        def nonblocking(comm):
            return i_collective(
                comm, make_rank_stream(1024, 40, comm.rank), algorithm="ssar_split_ag"
            ).wait()

        blk = run_ranks(blocking, 4)
        nbk = run_ranks(nonblocking, 4)
        assert nbk.trace.total_messages == blk.trace.total_messages
        assert nbk.trace.total_bytes_sent == blk.trace.total_bytes_sent
        for r in range(4):
            assert [e.op for e in nbk.trace.events(r)] == [
                e.op for e in blk.trace.events(r)
            ]


class TestNestedLaunchTagSpaces:
    """Concurrent sibling collectives at two nesting levels (e.g. fused
    buckets each running a chunked hierarchical collective) must occupy
    disjoint tag regions. Regression: with one equal additive stride,
    outer launch i / inner launch k collided with i' / k' whenever
    i + k == i' + k', and leader traffic crossed buckets."""

    def test_concurrent_chunked_hier_launches_bit_identical(self):
        def prog(comm, nonblocking):
            streams = [
                make_rank_stream(96, 24, comm.rank, base_seed=1000 + 111 * j)
                for j in range(3)
            ]
            if not nonblocking:
                return [
                    sparse_allreduce(comm, s, algorithm="ssar_hier").to_dense()
                    for s in streams
                ]
            handles = [
                i_collective(comm, s, algorithm="ssar_hier", chunks=2)
                for s in streams
            ]
            return [h.wait().to_dense() for h in handles]

        blk = run_ranks(prog, 4, False, topology="2x2")
        nbk = run_ranks(prog, 4, True, topology="2x2")
        for r in range(4):
            for j in range(3):
                assert np.array_equal(blk[r][j], nbk[r][j]), (r, j)

    def test_three_deep_nesting_refused(self):
        """A launch inside a launch inside a launch would alias the
        sub-communicator tag windows; it must raise, not corrupt."""
        def prog(comm):
            def level2(c2):
                def level3(c3):
                    return None

                return i_collective(c2, level3).wait()

            def level1(c1):
                return i_collective(c1, level2).wait()

            handle = i_collective(comm, level1)
            with pytest.raises(RuntimeError, match="two levels"):
                handle.wait()
            return True

        assert all(run_ranks(prog, 2).results)
