"""Direct coverage for :mod:`repro.runtime.nonblocking` (paper §7).

Previously only exercised indirectly through async SGD; these tests pin
down request completion ordering, the deferred trace-flush contract, and
that the machinery is backend-agnostic.
"""

import threading
import time

import numpy as np
import pytest

from repro.collectives import ssar_recursive_double
from repro.runtime import i_collective, run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

BACKENDS = ["thread", "process"]


class TestRequestCompletionOrdering:
    def test_isend_completes_before_matching_recv(self):
        """Buffered sends are complete at return: test() is True immediately."""
        def prog(comm):
            if comm.rank == 0:
                handles = [comm.isend(i, 1, tag=i) for i in range(5)]
                states = [h.test() for h in handles]
                for h in handles:
                    h.wait()
                return states
            # receive out of order relative to posting order
            return [comm.recv(0, tag=t) for t in (4, 2, 0, 1, 3)]

        out = run_ranks(prog, 2)
        assert out[0] == [True] * 5
        assert out[1] == [4, 2, 0, 1, 3]

    def test_irecv_handles_complete_in_arrival_order(self):
        """Multiple posted irecvs on one channel drain FIFO at wait() time."""
        def prog(comm):
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i * 10, 1, tag=6)
                return None
            handles = [comm.irecv(0, tag=6) for _ in range(4)]
            return [h.wait() for h in handles]

        out = run_ranks(prog, 2)
        assert out[1] == [0, 10, 20, 30]

    def test_irecv_test_tracks_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=1)  # wait until peer has posted its irecv
                comm.send("x", 1, tag=2)
                return None
            handle = comm.irecv(0, tag=2)
            assert not handle.test()  # nothing sent yet
            comm.send(0, 0, tag=1)
            deadline = time.monotonic() + 5.0
            while not handle.test():
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("irecv never became ready")
                time.sleep(0.005)
            return handle.wait()

        out = run_ranks(prog, 2)
        assert out[1] == "x"

    def test_icollective_wait_is_idempotent(self):
        def prog(comm):
            stream = make_rank_stream(256, 16, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            first = handle.wait()
            second = handle.wait()
            return first is second

        out = run_ranks(prog, 2)
        assert all(out.results)

    def test_icollective_overlaps_with_blocking_traffic(self):
        """User p2p traffic and the background collective share the wire."""
        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            peer = 1 - comm.rank
            user = comm.sendrecv(comm.rank + 100, peer, tag=3)
            return user, handle.wait().to_dense()

        out = run_ranks(prog, 2)
        assert out[0][0] == 101 and out[1][0] == 100
        ref = reference_sum(512, 32, 2)
        for r in range(2):
            assert np.allclose(out[r][1], ref, atol=1e-4)

    def test_two_icollectives_in_program_order(self):
        """Tag-space shifting keeps back-to-back collectives separate."""
        def prog(comm):
            s1 = make_rank_stream(256, 10, comm.rank, base_seed=100)
            s2 = make_rank_stream(256, 10, comm.rank, base_seed=200)
            h1 = i_collective(comm, ssar_recursive_double, s1)
            h2 = i_collective(comm, ssar_recursive_double, s2)
            return h2.wait().to_dense(), h1.wait().to_dense()

        out = run_ranks(prog, 4)
        ref1 = reference_sum(256, 10, 4, base_seed=100)
        ref2 = reference_sum(256, 10, 4, base_seed=200)
        for r in range(4):
            assert np.allclose(out[r][0], ref2, atol=1e-4)
            assert np.allclose(out[r][1], ref1, atol=1e-4)


class TestDeferredTraceFlush:
    def test_events_absent_until_wait(self):
        """The rank's log gains the collective's events only at the join."""
        def prog(comm):
            stream = make_rank_stream(512, 32, comm.rank)
            handle = i_collective(comm, ssar_recursive_double, stream)
            while not handle.test():
                time.sleep(0.002)
            # collective finished in the background, but its events are
            # still buffered: the rank log only holds what *we* recorded.
            before = len(comm.trace.events(comm.rank))
            comm.compute(64, "local")
            handle.wait()
            after = len(comm.trace.events(comm.rank))
            return before, after

        out = run_ranks(prog, 2)
        for before, after in out.results:
            assert before == 0
            assert after > before + 1  # compute marker + flushed collective

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_counts_match_blocking_ssar(self, backend):
        """One SSAR via i_collective records exactly the events of a
        blocking SSAR call (same messages, same bytes), on both backends."""
        def blocking(comm):
            return ssar_recursive_double(comm, make_rank_stream(1024, 40, comm.rank))

        def nonblocking(comm):
            h = i_collective(comm, ssar_recursive_double, make_rank_stream(1024, 40, comm.rank))
            return h.wait()

        P = 4
        blk = run_ranks(blocking, P, backend=backend)
        nbk = run_ranks(nonblocking, P, backend=backend)
        assert nbk.trace.total_messages == blk.trace.total_messages
        assert nbk.trace.total_bytes_sent == blk.trace.total_bytes_sent
        for r in range(P):
            blk_ops = [e.op for e in blk.trace.events(r)]
            nbk_ops = [e.op for e in nbk.trace.events(r)]
            assert nbk_ops == blk_ops
            assert np.array_equal(nbk[r].to_dense(), blk[r].to_dense())

    def test_error_surfaces_at_wait_not_launch(self):
        def bad_collective(comm):
            raise RuntimeError("collective failed")

        def prog(comm):
            handle = i_collective(comm, bad_collective)
            time.sleep(0.01)  # failure already happened in the background
            with pytest.raises(RuntimeError, match="collective failed"):
                handle.wait()
            return True

        out = run_ranks(prog, 2)
        assert all(out.results)


@pytest.mark.parametrize("backend", BACKENDS)
def test_icollective_correct_on_backend(backend):
    """The §7 non-blocking allreduce works over real process transport too."""
    def prog(comm):
        stream = make_rank_stream(1000, 20, comm.rank)
        handle = i_collective(comm, ssar_recursive_double, stream)
        local = sum(range(1000))  # overlapped local work
        return handle.wait().to_dense(), local

    out = run_ranks(prog, 4, backend=backend)
    ref = reference_sum(1000, 20, 4)
    for r in range(4):
        assert np.allclose(out[r][0], ref, atol=1e-4)
        assert out[r][1] == sum(range(1000))
