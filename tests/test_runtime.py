"""Tests for the message-passing runtime: p2p semantics, traces, failures."""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    RankError,
    Trace,
    WorldAbortedError,
    copy_payload,
    i_collective,
    payload_nbytes,
    run_ranks,
)
from repro.runtime.thread_backend import ThreadWorld
from repro.streams import SparseStream


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8

    def test_numpy_array(self):
        arr = np.zeros(100, dtype=np.float32)
        assert payload_nbytes(arr) == 8 + 400

    def test_stream_uses_protocol(self):
        s = SparseStream(1000, indices=[1], values=[2.0])
        assert payload_nbytes(s) == s.nbytes_payload

    def test_containers_recursive(self):
        arr = np.zeros(10, dtype=np.float64)
        assert payload_nbytes([arr, arr]) == 8 + 2 * (8 + 80)
        assert payload_nbytes({0: arr}) == 8 + 8 + (8 + 80)

    def test_strings_and_bytes(self):
        assert payload_nbytes("abc") == 11
        assert payload_nbytes(b"abcd") == 12

    def test_unmeasurable_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestCopyPayload:
    def test_array_copy_independent(self):
        arr = np.zeros(3)
        c = copy_payload(arr)
        c[0] = 1.0
        assert arr[0] == 0.0

    def test_scalars_passthrough(self):
        assert copy_payload(7) == 7
        assert copy_payload("x") == "x"

    def test_nested_containers(self):
        arr = np.zeros(2)
        copied = copy_payload({0: [arr]})
        copied[0][0][0] = 5.0
        assert arr[0] == 0.0

    def test_stream_copy(self):
        s = SparseStream(10, indices=[1], values=[1.0])
        c = copy_payload(s)
        c.values[0] = 9.0
        assert s.values[0] == 1.0


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), 1, tag=7)
                return None
            return comm.recv(0, tag=7)

        out = run_ranks(prog, 2)
        assert np.array_equal(out[1], np.arange(5))

    def test_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(20)]

        out = run_ranks(prog, 2)
        assert out[1] == list(range(20))

    def test_tags_do_not_cross(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        out = run_ranks(prog, 2)
        assert out[1] == ("a", "b")

    def test_sendrecv_exchange(self):
        def prog(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(comm.rank * 10, peer, tag=5)

        out = run_ranks(prog, 2)
        assert out[0] == 10 and out[1] == 0

    def test_payload_isolation(self):
        """Receiver mutations must not reach the sender's buffer."""
        def prog(comm):
            arr = np.zeros(4)
            if comm.rank == 0:
                comm.send(arr, 1)
                comm.recv(1, tag=9)  # sync
                return float(arr[0])
            got = comm.recv(0)
            got[0] = 99.0
            comm.send(0, 0, tag=9)
            return None

        out = run_ranks(prog, 2)
        assert out[0] == 0.0

    def test_self_send_rejected(self):
        def prog(comm):
            comm.send(1, comm.rank)

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_out_of_range_dest_rejected(self):
        def prog(comm):
            comm.send(1, 5)

        with pytest.raises(RankError):
            run_ranks(prog, 2)


class TestCollectiveHelpers:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 7, 8])
    def test_barrier_completes(self, nranks):
        def prog(comm):
            comm.barrier()
            return comm.rank

        out = run_ranks(prog, nranks)
        assert out.results == list(range(nranks))

    @pytest.mark.parametrize("nranks,root", [(2, 0), (4, 0), (5, 2), (8, 7)])
    def test_bcast(self, nranks, root):
        def prog(comm):
            value = f"payload-{comm.rank}" if comm.rank == root else None
            return comm.bcast(value, root=root)

        out = run_ranks(prog, nranks)
        assert all(v == f"payload-{root}" for v in out.results)

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_gather_to_root(self, nranks):
        def prog(comm):
            return comm.gather_to_root(comm.rank * 2, root=0)

        out = run_ranks(prog, nranks)
        assert out[0] == [2 * r for r in range(nranks)]
        assert all(out[r] is None for r in range(1, nranks))


class TestFailureHandling:
    def test_rank_error_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1)  # would deadlock without abort

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 2)
        assert exc_info.value.rank == 1
        assert isinstance(exc_info.value.original, ValueError)

    def test_blocked_ranks_abort_not_deadlock(self):
        start = time.monotonic()
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("fail fast")
            comm.recv(0)

        with pytest.raises(RankError):
            run_ranks(prog, 4)
        assert time.monotonic() - start < 10.0

    def test_timeout_detects_deadlock(self):
        def prog(comm):
            comm.recv(1 - comm.rank)  # mutual recv: classic deadlock

        with pytest.raises(TimeoutError):
            run_ranks(prog, 2, timeout=0.5)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_ranks(lambda c: None, 0)


class TestTraceRecording:
    def test_send_recv_events_match(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float32), 1)
            else:
                comm.recv(0)

        out = run_ranks(prog, 2)
        sends = [e for e in out.trace.events(0) if e.op == "send"]
        recvs = [e for e in out.trace.events(1) if e.op == "recv"]
        assert len(sends) == len(recvs) == 1
        assert sends[0].nbytes == recvs[0].nbytes == 48
        assert sends[0].seq == recvs[0].seq

    def test_compute_events(self):
        def prog(comm):
            comm.compute(1000, "work")

        out = run_ranks(prog, 2)
        events = out.trace.events(0)
        assert events[0].op == "compute" and events[0].nbytes == 1000

    def test_total_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float64), 1)
            else:
                comm.recv(0)

        out = run_ranks(prog, 2)
        assert out.trace.total_bytes_sent == 88
        assert out.trace.total_messages == 1
        assert out.trace.bytes_received_by(1) == 88

    def test_summary_keys(self):
        out = run_ranks(lambda c: None, 2)
        assert set(out.trace.summary()) == {"ranks", "messages", "bytes_sent", "max_rank_recv_bytes"}

    def test_trace_clear(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, 100)
        trace.clear()
        assert trace.total_messages == 0

    def test_negative_compute_rejected(self):
        def prog(comm):
            comm.compute(-1)

        with pytest.raises(RankError):
            run_ranks(prog, 2)


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                handle = comm.isend(42, 1)
                assert handle.test()
                handle.wait()
                return None
            return comm.recv(0)

        out = run_ranks(prog, 2)
        assert out[1] == 42

    def test_irecv_deferred(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("hello", 1)
                return None
            handle = comm.irecv(0)
            return handle.wait()

        out = run_ranks(prog, 2)
        assert out[1] == "hello"

    def test_icollective_allreduce(self):
        from repro.collectives import ssar_recursive_double

        def prog(comm):
            gen = np.random.default_rng(comm.rank)
            stream = SparseStream.random_uniform(1000, nnz=20, rng=gen)
            handle = i_collective(comm, ssar_recursive_double, stream)
            local = sum(range(1000))  # overlapped local work
            result = handle.wait()
            return result.to_dense(), local

        out = run_ranks(prog, 4)
        expected = np.sum(
            [
                SparseStream.random_uniform(1000, nnz=20, rng=np.random.default_rng(r)).to_dense()
                for r in range(4)
            ],
            axis=0,
        )
        for r in range(4):
            assert np.allclose(out[r][0], expected, atol=1e-4)

    def test_icollective_error_surfaces_at_wait(self):
        def bad_collective(comm):
            raise RuntimeError("collective failed")

        def prog(comm):
            handle = i_collective(comm, bad_collective)
            with pytest.raises(RuntimeError, match="collective failed"):
                handle.wait()
            return True

        out = run_ranks(prog, 2)
        assert all(out.results)

    def test_icollective_trace_flushed_at_wait(self):
        from repro.collectives import ssar_recursive_double

        def prog(comm):
            gen = np.random.default_rng(comm.rank)
            stream = SparseStream.random_uniform(100, nnz=5, rng=gen)
            handle = i_collective(comm, ssar_recursive_double, stream)
            handle.wait()
            return None

        out = run_ranks(prog, 2)
        assert out.trace.total_messages > 0


class TestWorld:
    def test_comm_rank_bounds(self):
        world = ThreadWorld(2)
        with pytest.raises(ValueError):
            world.comm(2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadWorld(0)

    def test_abort_wakes_receivers(self):
        world = ThreadWorld(2)
        comm = world.comm(0)
        caught = []

        def blocked():
            try:
                comm.recv(1)
            except WorldAbortedError:
                caught.append(True)

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        time.sleep(0.1)
        world.abort()
        t.join(timeout=5)
        assert caught == [True]
