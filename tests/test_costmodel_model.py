"""Tests for the unified CostModel layer (`repro/costmodel/model.py`):
Instance/PredictedCost/SelectionReport round-trips, predict sanity,
parity with `choose_algorithm`, and the `chunks="auto"` depth search."""

import json

import pytest

from repro.collectives import choose_algorithm, dense_stage_two_tier_times
from repro.costmodel import (
    MAX_AUTO_CHUNKS,
    RING_MIN_RANKS,
    SMALL_MESSAGE_BYTES,
    SPARSE_ALGORITHMS,
    CostModel,
    Instance,
    PredictedCost,
    SelectionReport,
)
from repro.netsim import GIGE, PRESETS, TIERED_GIGE, TIERED_IB_FDR
from repro.runtime import Topology


class TestInstance:
    def test_properties(self):
        inst = Instance(1 << 20, 8, 1000)
        assert inst.pair_bytes == 8
        assert inst.dense_bytes == (1 << 20) * 4
        assert 0 < inst.delta < 1 << 20
        assert inst.fill_in() > inst.nnz_per_rank  # union grows with P
        assert inst.fill_in(1) == pytest.approx(1000)
        assert inst.resolved_k() == inst.fill_in()

    def test_expected_k_override(self):
        inst = Instance(1 << 20, 8, 1000, expected_k=5000.0)
        assert inst.resolved_k() == 5000.0

    def test_validation(self):
        with pytest.raises(ValueError, match="nranks"):
            Instance(100, 0, 10)
        with pytest.raises(ValueError, match="nnz_per_rank"):
            Instance(100, 2, 101)
        with pytest.raises(ValueError, match="nnz_per_rank"):
            Instance(100, 2, -1)

    def test_round_trip(self):
        inst = Instance(4096, 4, 300, value_itemsize=8, expected_k=1200.0)
        assert Instance.from_dict(json.loads(json.dumps(inst.to_dict()))) == inst


class TestPredict:
    MODEL = CostModel(TIERED_IB_FDR)
    TOPO = Topology.uniform(8, 4)  # 2 hosts x 4 ranks
    INST = Instance(1 << 20, 8, 1000)

    @pytest.mark.parametrize("algo", SPARSE_ALGORITHMS)
    def test_decomposition(self, algo):
        cost = self.MODEL.predict(self.INST, algo, self.TOPO)
        assert cost.algorithm == algo
        assert cost.time_s > 0
        assert cost.time_s == pytest.approx(
            cost.latency_s + cost.bandwidth_s + cost.compute_s
        )
        assert cost.time_s == pytest.approx(cost.intra_s + cost.inter_s)
        assert cost.expected_k == pytest.approx(self.INST.resolved_k())

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            self.MODEL.predict(self.INST, "nope")

    def test_hier_needs_hierarchy(self):
        flat = self.MODEL.predict(self.INST, "ssar_hier", topology=None)
        assert not flat.eligible and "hierarchical" in flat.note
        hier = self.MODEL.predict(self.INST, "ssar_hier", self.TOPO)
        assert hier.eligible

    def test_flat_algorithms_ignore_chunks(self):
        for algo in ("ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag"):
            cost = self.MODEL.predict(self.INST, algo, self.TOPO, chunks=4)
            assert cost.chunks == 1
            assert cost.time_s == pytest.approx(
                self.MODEL.predict(self.INST, algo, self.TOPO, chunks=1).time_s
            )

    def test_chunked_hier_is_pipelined(self):
        one = self.MODEL.predict(self.INST, "ssar_hier", self.TOPO, chunks=1)
        four = self.MODEL.predict(self.INST, "ssar_hier", self.TOPO, chunks=4)
        assert four.chunks == 4
        # legs are unchanged; only the makespan composition differs
        assert four.intra_s == pytest.approx(one.intra_s)
        assert four.inter_s == pytest.approx(one.inter_s)
        # pipelining can only help when one leg hides behind the other,
        # up to the replicated per-chunk alpha
        assert four.time_s <= one.time_s + 4 * (
            self.MODEL.intra.alpha + self.MODEL.inter.alpha
        )

    def test_gamma_charged(self):
        free = CostModel(GIGE.replace(gamma=0.0) if hasattr(GIGE, "replace") else GIGE)
        priced = CostModel(GIGE)
        cost = priced.predict(self.INST, "ssar_rec_dbl")
        assert cost.compute_s > 0
        assert cost.compute_s == pytest.approx(
            cost.time_s - cost.latency_s - cost.bandwidth_s
        )
        del free

    def test_topology_size_checked(self):
        with pytest.raises(ValueError):
            self.MODEL.predict(self.INST, "ssar_hier", Topology.uniform(4, 2))

    def test_round_trip(self):
        cost = self.MODEL.predict(self.INST, "dsar_hier", self.TOPO, chunks=2)
        assert PredictedCost.from_dict(json.loads(json.dumps(cost.to_dict()))) == cost


class TestRank:
    MODEL = CostModel(TIERED_IB_FDR)

    def test_report_fields(self):
        topo = Topology.uniform(8, 4)
        report = self.MODEL.rank(Instance(1 << 20, 8, 1000), topo)
        assert report.choice == "ssar_hier"
        assert report.network == self.MODEL.name
        assert report.topology == topo.describe()
        assert len(report.candidates) == len(SPARSE_ALGORITHMS)
        assert report.predicted("ssar_hier").eligible
        with pytest.raises(KeyError):
            report.predicted("nope")
        assert "ssar_hier" in report.describe()

    def test_candidates_sorted_eligible_first(self):
        report = self.MODEL.rank(Instance(1 << 20, 8, 1000))  # flat world
        eligibility = [c.eligible for c in report.candidates]
        assert eligibility == sorted(eligibility, reverse=True)
        eligible_times = [c.time_s for c in report.candidates if c.eligible]
        assert eligible_times == sorted(eligible_times)

    def test_round_trip(self):
        report = self.MODEL.rank(Instance(1 << 20, 8, 50000), Topology.uniform(8, 4))
        blob = json.dumps(report.to_dict())
        assert SelectionReport.from_dict(json.loads(blob)) == report

    @pytest.mark.parametrize(
        "dimension,nranks,nnz,ranks_per_node",
        [
            (1 << 20, 8, 1000, None),      # latency-bound -> rec_dbl
            (1 << 20, 8, 50000, None),     # dynamic -> dsar
            (1 << 20, 16, 20000, None),    # bandwidth-bound at scale
            (1 << 20, 8, 1000, 4),         # hierarchical -> ssar_hier
            (1 << 20, 8, 50000, 4),        # dynamic + hierarchical
            (1 << 16, 4, 650, 2),
            (1 << 16, 4, 30000, None),
            (512, 2, 100, None),
        ],
    )
    def test_parity_with_choose_algorithm(self, dimension, nranks, nnz, ranks_per_node):
        """`choose_algorithm` is a thin wrapper: same answer, every shape."""
        topo = (
            Topology.uniform(nranks, ranks_per_node)
            if ranks_per_node is not None
            else None
        )
        for network in ("tiered_ib_fdr", "gige", "tiered_gige"):
            report = CostModel.resolve(network).rank(
                Instance(dimension, nranks, nnz), topo
            )
            assert report.choice == choose_algorithm(
                dimension, nranks, nnz, topology=topo, network=network
            ), report.describe()

    def test_dense_stage_wrapper_matches_predict(self):
        topo = Topology.uniform(8, 4)
        flat_t, hier_t = dense_stage_two_tier_times(
            1 << 20, 8, 50000, 4, topo, network=TIERED_GIGE
        )
        model = CostModel(TIERED_GIGE)
        inst = Instance(1 << 20, 8, 50000)
        assert flat_t == pytest.approx(model.predict(inst, "dsar_split_ag", topo).time_s)
        assert hier_t == pytest.approx(model.predict(inst, "dsar_hier", topo).time_s)


class TestResolve:
    def test_passthrough(self):
        model = CostModel(TIERED_GIGE)
        assert CostModel.resolve(model) is model

    def test_from_spec(self):
        assert CostModel.resolve("gige").network is PRESETS["gige"]
        assert CostModel.resolve(GIGE).network is GIGE
        assert CostModel.default().name == "tiered_ib_fdr"

    def test_tier_accessors(self):
        tiered = CostModel(TIERED_GIGE)
        assert tiered.tiered and tiered.shared_uplink
        assert tiered.intra is TIERED_GIGE.intra
        assert tiered.inter is TIERED_GIGE.inter
        flat = CostModel(GIGE)
        assert not flat.tiered
        assert flat.intra is GIGE and flat.inter is GIGE
        assert flat.gamma == GIGE.gamma


class TestAutoChunks:
    MODEL = CostModel(TIERED_GIGE)
    TOPO = Topology.uniform(8, 4)
    INST = Instance(1 << 20, 8, 10000)

    def test_flat_algorithms_get_one(self):
        for algo in ("ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag"):
            assert self.MODEL.auto_chunks(self.INST, algo, self.TOPO) == 1

    @pytest.mark.parametrize("algo", ["ssar_hier", "dsar_hier"])
    def test_argmin_of_the_curve(self, algo):
        k = self.MODEL.auto_chunks(self.INST, algo, self.TOPO)
        assert 1 <= k <= MAX_AUTO_CHUNKS
        best = self.MODEL.predict(self.INST, algo, self.TOPO, chunks=k).time_s
        for other in range(1, MAX_AUTO_CHUNKS + 1):
            assert best <= self.MODEL.predict(
                self.INST, algo, self.TOPO, chunks=other
            ).time_s + 1e-18

    def test_constants_re_exported(self):
        # the one source of truth for the switch points
        from repro.collectives.selector import (
            RING_MIN_RANKS as sel_ring,
            SMALL_MESSAGE_BYTES as sel_small,
        )

        assert sel_ring == RING_MIN_RANKS
        assert sel_small == SMALL_MESSAGE_BYTES
