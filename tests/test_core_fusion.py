"""Tests for tensor fusion (gradient bucket coalescing, §9) and its
async mode (one non-blocking collective per bucket, joined in order)."""

import numpy as np
import pytest

from repro.core import ErrorFeedback, FusedPendingUpdate, GradientFuser
from repro.nn import make_lstm, make_mlp
from repro.runtime import run_ranks
from repro.streams import SparseStream


class TestBucketLayout:
    def test_one_bucket_per_tensor_at_zero_threshold(self):
        fuser = GradientFuser([("a", 10), ("b", 20), ("c", 5)], min_bucket_bytes=0)
        assert fuser.n_buckets == 3
        assert [b.size for b in fuser.buckets] == [10, 20, 5]

    def test_all_fused_at_huge_threshold(self):
        fuser = GradientFuser([("a", 10), ("b", 20)], min_bucket_bytes=1 << 30)
        assert fuser.n_buckets == 1
        assert fuser.buckets[0].size == 30
        assert fuser.buckets[0].tensor_names == ("a", "b")

    def test_threshold_respected(self):
        # 4-byte elements; 100-byte threshold = 25 elements per bucket
        fuser = GradientFuser([(f"t{i}", 10) for i in range(10)], min_bucket_bytes=100)
        for b in fuser.buckets[:-1]:
            assert b.size * 4 >= 100
        assert sum(b.size for b in fuser.buckets) == 100

    def test_slices_cover_exactly(self):
        fuser = GradientFuser([("a", 7), ("b", 13), ("c", 29)], min_bucket_bytes=50)
        covered = []
        for s in fuser.slices():
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(49))

    def test_from_network_mlp(self):
        net = make_mlp(64, 10, hidden=(32,), seed=0)
        fuser = GradientFuser.from_network(net, min_bucket_bytes=1 << 10)
        assert fuser.total_size == net.n_params

    def test_from_network_lstm(self):
        net = make_lstm(32, 4, embed_dim=8, hidden_dim=12, seed=0)
        fuser = GradientFuser.from_network(net, min_bucket_bytes=1 << 10)
        assert fuser.total_size == net.n_params

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GradientFuser([])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GradientFuser([("a", -1)])

    def test_make_error_feedback_matches_layout(self):
        fuser = GradientFuser([("a", 100), ("b", 200)], min_bucket_bytes=0)
        efs = fuser.make_error_feedback(k=4, bucket_size=64)
        assert len(efs) == 2
        assert efs[0].residual.shape == (100,)
        assert efs[1].residual.shape == (200,)


class TestFusedAllreduce:
    def test_fused_equals_monolithic_sum(self):
        """Per-bucket TopK allreduce with full k (= everything selected)
        must equal the dense sum of the gradients."""
        dim = 256
        fuser = GradientFuser([("a", 96), ("b", 160)], min_bucket_bytes=0)
        P = 4

        def grads(rank):
            return np.random.default_rng(400 + rank).standard_normal(dim).astype(np.float32)

        def prog(comm):
            # k >= bucket size: selection keeps every coordinate
            efs = fuser.make_error_feedback(k=1 << 20, bucket_size=None)
            return fuser.fused_topk_allreduce(
                comm, grads(comm.rank), efs, algorithm="ssar_rec_dbl"
            )

        out = run_ranks(prog, P)
        ref = np.sum([grads(r) for r in range(P)], axis=0)
        for r in range(P):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_fused_topk_respects_per_bucket_error_feedback(self):
        dim = 128
        fuser = GradientFuser([("a", 64), ("b", 64)], min_bucket_bytes=0)
        P = 2

        def prog(comm):
            efs = fuser.make_error_feedback(k=4, bucket_size=32)
            grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
            out1 = fuser.fused_topk_allreduce(comm, grad, efs, algorithm="ssar_rec_dbl")
            # residuals now hold the unsent mass of each bucket
            residual_norms = [ef.residual_norm for ef in efs]
            return out1, residual_norms

        out = run_ranks(prog, P)
        _, norms = out[0]
        assert all(n > 0 for n in norms)

    def test_shape_mismatch_rejected(self):
        fuser = GradientFuser([("a", 10)], min_bucket_bytes=0)

        def prog(comm):
            efs = fuser.make_error_feedback(k=2)
            return fuser.fused_topk_allreduce(comm, np.zeros(11, np.float32), efs)

        from repro.runtime import RankError

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_ef_count_mismatch_rejected(self):
        fuser = GradientFuser([("a", 10), ("b", 10)], min_bucket_bytes=0)

        def prog(comm):
            return fuser.fused_topk_allreduce(
                comm, np.zeros(20, np.float32), [ErrorFeedback(10, 2)]
            )

        from repro.runtime import RankError

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_fusion_reduces_message_count(self):
        """Fewer buckets -> fewer collective invocations -> fewer messages."""
        dim = 1024
        sizes = [(f"t{i}", 64) for i in range(16)]
        P = 4

        def run_with(threshold):
            fuser = GradientFuser(sizes, min_bucket_bytes=threshold)

            def prog(comm):
                efs = fuser.make_error_feedback(k=4, bucket_size=64)
                grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
                return fuser.fused_topk_allreduce(comm, grad, efs, algorithm="ssar_rec_dbl")

            return run_ranks(prog, P)

        layerwise = run_with(0)  # 16 buckets
        fused = run_with(1 << 30)  # 1 bucket
        assert fused.trace.total_messages < layerwise.trace.total_messages

    def test_fused_quantized_payloads_smaller(self):
        from repro.quant import QSGDQuantizer

        dim = 4096
        fuser = GradientFuser([("a", dim)], min_bucket_bytes=0)
        P = 2

        def run_with(quantizer):
            def prog(comm):
                efs = fuser.make_error_feedback(k=64, bucket_size=None)
                grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
                return fuser.fused_topk_allreduce(
                    comm, grad, efs, algorithm="ssar_rec_dbl", quantizer=quantizer
                )

            return run_ranks(prog, P)

        fp = run_with(None)
        q4 = run_with(QSGDQuantizer(bits=4, bucket_size=512, seed=0))
        assert q4.trace.total_bytes_sent < fp.trace.total_bytes_sent


def _grads(rank, dim, seed=400):
    return np.random.default_rng(seed + rank).standard_normal(dim).astype(np.float32)


class TestAsyncFusedAllreduce:
    """i_fused_allreduce: selection eager (program order), communication in
    the background, join in bucket order — bit-identical to blocking mode."""

    DIM = 256
    SIZES = [("a", 96), ("b", 96), ("c", 64)]

    def _run(self, nranks, mode, topology=None, chunks=1, algorithm="ssar_rec_dbl"):
        fuser = GradientFuser(self.SIZES, min_bucket_bytes=0)

        def prog(comm):
            efs = fuser.make_error_feedback(k=8, bucket_size=32)
            grad = _grads(comm.rank, self.DIM)
            if mode == "blocking":
                out = fuser.fused_topk_allreduce(
                    comm, grad, efs, algorithm=algorithm, chunks=chunks
                )
            elif mode == "flag":
                out = fuser.fused_topk_allreduce(
                    comm, grad, efs, algorithm=algorithm, chunks=chunks,
                    nonblocking=True,
                )
            else:
                handle = fuser.i_fused_allreduce(
                    comm, grad, efs, algorithm=algorithm, chunks=chunks
                )
                overlapped = sum(range(500))  # caller compute during comm
                out = handle.wait()
                assert overlapped == sum(range(500))
            return out, [ef.residual_norm for ef in efs]

        return run_ranks(prog, nranks, topology=topology)

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_async_bit_identical_to_blocking(self, nranks):
        blk = self._run(nranks, "blocking")
        asy = self._run(nranks, "async")
        for r in range(nranks):
            assert np.array_equal(blk[r][0], asy[r][0]), f"rank {r}"
            # error-feedback state advanced identically (selection is the
            # program-order part; it must not depend on join timing)
            assert blk[r][1] == asy[r][1]

    def test_nonblocking_flag_routes_through_async(self):
        blk = self._run(4, "blocking")
        flag = self._run(4, "flag")
        for r in range(4):
            assert np.array_equal(blk[r][0], flag[r][0])

    def test_async_chunked_hier_bit_identical(self):
        """The PR's full stack in one call: auto-selected hierarchical
        collective, chunked, one background launch per bucket."""
        blk = self._run(4, "blocking", topology="2x2", algorithm="auto")
        asy = self._run(4, "async", topology="2x2", algorithm="auto", chunks=2)
        for r in range(4):
            assert np.array_equal(blk[r][0], asy[r][0]), f"rank {r}"

    def test_async_trace_matches_blocking(self):
        """Same collectives, same bytes — the async mode changes *when*
        traffic completes, never how much travels."""
        blk = self._run(4, "blocking")
        asy = self._run(4, "async")
        assert asy.trace.total_messages == blk.trace.total_messages
        assert asy.trace.total_bytes_sent == blk.trace.total_bytes_sent

    def test_selection_runs_eagerly_at_launch(self):
        """Error-feedback residuals mutate at i_fused_allreduce() time,
        before wait(): the program-order half is not deferred."""
        fuser = GradientFuser([("a", 64), ("b", 64)], min_bucket_bytes=0)

        def prog(comm):
            efs = fuser.make_error_feedback(k=4, bucket_size=32)
            handle = fuser.i_fused_allreduce(comm, _grads(comm.rank, 128), efs)
            norms_at_launch = [ef.residual_norm for ef in efs]
            handle.wait()
            norms_at_join = [ef.residual_norm for ef in efs]
            return norms_at_launch, norms_at_join

        out = run_ranks(prog, 2)
        at_launch, at_join = out[0]
        assert all(n > 0 for n in at_launch)
        assert at_launch == at_join  # wait() does not touch the residuals

    def test_wait_is_idempotent(self):
        fuser = GradientFuser([("a", 64)], min_bucket_bytes=0)

        def prog(comm):
            efs = fuser.make_error_feedback(k=4, bucket_size=32)
            handle = fuser.i_fused_allreduce(comm, _grads(comm.rank, 64), efs)
            first = handle.wait()
            second = handle.wait()
            return first is second

        assert all(run_ranks(prog, 2).results)

    def test_back_to_back_steps_in_program_order(self):
        """Two async steps joined in order behave like two blocking steps
        (the non-blocking-collective program-order contract)."""
        fuser = GradientFuser(self.SIZES, min_bucket_bytes=0)

        def prog(comm, nonblocking):
            efs = fuser.make_error_feedback(k=8, bucket_size=32)
            outs = []
            for step in range(2):
                grad = _grads(comm.rank, self.DIM, seed=700 + 31 * step)
                if nonblocking:
                    outs.append(fuser.i_fused_allreduce(comm, grad, efs).wait().copy())
                else:
                    outs.append(fuser.fused_topk_allreduce(comm, grad, efs).copy())
            return outs

        blk = run_ranks(prog, 4, False)
        asy = run_ranks(prog, 4, True)
        for r in range(4):
            for step in range(2):
                assert np.array_equal(blk[r][step], asy[r][step]), (r, step)


class _StubHandle:
    """Scripted handle for the FusedPendingUpdate unit tests."""

    def __init__(self, result=None, error=None, log=None, name=""):
        self._result = result
        self._error = error
        self._log = log if log is not None else []
        self._name = name

    def wait(self):
        self._log.append(self._name)
        if self._error is not None:
            raise self._error
        return self._result

    def test(self):
        return True


class TestFusedPendingUpdate:
    def _fuser(self):
        return GradientFuser([("a", 4), ("b", 4)], min_bucket_bytes=0)

    def test_scatters_in_bucket_order(self):
        fuser = self._fuser()
        log = []
        handles = [
            _StubHandle(
                SparseStream(4, indices=np.arange(4, dtype=np.uint32),
                             values=np.full(4, float(i + 1), np.float32)),
                log=log, name=f"bucket{i}",
            )
            for i in range(2)
        ]
        out = np.empty(8, np.float32)
        update = FusedPendingUpdate(fuser.buckets, handles, out)
        assert update.test()
        result = update.wait()
        assert log == ["bucket0", "bucket1"]  # joined in layout order
        assert result is out
        assert np.array_equal(out, [1, 1, 1, 1, 2, 2, 2, 2])

    def test_failure_reaps_every_handle_and_raises_first(self):
        """A failed bucket must not leave later handles un-joined (their
        background threads would outlive the step) and the *first* error
        wins."""
        fuser = self._fuser()
        log = []
        handles = [
            _StubHandle(error=RuntimeError("bucket0 failed"), log=log, name="bucket0"),
            _StubHandle(error=RuntimeError("bucket1 failed"), log=log, name="bucket1"),
        ]
        update = FusedPendingUpdate(fuser.buckets, handles, np.zeros(8, np.float32))
        with pytest.raises(RuntimeError, match="bucket0 failed"):
            update.wait()
        assert log == ["bucket0", "bucket1"]  # both reaped
