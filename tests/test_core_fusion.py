"""Tests for tensor fusion (gradient bucket coalescing, §9)."""

import numpy as np
import pytest

from repro.core import ErrorFeedback, GradientFuser
from repro.nn import make_lstm, make_mlp
from repro.runtime import run_ranks


class TestBucketLayout:
    def test_one_bucket_per_tensor_at_zero_threshold(self):
        fuser = GradientFuser([("a", 10), ("b", 20), ("c", 5)], min_bucket_bytes=0)
        assert fuser.n_buckets == 3
        assert [b.size for b in fuser.buckets] == [10, 20, 5]

    def test_all_fused_at_huge_threshold(self):
        fuser = GradientFuser([("a", 10), ("b", 20)], min_bucket_bytes=1 << 30)
        assert fuser.n_buckets == 1
        assert fuser.buckets[0].size == 30
        assert fuser.buckets[0].tensor_names == ("a", "b")

    def test_threshold_respected(self):
        # 4-byte elements; 100-byte threshold = 25 elements per bucket
        fuser = GradientFuser([(f"t{i}", 10) for i in range(10)], min_bucket_bytes=100)
        for b in fuser.buckets[:-1]:
            assert b.size * 4 >= 100
        assert sum(b.size for b in fuser.buckets) == 100

    def test_slices_cover_exactly(self):
        fuser = GradientFuser([("a", 7), ("b", 13), ("c", 29)], min_bucket_bytes=50)
        covered = []
        for s in fuser.slices():
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(49))

    def test_from_network_mlp(self):
        net = make_mlp(64, 10, hidden=(32,), seed=0)
        fuser = GradientFuser.from_network(net, min_bucket_bytes=1 << 10)
        assert fuser.total_size == net.n_params

    def test_from_network_lstm(self):
        net = make_lstm(32, 4, embed_dim=8, hidden_dim=12, seed=0)
        fuser = GradientFuser.from_network(net, min_bucket_bytes=1 << 10)
        assert fuser.total_size == net.n_params

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GradientFuser([])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GradientFuser([("a", -1)])

    def test_make_error_feedback_matches_layout(self):
        fuser = GradientFuser([("a", 100), ("b", 200)], min_bucket_bytes=0)
        efs = fuser.make_error_feedback(k=4, bucket_size=64)
        assert len(efs) == 2
        assert efs[0].residual.shape == (100,)
        assert efs[1].residual.shape == (200,)


class TestFusedAllreduce:
    def test_fused_equals_monolithic_sum(self):
        """Per-bucket TopK allreduce with full k (= everything selected)
        must equal the dense sum of the gradients."""
        dim = 256
        fuser = GradientFuser([("a", 96), ("b", 160)], min_bucket_bytes=0)
        P = 4

        def grads(rank):
            return np.random.default_rng(400 + rank).standard_normal(dim).astype(np.float32)

        def prog(comm):
            # k >= bucket size: selection keeps every coordinate
            efs = fuser.make_error_feedback(k=1 << 20, bucket_size=None)
            return fuser.fused_topk_allreduce(
                comm, grads(comm.rank), efs, algorithm="ssar_rec_dbl"
            )

        out = run_ranks(prog, P)
        ref = np.sum([grads(r) for r in range(P)], axis=0)
        for r in range(P):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_fused_topk_respects_per_bucket_error_feedback(self):
        dim = 128
        fuser = GradientFuser([("a", 64), ("b", 64)], min_bucket_bytes=0)
        P = 2

        def prog(comm):
            efs = fuser.make_error_feedback(k=4, bucket_size=32)
            grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
            out1 = fuser.fused_topk_allreduce(comm, grad, efs, algorithm="ssar_rec_dbl")
            # residuals now hold the unsent mass of each bucket
            residual_norms = [ef.residual_norm for ef in efs]
            return out1, residual_norms

        out = run_ranks(prog, P)
        _, norms = out[0]
        assert all(n > 0 for n in norms)

    def test_shape_mismatch_rejected(self):
        fuser = GradientFuser([("a", 10)], min_bucket_bytes=0)

        def prog(comm):
            efs = fuser.make_error_feedback(k=2)
            return fuser.fused_topk_allreduce(comm, np.zeros(11, np.float32), efs)

        from repro.runtime import RankError

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_ef_count_mismatch_rejected(self):
        fuser = GradientFuser([("a", 10), ("b", 10)], min_bucket_bytes=0)

        def prog(comm):
            return fuser.fused_topk_allreduce(
                comm, np.zeros(20, np.float32), [ErrorFeedback(10, 2)]
            )

        from repro.runtime import RankError

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_fusion_reduces_message_count(self):
        """Fewer buckets -> fewer collective invocations -> fewer messages."""
        dim = 1024
        sizes = [(f"t{i}", 64) for i in range(16)]
        P = 4

        def run_with(threshold):
            fuser = GradientFuser(sizes, min_bucket_bytes=threshold)

            def prog(comm):
                efs = fuser.make_error_feedback(k=4, bucket_size=64)
                grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
                return fuser.fused_topk_allreduce(comm, grad, efs, algorithm="ssar_rec_dbl")

            return run_ranks(prog, P)

        layerwise = run_with(0)  # 16 buckets
        fused = run_with(1 << 30)  # 1 bucket
        assert fused.trace.total_messages < layerwise.trace.total_messages

    def test_fused_quantized_payloads_smaller(self):
        from repro.quant import QSGDQuantizer

        dim = 4096
        fuser = GradientFuser([("a", dim)], min_bucket_bytes=0)
        P = 2

        def run_with(quantizer):
            def prog(comm):
                efs = fuser.make_error_feedback(k=64, bucket_size=None)
                grad = np.random.default_rng(comm.rank).standard_normal(dim).astype(np.float32)
                return fuser.fused_topk_allreduce(
                    comm, grad, efs, algorithm="ssar_rec_dbl", quantizer=quantizer
                )

            return run_ranks(prog, P)

        fp = run_with(None)
        q4 = run_with(QSGDQuantizer(bits=4, bucket_size=512, seed=0))
        assert q4.trace.total_bytes_sent < fp.trace.total_bytes_sent
