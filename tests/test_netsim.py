"""Tests for the alpha-beta timing model and trace replay.

Replay semantics are verified on hand-built traces with exactly computable
clock values, then cross-checked against the paper's closed-form costs on
real collective schedules.
"""

import math

import numpy as np
import pytest

from repro.netsim import (
    ARIES,
    GIGE,
    IB_FDR,
    PRESETS,
    SHM,
    TIERED_ARIES,
    TIERED_GIGE,
    TIERED_IB_FDR,
    NetworkModel,
    ReplayDeadlockError,
    TieredNetworkModel,
    overlap_step_time,
    replay,
    resolve_network,
)
from repro.runtime import Topology, Trace, run_ranks


def model(alpha=1.0, beta=0.1, gamma=0.0):
    return NetworkModel(name="test", alpha=alpha, beta=beta, gamma=gamma)


class TestNetworkModel:
    def test_message_time(self):
        m = model(alpha=2.0, beta=0.5)
        assert m.message_time(10) == pytest.approx(2.0 + 5.0)

    def test_compute_time(self):
        assert model(gamma=0.25).compute_time(8) == pytest.approx(2.0)

    def test_bandwidth(self):
        assert NetworkModel("x", 0.0, 1e-9).bandwidth_gbps == pytest.approx(1.0)
        assert NetworkModel("x", 0.0, 0.0).bandwidth_gbps == float("inf")

    def test_with_replaces(self):
        m = ARIES.with_(gamma=0.0)
        assert m.gamma == 0.0
        assert m.alpha == ARIES.alpha

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel("bad", alpha=-1.0, beta=0.0)

    def test_preset_ordering(self):
        # supercomputer < IB < GigE in both latency and per-byte cost
        assert ARIES.alpha < IB_FDR.alpha < GIGE.alpha
        assert ARIES.beta < IB_FDR.beta < GIGE.beta

    def test_describe_mentions_name(self):
        assert "aries" in ARIES.describe()


def tiered(intra=None, inter=None, shared_uplink=True):
    return TieredNetworkModel(
        name="test_tiered",
        intra=intra if intra is not None else model(alpha=0.1, beta=0.01),
        inter=inter if inter is not None else model(alpha=1.0, beta=0.1),
        shared_uplink=shared_uplink,
    )


class TestTieredNetworkModel:
    def test_tier_classification(self):
        m = tiered()
        assert m.tier(True) is m.intra
        assert m.tier(False) is m.inter
        assert m.message_time(100, same_host=True) == pytest.approx(0.1 + 1.0)
        assert m.message_time(100, same_host=False) == pytest.approx(1.0 + 10.0)

    def test_gamma_is_local(self):
        m = tiered(intra=model(gamma=0.5), inter=model(gamma=0.25))
        assert m.gamma == 0.5
        assert m.compute_time(4) == pytest.approx(2.0)

    def test_with_replaces(self):
        m = tiered().with_(shared_uplink=False)
        assert m.shared_uplink is False

    def test_rejects_non_models(self):
        with pytest.raises(TypeError):
            TieredNetworkModel(name="bad", intra=ARIES, inter=1.0)

    def test_presets_expose_tiered_entries(self):
        for preset in (TIERED_ARIES, TIERED_IB_FDR, TIERED_GIGE):
            assert PRESETS[preset.name] is preset
            assert preset.intra is SHM
            # the inter tier really is the slow one
            assert preset.inter.alpha > preset.intra.alpha
            assert preset.inter.beta > preset.intra.beta
            assert preset.name in preset.describe()
        assert TIERED_IB_FDR.inter is IB_FDR

    def test_resolve_network(self):
        assert resolve_network(ARIES) is ARIES
        assert resolve_network("tiered_gige") is TIERED_GIGE
        composed = resolve_network("tiered:shm/gige")
        assert composed.intra is SHM and composed.inter is GIGE
        defaulted = resolve_network("tiered:gige")
        assert defaulted.intra is SHM and defaulted.inter is GIGE
        with pytest.raises(ValueError, match="preset"):
            resolve_network("token-ring")
        with pytest.raises(ValueError, match="tiered spec"):
            resolve_network("tiered:nope")
        with pytest.raises(ValueError, match="tiered spec"):
            # tiered components must themselves be flat
            resolve_network("tiered:shm/tiered_gige")


class TestTieredReplay:
    def test_intra_vs_inter_costs(self):
        """One message, charged at the tier its (src, dst) hosts select."""
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=100)
        trace.record_recv(1, 0, 0, 0, nbytes=100)
        m = tiered()
        same = replay(trace, m, topology=("a", "a"))
        cross = replay(trace, m, topology=("a", "b"))
        # intra: alpha 0.1, beta 0.01 -> arrival 0.1 + 1.0
        assert same.finish_times == pytest.approx([0.1, 1.1])
        # inter: alpha 1.0, beta 0.1 -> arrival 1.0 + 10.0
        assert cross.finish_times == pytest.approx([1.0, 11.0])

    def test_default_topology_is_flat(self):
        """No topology -> single host -> everything at intra rates."""
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=100)
        trace.record_recv(1, 0, 0, 0, nbytes=100)
        m = tiered()
        assert replay(trace, m).finish_times == replay(
            trace, m, topology=("h", "h")
        ).finish_times

    def test_shared_uplink_serializes_concurrent_sends(self):
        """Two ranks of one host sending inter-node concurrently serialize
        on the host's egress link; without sharing they overlap."""
        trace = Trace(4)  # hosts: a=[0,1] b=[2,3]
        for src, dst in ((0, 2), (1, 3)):
            trace.record_send(src, dst, 0, 0, nbytes=100)
        for dst, src in ((2, 0), (3, 1)):
            trace.record_recv(dst, src, 0, 0, nbytes=100)
        topo = "2x2"
        m = tiered(intra=model(alpha=0.0, beta=0.0), inter=model(alpha=1.0, beta=0.1))
        unshared = replay(trace, m.with_(shared_uplink=False), topology=topo)
        shared = replay(trace, m, topology=topo)
        # unshared: both messages overlap fully -> both receivers at 11.0
        assert unshared.finish_times[2:] == pytest.approx([11.0, 11.0])
        # shared: rank 0's transmit occupies a's egress (and b's ingress)
        # for 10s; rank 1's starts only at t=10 -> second arrival at 20+1
        assert shared.finish_times[2] == pytest.approx(11.0)
        assert shared.finish_times[3] == pytest.approx(21.0)
        # senders only ever pay injection alpha, never the queueing delay
        assert shared.finish_times[:2] == unshared.finish_times[:2]

    def test_uplink_reservation_is_replay_order_independent(self):
        """A transmission slots into the uplink's earliest idle window at
        its own ready time: a same-host sender that becomes ready *later*
        (but is processed first, having the lower rank) must not push an
        earlier-ready transmission behind its own."""
        trace = Trace(4)  # hosts: a=[0,1] b=[2,3]
        # rank 0: busy for 1.0s, then sends inter (transmit 0.5s) — the
        # replayer processes it first
        trace.record_compute(0, 1000)
        trace.record_send(0, 2, 0, 0, nbytes=50)
        # rank 1: ready immediately, same egress/ingress pair
        trace.record_send(1, 3, 0, 0, nbytes=50)
        trace.record_recv(2, 0, 0, 0, nbytes=50)
        trace.record_recv(3, 1, 0, 0, nbytes=50)
        m = tiered(
            intra=model(alpha=0.0, beta=0.0, gamma=0.001),
            inter=model(alpha=0.0, beta=0.01, gamma=0.001),
        )
        result = replay(trace, m, topology="2x2")
        # rank 1's transmit uses the idle window [0, 0.5] that precedes
        # rank 0's reservation [1.0, 1.5] — not the queue behind it
        assert result.finish_times[3] == pytest.approx(0.5)
        assert result.finish_times[2] == pytest.approx(1.5)

    def test_uncontended_shared_equals_unshared(self):
        """A lone inter-node message costs exactly alpha + beta*L either way."""
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=64)
        trace.record_recv(1, 0, 0, 0, nbytes=64)
        m = tiered()
        a = replay(trace, m, topology=("a", "b"))
        b = replay(trace, m.with_(shared_uplink=False), topology=("a", "b"))
        assert a.finish_times == b.finish_times

    def test_equal_tiers_bit_identical_to_plain(self):
        """Equal tiers without uplink sharing reproduce the single-model
        replay bit for bit, whatever the topology says."""
        def prog(comm):
            base = comm.next_collective_tag()
            comm.sendrecv(np.arange(50, dtype=np.float32), comm.rank ^ 1, base)
            comm.compute(123, "work")

        out = run_ranks(prog, 4)
        flat_model = model(alpha=1.3e-6, beta=2.7e-9, gamma=3.1e-10)
        eq = TieredNetworkModel(
            name="eq", intra=flat_model, inter=flat_model, shared_uplink=False
        )
        base = replay(out.trace, flat_model)
        for topo in (None, "2x2", "4x1", ("a", "b", "a", "b")):
            got = replay(out.trace, eq, topology=topo)
            assert got.finish_times == base.finish_times  # exact, not approx
            assert got.phase_times == base.phase_times

    def test_equal_tiers_shared_identical_on_flat_topology(self):
        """With every rank on one host there is no inter traffic, so even
        the shared-uplink model cannot diverge from the plain replay."""
        def prog(comm):
            base = comm.next_collective_tag()
            comm.sendrecv(1.0, comm.rank ^ 1, base)

        out = run_ranks(prog, 2)
        flat_model = model(alpha=1.0, beta=0.5)
        eq = TieredNetworkModel(name="eq", intra=flat_model, inter=flat_model)
        assert (
            replay(out.trace, eq).finish_times
            == replay(out.trace, flat_model).finish_times
        )

    def test_plain_model_ignores_tiers_but_validates_topology(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, 10)
        trace.record_recv(1, 0, 0, 0, 10)
        m = model(alpha=1.0, beta=0.1)
        assert replay(trace, m, topology="2x1").finish_times == replay(
            trace, m
        ).finish_times
        with pytest.raises(ValueError, match="describes 4 ranks"):
            replay(trace, m, topology="2x2")

    def test_tiered_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="describes 4 ranks"):
            replay(Trace(2), tiered(), topology="2x2")

    def test_hier_trace_rewarded_on_two_tier_network(self):
        """The tentpole shape: on 2x4 under every tiered preset's *network*
        terms (gamma zeroed to isolate wire time from the CPU-bound merge
        work, which is what the tiers model) the hierarchical schedule
        replays faster than every flat one."""
        from repro.collectives import sparse_allreduce
        from repro.streams import SparseStream

        topo = Topology.from_spec("2x4")
        traces = {}
        for algo in ("ssar_hier", "ssar_rec_dbl", "ssar_split_ag", "ssar_ring"):
            def prog(comm, algo=algo):
                gen = np.random.default_rng(40 + comm.rank)
                s = SparseStream.random_uniform(1 << 14, nnz=300, rng=gen)
                return sparse_allreduce(comm, s, algorithm=algo)

            traces[algo] = run_ranks(prog, 8, topology=topo).trace
        for preset in (TIERED_ARIES, TIERED_IB_FDR, TIERED_GIGE):
            wire_only = preset.with_(
                intra=preset.intra.with_(gamma=0.0),
                inter=preset.inter.with_(gamma=0.0),
            )
            times = {
                algo: replay(t, wire_only, topology=topo).makespan
                for algo, t in traces.items()
            }
            assert times["ssar_hier"] == min(times.values()), (preset.name, times)


def reference_replay(trace, net):
    """The pre-readiness-scheduling replayer (quadratic rank rescans),
    kept verbatim as the bit-compatibility oracle for plain models."""
    nranks = trace.nranks
    events = [trace.events(r) for r in range(nranks)]
    pointers = [0] * nranks
    clocks = [0.0] * nranks
    arrivals = {}
    remaining = sum(len(e) for e in events)
    while remaining:
        progressed = False
        for rank in range(nranks):
            ptr = pointers[rank]
            lst = events[rank]
            while ptr < len(lst):
                ev = lst[ptr]
                if ev.op == "send":
                    clocks[rank] += net.alpha
                    arrivals[(rank, ev.peer, ev.tag, ev.seq)] = (
                        clocks[rank] + net.beta * ev.nbytes
                    )
                elif ev.op == "recv":
                    key = (ev.peer, rank, ev.tag, ev.seq)
                    if key not in arrivals:
                        break
                    arrival = arrivals.pop(key)
                    if arrival > clocks[rank]:
                        clocks[rank] = arrival
                elif ev.op == "compute":
                    clocks[rank] += net.gamma * ev.nbytes
                ptr += 1
                remaining -= 1
                progressed = True
            pointers[rank] = ptr
        if not progressed:
            raise RuntimeError("stalled")
    return clocks


class TestReadinessScheduling:
    """The replay-loop refactor: readiness tracking must change the work
    bound, never the numbers."""

    def _ring_trace(self, nranks):
        from repro.collectives import sparse_allreduce
        from repro.streams import SparseStream

        def prog(comm):
            gen = np.random.default_rng(comm.rank)
            s = SparseStream.random_uniform(1 << 12, nnz=40, rng=gen)
            return sparse_allreduce(comm, s, algorithm="ssar_ring")

        return run_ranks(prog, nranks).trace

    def test_ring_replay_bit_identical_to_reference(self):
        """P=32 ring: the long sequential dependency chain that made the
        rescan loop quadratic; times must not move at all."""
        trace = self._ring_trace(32)
        m = model(alpha=1e-6, beta=1e-9, gamma=2e-10)
        assert replay(trace, m).finish_times == reference_replay(trace, m)

    def test_ring_replay_is_pass_bounded(self):
        """Each rank is activated once at start plus once per recv stall:
        total activations are bounded by messages + ranks, not by
        passes * ranks (the quadratic regime)."""
        trace = self._ring_trace(32)
        result = replay(trace, model())
        assert result.rank_activations <= trace.total_messages + trace.nranks
        # sanity: the ring really has the long chains that used to hurt
        assert trace.total_messages >= 32 * 2 * 31

    @pytest.mark.parametrize("nranks", [2, 3, 5, 8])
    def test_collective_replays_match_reference(self, nranks):
        from repro.collectives import sparse_allreduce
        from repro.streams import SparseStream

        for algo in ("ssar_rec_dbl", "ssar_split_ag", "dsar_split_ag"):
            def prog(comm, algo=algo):
                gen = np.random.default_rng(3 * comm.rank + 1)
                s = SparseStream.random_uniform(2048, nnz=100, rng=gen)
                return sparse_allreduce(comm, s, algorithm=algo)

            trace = run_ranks(prog, nranks).trace
            m = model(alpha=1e-6, beta=1e-9, gamma=2e-10)
            assert replay(trace, m).finish_times == reference_replay(trace, m)


class TestReplayHandBuilt:
    def test_single_message(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=100)
        trace.record_recv(1, 0, 0, 0, nbytes=100)
        result = replay(trace, model(alpha=1.0, beta=0.1))
        # sender: injection alpha -> 1.0; receiver: arrival 1.0 + 10.0
        assert result.finish_times[0] == pytest.approx(1.0)
        assert result.finish_times[1] == pytest.approx(11.0)
        assert result.makespan == pytest.approx(11.0)

    def test_pairwise_exchange_costs_one_round(self):
        trace = Trace(2)
        for r in (0, 1):
            trace.record_send(r, 1 - r, 0, 0, nbytes=50)
        for r in (0, 1):
            trace.record_recv(r, 1 - r, 0, 0, nbytes=50)
        result = replay(trace, model(alpha=1.0, beta=0.1))
        # both: alpha + beta*L = 1 + 5 = 6 (full overlap of directions)
        assert result.finish_times == pytest.approx([6.0, 6.0])

    def test_compute_charges_gamma(self):
        trace = Trace(1)
        trace.record_compute(0, 1000)
        result = replay(trace, model(gamma=0.001))
        assert result.makespan == pytest.approx(1.0)

    def test_fifo_sequencing(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=10)
        trace.record_send(0, 1, 0, 1, nbytes=10)
        trace.record_recv(1, 0, 0, 0, nbytes=10)
        trace.record_recv(1, 0, 0, 1, nbytes=10)
        result = replay(trace, model(alpha=1.0, beta=0.0))
        # sender clock: 1 then 2; arrivals at 1, 2; receiver max(0,1)=1 then 2
        assert result.finish_times[0] == pytest.approx(2.0)
        assert result.finish_times[1] == pytest.approx(2.0)

    def test_receiver_waits_for_late_sender(self):
        trace = Trace(2)
        trace.record_compute(0, 1000)  # sender busy first
        trace.record_send(0, 1, 0, 0, nbytes=0)
        trace.record_recv(1, 0, 0, 0, nbytes=0)
        result = replay(trace, model(alpha=1.0, gamma=0.01))
        assert result.finish_times[1] == pytest.approx(10.0 + 1.0)

    def test_unmatched_recv_is_deadlock(self):
        trace = Trace(2)
        trace.record_recv(1, 0, 0, 0, nbytes=10)
        with pytest.raises(ReplayDeadlockError):
            replay(trace, model())

    def test_phase_accounting(self):
        trace = Trace(1)
        trace.record_mark(0, "phase_a")
        trace.record_compute(0, 100)
        trace.record_mark(0, "phase_b")
        trace.record_compute(0, 300)
        result = replay(trace, model(gamma=1.0))
        assert result.phase("phase_a") == pytest.approx(100.0)
        assert result.phase("phase_b") == pytest.approx(300.0)
        assert result.phase("missing") == 0.0

    def test_empty_trace(self):
        result = replay(Trace(3), model())
        assert result.makespan == 0.0
        assert result.mean_finish == 0.0

    def test_determinism(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, 10)
        trace.record_recv(1, 0, 0, 0, 10)
        r1 = replay(trace, ARIES)
        r2 = replay(trace, ARIES)
        assert r1.finish_times == r2.finish_times


class TestReplayOnRealSchedules:
    def test_recursive_doubling_latency_is_log_p(self):
        """A zero-byte recursive-doubling exchange costs exactly log2(P) rounds."""
        def prog(comm):
            base = comm.next_collective_tag()
            distance, rnd = 1, 0
            while distance < comm.size:
                partner = comm.rank ^ distance
                comm.sendrecv(0, partner, base + rnd)
                distance *= 2
                rnd += 1

        for P in (2, 4, 8):
            out = run_ranks(prog, P)
            t = replay(out.trace, model(alpha=1.0, beta=0.0))
            # sendrecv: payload 8 bytes but beta=0 -> alpha per round
            assert t.makespan == pytest.approx(math.log2(P), abs=1e-9)

    def test_dense_rec_dbl_matches_closed_form(self):
        from repro.collectives import allreduce_recursive_doubling
        from repro.costmodel import dense_rec_dbl_time

        N, P = 4096, 8
        vecs = [np.random.default_rng(r).standard_normal(N).astype(np.float32) for r in range(P)]

        out = run_ranks(lambda c: allreduce_recursive_doubling(c, vecs[c.rank]), P)
        m = model(alpha=1e-6, beta=1e-9, gamma=0.0)
        measured = replay(out.trace, m).makespan
        predicted = dense_rec_dbl_time(P, N, m)
        # header bytes add a little; must agree within 5%
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_dense_ring_matches_closed_form(self):
        from repro.collectives import allreduce_ring
        from repro.costmodel import dense_ring_time

        N, P = 4096, 8
        vecs = [np.random.default_rng(r).standard_normal(N).astype(np.float32) for r in range(P)]
        out = run_ranks(lambda c: allreduce_ring(c, vecs[c.rank]), P)
        m = model(alpha=1e-6, beta=1e-9, gamma=0.0)
        measured = replay(out.trace, m).makespan
        predicted = dense_ring_time(P, N, m)
        assert measured == pytest.approx(predicted, rel=0.10)


class TestOverlap:
    def test_blocking_is_sum(self):
        assert overlap_step_time(2.0, 3.0, nonblocking=False) == 5.0

    def test_nonblocking_is_max(self):
        assert overlap_step_time(2.0, 3.0, nonblocking=True) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            overlap_step_time(-1.0, 1.0, True)
