"""Tests for the alpha-beta timing model and trace replay.

Replay semantics are verified on hand-built traces with exactly computable
clock values, then cross-checked against the paper's closed-form costs on
real collective schedules.
"""

import math

import numpy as np
import pytest

from repro.netsim import (
    ARIES,
    GIGE,
    IB_FDR,
    NetworkModel,
    ReplayDeadlockError,
    overlap_step_time,
    replay,
)
from repro.runtime import Trace, run_ranks


def model(alpha=1.0, beta=0.1, gamma=0.0):
    return NetworkModel(name="test", alpha=alpha, beta=beta, gamma=gamma)


class TestNetworkModel:
    def test_message_time(self):
        m = model(alpha=2.0, beta=0.5)
        assert m.message_time(10) == pytest.approx(2.0 + 5.0)

    def test_compute_time(self):
        assert model(gamma=0.25).compute_time(8) == pytest.approx(2.0)

    def test_bandwidth(self):
        assert NetworkModel("x", 0.0, 1e-9).bandwidth_gbps == pytest.approx(1.0)
        assert NetworkModel("x", 0.0, 0.0).bandwidth_gbps == float("inf")

    def test_with_replaces(self):
        m = ARIES.with_(gamma=0.0)
        assert m.gamma == 0.0
        assert m.alpha == ARIES.alpha

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel("bad", alpha=-1.0, beta=0.0)

    def test_preset_ordering(self):
        # supercomputer < IB < GigE in both latency and per-byte cost
        assert ARIES.alpha < IB_FDR.alpha < GIGE.alpha
        assert ARIES.beta < IB_FDR.beta < GIGE.beta

    def test_describe_mentions_name(self):
        assert "aries" in ARIES.describe()


class TestReplayHandBuilt:
    def test_single_message(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=100)
        trace.record_recv(1, 0, 0, 0, nbytes=100)
        result = replay(trace, model(alpha=1.0, beta=0.1))
        # sender: injection alpha -> 1.0; receiver: arrival 1.0 + 10.0
        assert result.finish_times[0] == pytest.approx(1.0)
        assert result.finish_times[1] == pytest.approx(11.0)
        assert result.makespan == pytest.approx(11.0)

    def test_pairwise_exchange_costs_one_round(self):
        trace = Trace(2)
        for r in (0, 1):
            trace.record_send(r, 1 - r, 0, 0, nbytes=50)
        for r in (0, 1):
            trace.record_recv(r, 1 - r, 0, 0, nbytes=50)
        result = replay(trace, model(alpha=1.0, beta=0.1))
        # both: alpha + beta*L = 1 + 5 = 6 (full overlap of directions)
        assert result.finish_times == pytest.approx([6.0, 6.0])

    def test_compute_charges_gamma(self):
        trace = Trace(1)
        trace.record_compute(0, 1000)
        result = replay(trace, model(gamma=0.001))
        assert result.makespan == pytest.approx(1.0)

    def test_fifo_sequencing(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, nbytes=10)
        trace.record_send(0, 1, 0, 1, nbytes=10)
        trace.record_recv(1, 0, 0, 0, nbytes=10)
        trace.record_recv(1, 0, 0, 1, nbytes=10)
        result = replay(trace, model(alpha=1.0, beta=0.0))
        # sender clock: 1 then 2; arrivals at 1, 2; receiver max(0,1)=1 then 2
        assert result.finish_times[0] == pytest.approx(2.0)
        assert result.finish_times[1] == pytest.approx(2.0)

    def test_receiver_waits_for_late_sender(self):
        trace = Trace(2)
        trace.record_compute(0, 1000)  # sender busy first
        trace.record_send(0, 1, 0, 0, nbytes=0)
        trace.record_recv(1, 0, 0, 0, nbytes=0)
        result = replay(trace, model(alpha=1.0, gamma=0.01))
        assert result.finish_times[1] == pytest.approx(10.0 + 1.0)

    def test_unmatched_recv_is_deadlock(self):
        trace = Trace(2)
        trace.record_recv(1, 0, 0, 0, nbytes=10)
        with pytest.raises(ReplayDeadlockError):
            replay(trace, model())

    def test_phase_accounting(self):
        trace = Trace(1)
        trace.record_mark(0, "phase_a")
        trace.record_compute(0, 100)
        trace.record_mark(0, "phase_b")
        trace.record_compute(0, 300)
        result = replay(trace, model(gamma=1.0))
        assert result.phase("phase_a") == pytest.approx(100.0)
        assert result.phase("phase_b") == pytest.approx(300.0)
        assert result.phase("missing") == 0.0

    def test_empty_trace(self):
        result = replay(Trace(3), model())
        assert result.makespan == 0.0
        assert result.mean_finish == 0.0

    def test_determinism(self):
        trace = Trace(2)
        trace.record_send(0, 1, 0, 0, 10)
        trace.record_recv(1, 0, 0, 0, 10)
        r1 = replay(trace, ARIES)
        r2 = replay(trace, ARIES)
        assert r1.finish_times == r2.finish_times


class TestReplayOnRealSchedules:
    def test_recursive_doubling_latency_is_log_p(self):
        """A zero-byte recursive-doubling exchange costs exactly log2(P) rounds."""
        def prog(comm):
            base = comm.next_collective_tag()
            distance, rnd = 1, 0
            while distance < comm.size:
                partner = comm.rank ^ distance
                comm.sendrecv(0, partner, base + rnd)
                distance *= 2
                rnd += 1

        for P in (2, 4, 8):
            out = run_ranks(prog, P)
            t = replay(out.trace, model(alpha=1.0, beta=0.0))
            # sendrecv: payload 8 bytes but beta=0 -> alpha per round
            assert t.makespan == pytest.approx(math.log2(P), abs=1e-9)

    def test_dense_rec_dbl_matches_closed_form(self):
        from repro.collectives import allreduce_recursive_doubling
        from repro.costmodel import dense_rec_dbl_time

        N, P = 4096, 8
        vecs = [np.random.default_rng(r).standard_normal(N).astype(np.float32) for r in range(P)]

        out = run_ranks(lambda c: allreduce_recursive_doubling(c, vecs[c.rank]), P)
        m = model(alpha=1e-6, beta=1e-9, gamma=0.0)
        measured = replay(out.trace, m).makespan
        predicted = dense_rec_dbl_time(P, N, m)
        # header bytes add a little; must agree within 5%
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_dense_ring_matches_closed_form(self):
        from repro.collectives import allreduce_ring
        from repro.costmodel import dense_ring_time

        N, P = 4096, 8
        vecs = [np.random.default_rng(r).standard_normal(N).astype(np.float32) for r in range(P)]
        out = run_ranks(lambda c: allreduce_ring(c, vecs[c.rank]), P)
        m = model(alpha=1e-6, beta=1e-9, gamma=0.0)
        measured = replay(out.trace, m).makespan
        predicted = dense_ring_time(P, N, m)
        assert measured == pytest.approx(predicted, rel=0.10)


class TestOverlap:
    def test_blocking_is_sum(self):
        assert overlap_step_time(2.0, 3.0, nonblocking=False) == 5.0

    def test_nonblocking_is_max(self):
        assert overlap_step_time(2.0, 3.0, nonblocking=True) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            overlap_step_time(-1.0, 1.0, True)
