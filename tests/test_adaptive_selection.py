"""Tests for adaptive runtime selection (`repro/costmodel/adaptive.py`)
and the rank-consistent `algorithm="auto"` / `chunks="auto"` resolution:
the drifting-density switch must be bit-identical on all four backends,
and skewed per-rank densities must not deadlock the blocking auto path."""

import numpy as np
import pytest

from repro.collectives import choose_algorithm, run_sparse_allreduce, sparse_allreduce
from repro.core import GradientFuser
from repro.costmodel import AdaptiveSelector, CostModel, consistent_mean
from repro.mlopt import (
    LogisticRegression,
    SGDConfig,
    distributed_sgd_async,
    make_sparse_classification,
)
from repro.runtime import run_ranks

from conftest import make_rank_stream, reference_sum

BACKENDS = ["thread", "process", "shmem", "socket"]

DIMENSION = 4096
NRANKS = 4

#: per-iteration nnz ramp: starts latency-bound (ssar_rec_dbl), ends past
#: the delta threshold (dsar) — the selector must switch mid-run.
DRIFT_SCHEDULE = [20, 24, 30, 400, 1200, 1800, 1800, 1800]


class FakeComm:
    """World-of-one stand-in for the unit tests (no transport)."""

    def __init__(self, size=1, topology=None):
        self.size = size
        self.topology = topology

    def gather_to_root(self, obj, root=0):
        return [obj] * self.size

    def bcast(self, obj, root=0):
        return obj


class TestAdaptiveSelectorUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="dimension"):
            AdaptiveSelector(dimension=0)
        with pytest.raises(ValueError, match="ewma"):
            AdaptiveSelector(dimension=10, ewma=0.0)
        with pytest.raises(ValueError, match="drift_threshold"):
            AdaptiveSelector(dimension=10, drift_threshold=0.0)
        with pytest.raises(ValueError, match="sync_every"):
            AdaptiveSelector(dimension=10, sync_every=0)

    def test_model_spec_resolved(self):
        sel = AdaptiveSelector(model="tiered_gige", dimension=100)
        assert isinstance(sel.model, CostModel)
        assert sel.model.name == "tiered_gige"

    def test_ewma(self):
        sel = AdaptiveSelector(dimension=1000, ewma=0.5)
        assert sel.observe(100) == 100.0
        assert sel.observe(200) == 150.0
        assert sel.observe(150) == 150.0

    def test_initial_selection_then_stable(self):
        sel = AdaptiveSelector(dimension=DIMENSION)
        comm = FakeComm()
        first = sel.step(comm, 50)
        assert first == sel.algorithm and sel.report is not None
        for _ in range(5):
            assert sel.step(comm, 50) == first
        assert len(sel.switches) == 1 and sel.switch_count == 0
        assert sel.switches[0].previous is None
        assert sel.switches[0].reason == "initial selection"

    def test_drift_triggers_reselection(self):
        sel = AdaptiveSelector(dimension=DIMENSION, ewma=1.0, drift_threshold=0.25)
        comm = FakeComm(size=NRANKS)
        assert sel.step(comm, 50) == "ssar_rec_dbl"
        algo = sel.step(comm, 3000)
        assert algo == "dsar_split_ag"
        assert sel.switch_count == 1
        assert "drift" in sel.switches[-1].reason

    def test_sync_every_skips_agreement(self):
        sel = AdaptiveSelector(dimension=DIMENSION, ewma=1.0, sync_every=4)
        comm = FakeComm(size=NRANKS)
        sel.step(comm, 50)
        # drifts immediately, but the next sync is 3 iterations away
        assert sel.step(comm, 3000) == "ssar_rec_dbl"
        assert sel.step(comm, 3000) == "ssar_rec_dbl"
        assert sel.step(comm, 3000) == "ssar_rec_dbl"
        assert sel.step(comm, 3000) == "dsar_split_ag"

    def test_world_resize_forces_reselection(self):
        sel = AdaptiveSelector(dimension=DIMENSION, sync_every=100)
        sel.step(FakeComm(size=4), 50)
        sel.step(FakeComm(size=3), 50)  # off-sync, but the world changed
        assert len(sel.switches) == 2
        assert sel.switches[-1].reason == "world size changed"

    def test_estimate_clamped_to_dimension(self):
        sel = AdaptiveSelector(dimension=100, ewma=1.0)
        sel.step(FakeComm(), 100)
        assert sel.switches[-1].estimate <= 100.0

    def test_switch_to_dict(self):
        sel = AdaptiveSelector(dimension=DIMENSION)
        sel.step(FakeComm(), 50)
        d = sel.switches[0].to_dict()
        assert d["iteration"] == 1 and d["previous"] is None
        assert d["algorithm"] == sel.algorithm


def _consistent_mean_prog(comm):
    return consistent_mean(comm, float(10 * (comm.rank + 1)))


def _drift_prog(comm):
    """Training-loop shape: adapt the algorithm while density ramps."""
    selector = AdaptiveSelector(dimension=DIMENSION, ewma=1.0)
    algorithms, sums = [], []
    for it, nnz in enumerate(DRIFT_SCHEDULE):
        local_nnz = nnz + 3 * comm.rank  # ranks disagree locally
        algorithm = selector.step(comm, local_nnz)
        algorithms.append(algorithm)
        stream = make_rank_stream(DIMENSION, local_nnz, comm.rank, 5000 + it)
        total = sparse_allreduce(comm, stream, algorithm=algorithm)
        sums.append(total.to_dense())
    return algorithms, sums, [s.to_dict() for s in selector.switches]


class TestConsistentMean:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_on_every_rank(self, backend):
        out = run_ranks(_consistent_mean_prog, 4, backend=backend)
        assert all(v == out[0] for v in out.results)
        assert out[0] == pytest.approx(25.0)

    def test_world_of_one_is_free(self):
        out = run_ranks(_consistent_mean_prog, 1)
        assert out[0] == 10.0 and out.trace.total_bytes_sent == 0


class TestAdaptiveDrift:
    def test_switches_mid_run_bit_identical_across_backends(self):
        """The acceptance pin: a drifting-density run provably switches
        algorithm mid-run, identically on all four backends."""
        by_backend = {b: run_ranks(_drift_prog, NRANKS, backend=b) for b in BACKENDS}
        ref_algos, ref_sums, ref_switches = by_backend["thread"][0]
        # the drift provably switched the algorithm mid-run
        assert ref_algos[0] == "ssar_rec_dbl"
        assert ref_algos[-1] == "dsar_split_ag"
        assert len(set(ref_algos)) >= 2
        for backend, out in by_backend.items():
            for rank in range(NRANKS):
                algos, sums, switches = out[rank]
                assert algos == ref_algos, (backend, rank)
                assert switches == ref_switches, (backend, rank)
                for it, dense in enumerate(sums):
                    assert np.array_equal(dense, ref_sums[it]), (backend, rank, it)

    def test_switch_record_names_the_transition(self):
        out = run_ranks(_drift_prog, NRANKS, backend="thread")
        switches = out[0][2]
        changes = [s for s in switches if s["previous"] and s["previous"] != s["algorithm"]]
        assert changes and changes[0]["previous"] == "ssar_rec_dbl"
        assert changes[0]["algorithm"] == "dsar_split_ag"
        assert "drift" in changes[0]["reason"]


SKEW_NNZ = {0: 100}  # rank 0 is sparse; everyone else is dense
SKEW_DEFAULT = 3000


def _skewed_auto_prog(comm):
    nnz = SKEW_NNZ.get(comm.rank, SKEW_DEFAULT)
    stream = make_rank_stream(DIMENSION, nnz, comm.rank)
    return sparse_allreduce(comm, stream, algorithm="auto").to_dense()


class TestSkewedAutoRegression:
    def test_local_choices_disagree(self):
        """The trap this regression guards: per-rank *local* resolution
        picks different algorithms for these densities."""
        sparse_choice = choose_algorithm(DIMENSION, NRANKS, SKEW_NNZ[0])
        dense_choice = choose_algorithm(DIMENSION, NRANKS, SKEW_DEFAULT)
        assert sparse_choice != dense_choice

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocking_auto_does_not_deadlock(self, backend):
        """Before the rank-consistent estimate, this run deadlocked: each
        rank resolved "auto" from its own nnz and ran different
        collectives. Now all ranks agree first."""
        expected = np.zeros(DIMENSION, dtype=np.float64)
        for r in range(NRANKS):
            expected += make_rank_stream(
                DIMENSION, SKEW_NNZ.get(r, SKEW_DEFAULT), r
            ).to_dense()
        out = run_ranks(_skewed_auto_prog, NRANKS, backend=backend, timeout=120.0)
        for rank in range(NRANKS):
            assert np.allclose(out[rank], expected, atol=1e-3), rank


class TestAutoChunks:
    def test_auto_chunks_matches_unchunked_bits(self):
        streams = [make_rank_stream(DIMENSION, 300, r) for r in range(4)]
        auto = run_sparse_allreduce(
            streams, "ssar_hier", topology="2x2", chunks="auto"
        )
        one = run_sparse_allreduce(streams, "ssar_hier", topology="2x2", chunks=1)
        for rank in range(4):
            assert np.array_equal(auto[rank].to_dense(), one[rank].to_dense())

    def test_flat_algorithm_ignores_auto_silently(self):
        streams = [make_rank_stream(DIMENSION, 300, r) for r in range(4)]
        out = run_sparse_allreduce(streams, "ssar_rec_dbl", chunks="auto")
        assert np.allclose(out[0].to_dense(), reference_sum(DIMENSION, 300, 4), atol=1e-3)

    def test_auto_with_auto_algorithm(self):
        streams = [make_rank_stream(DIMENSION, 300, r) for r in range(4)]
        out = run_sparse_allreduce(streams, "auto", topology="2x2", chunks="auto")
        assert np.allclose(out[0].to_dense(), reference_sum(DIMENSION, 300, 4), atol=1e-3)


def _fused_selector_prog(comm, schedule):
    fuser = GradientFuser([("a", 1024), ("b", 1024)], min_bucket_bytes=0)
    ef = fuser.make_error_feedback(k=16, bucket_size=None)
    selector = AdaptiveSelector(dimension=1024, ewma=1.0)
    gen = np.random.default_rng(60 + comm.rank)
    outs = []
    for _ in schedule:
        grad = gen.standard_normal(2048).astype(np.float32)
        outs.append(
            fuser.fused_topk_allreduce(comm, grad, ef, selector=selector).copy()
        )
    return outs, [s.to_dict() for s in selector.switches], selector.algorithm


class TestFuserSelector:
    def test_selector_resolves_per_call(self):
        out = run_ranks(_fused_selector_prog, 2, [0, 1, 2])
        outs, switches, algorithm = out[0]
        assert len(outs) == 3 and switches
        assert algorithm in ("ssar_rec_dbl", "ssar_split_ag")
        # both ranks saw the same switch sequence
        assert out[1][1] == switches

    def test_selector_requires_auto(self):
        def prog(comm):
            fuser = GradientFuser([("a", 64)], min_bucket_bytes=0)
            ef = fuser.make_error_feedback(k=8, bucket_size=None)
            selector = AdaptiveSelector(dimension=64)
            grad = np.ones(64, dtype=np.float32)
            with pytest.raises(ValueError, match="auto"):
                fuser.fused_topk_allreduce(
                    comm, grad, ef, algorithm="ssar_ring", selector=selector
                )
            return True

        assert run_ranks(prog, 2)[0] is True


class TestAsyncAdaptive:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_sparse_classification(200, 2000, 20, seed=41)

    def _run(self, dataset, adaptive):
        def prog(comm):
            cfg = SGDConfig(epochs=3, batch_size=25, lr=0.5, mode="sparse")
            return distributed_sgd_async(
                comm, dataset, LogisticRegression(dataset.n_features, 1e-5), cfg,
                adaptive=adaptive,
            )

        return run_ranks(prog, 4)

    def test_records_switches_and_ranks_agree(self, dataset):
        out = self._run(dataset, adaptive=True)
        for rank in range(4):
            history = out[rank]
            assert history.algorithm_switches  # at least the initial selection
            assert history.algorithm_switches == out[0].algorithm_switches
            assert np.allclose(history.params, out[0].params, atol=1e-9)
        assert out[0].final_loss < out[0].losses[0]

    def test_non_adaptive_records_nothing(self, dataset):
        out = self._run(dataset, adaptive=False)
        assert out[0].algorithm_switches == []

    def test_adaptive_requires_auto(self, dataset):
        def prog(comm):
            cfg = SGDConfig(
                epochs=1, batch_size=25, lr=0.5, mode="sparse",
                algorithm="ssar_rec_dbl",
            )
            with pytest.raises(ValueError, match="auto"):
                distributed_sgd_async(
                    comm, dataset, LogisticRegression(dataset.n_features, 1e-5),
                    cfg, adaptive=True,
                )
            return True

        assert run_ranks(prog, 2)[0] is True
