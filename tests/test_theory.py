"""Empirical validation of the convergence theory (Thm 4.1, App. C).

These tests check the *statements* the proof makes on concrete runs:

* ergodic convergence: ``min_t ||grad f(x_t)||^2 -> 0`` for quantized TopK
  SGD with diminishing steps, on a smooth non-convex objective;
* the second-moment blow-up of quantization stays within the QSGD factor
  folded into M (App. C, eq. 2);
* Assumption C.2's commutativity gap ``xi`` is small on gradient-like
  inputs and zero when nodes agree.
"""

import numpy as np
import pytest

from repro.analysis import measure_commutativity_gap
from repro.core import TopKSGDConfig, quantized_topk_sgd
from repro.quant import QSGDQuantizer, quantization_variance_bound
from repro.runtime import run_ranks


class TestErgodicConvergence:
    """min_t E||grad f(v_t)||^2 -> 0 on a smooth non-convex objective."""

    @staticmethod
    def _nonconvex_setup(dim, nranks):
        """f(x) = mean_p [ 0.5||x - c_p||^2 + A * sum_i cos(x_i) ] — smooth,
        non-convex (Ackley/Rastrigin-flavoured), gradient computable."""
        A = 0.5
        centres = [np.random.default_rng(100 + r).standard_normal(dim) for r in range(nranks)]

        def full_grad(x):
            return np.mean([x - c for c in centres], axis=0) - A * np.sin(x)

        def grad_fn_for(rank):
            g = np.random.default_rng(300 + rank)

            def fn(params, step):
                grad = (params - centres[rank]) / nranks - (A / nranks) * np.sin(params)
                return (grad + g.standard_normal(dim) * 0.02).astype(np.float32)

            return fn

        return grad_fn_for, full_grad

    @pytest.mark.parametrize("bits", [None, 4])
    def test_min_grad_norm_decreases(self, bits):
        dim, P, steps = 64, 4, 240
        grad_fn_for, full_grad = self._nonconvex_setup(dim, P)
        norms: list[float] = []

        def prog(comm):
            cfg = TopKSGDConfig(
                k=8, bucket_size=32, lr=0.4, lr_decay=0.02, quantizer_bits=bits
            )

            def eval_fn(params):
                return {"grad_sq": float(np.sum(full_grad(params.astype(np.float64)) ** 2))}

            return quantized_topk_sgd(
                comm, grad_fn_for(comm.rank), dim, steps, cfg, eval_fn, eval_every=20
            )

        out = run_ranks(prog, P)
        series = [h["grad_sq"] for h in out[0].history]
        running_min = np.minimum.accumulate(series)
        # the ergodic minimum shrinks by orders of magnitude
        assert running_min[-1] < running_min[0] * 0.05
        # and ends near stationarity relative to the initial gradient
        assert running_min[-1] < 0.5

    def test_learning_rate_schedule_is_diminishing(self):
        cfg = TopKSGDConfig(k=1, lr=1.0, lr_decay=0.1)
        lrs = [cfg.learning_rate(t) for t in range(50)]
        assert all(a > b for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] < lrs[0] / 5


class TestSecondMomentBound:
    """E||Q(v)||^2 <= variance_factor * ||v||^2 (App. C eq. 2)."""

    @pytest.mark.parametrize("bits,bucket", [(2, 64), (4, 256), (8, 512)])
    def test_quantized_second_moment_within_bound(self, bits, bucket, rng):
        q = QSGDQuantizer(bits=bits, bucket_size=bucket, seed=11)
        factor = quantization_variance_bound(bits, bucket)
        v = rng.standard_normal(2048).astype(np.float32)
        trials = 50
        ratios = []
        for _ in range(trials):
            out = q.roundtrip(v).astype(np.float64)
            ratios.append(np.sum(out**2) / np.sum(v.astype(np.float64) ** 2))
        # the empirical mean second moment respects the analytic factor
        assert np.mean(ratios) <= factor * 1.05


class TestAssumptionC2:
    def test_xi_zero_when_nodes_identical(self, rng):
        acc = rng.standard_normal(512)
        gap = measure_commutativity_gap([acc.copy() for _ in range(6)], k=8, bucket_size=64)
        assert gap.xi == pytest.approx(0.0, abs=1e-12)

    def test_xi_bounded_on_random_gradients(self, rng):
        accs = [rng.standard_normal(2048) for _ in range(8)]
        gap = measure_commutativity_gap(accs, k=8, bucket_size=256)
        # "a (small) constant": the selection disagreement never exceeds the
        # accumulator scale itself on gaussian inputs
        assert 0.0 < gap.xi < 1.5
        assert gap.satisfied_with(1.5)

    def test_xi_shrinks_with_denser_selection(self, rng):
        accs = [rng.standard_normal(1024) for _ in range(4)]
        xi_sparse = measure_commutativity_gap(accs, k=4, bucket_size=256).xi
        xi_dense = measure_commutativity_gap(accs, k=128, bucket_size=256).xi
        assert xi_dense < xi_sparse

    def test_xi_zero_at_full_selection(self, rng):
        accs = [rng.standard_normal(256) for _ in range(4)]
        gap = measure_commutativity_gap(accs, k=256, bucket_size=None)
        assert gap.xi == pytest.approx(0.0, abs=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            measure_commutativity_gap([np.zeros(4), np.zeros(5)], k=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_commutativity_gap([], k=1)

    def test_global_vs_bucket_selection(self, rng):
        accs = [rng.standard_normal(1024) for _ in range(4)]
        g_bucket = measure_commutativity_gap(accs, k=4, bucket_size=128)
        g_global = measure_commutativity_gap(accs, k=32, bucket_size=None)
        # both are valid measurements of the same budget
        assert g_bucket.n_nodes == g_global.n_nodes == 4
        assert g_bucket.xi > 0 and g_global.xi > 0
