"""Property-based cross-backend equivalence (hypothesis).

For random (dimension, nnz, P): every SSAR algorithm computes the same sum
as the dense reference, and the thread, process, shmem and socket backends
agree bit for bit. This is the randomized generalization of the fixed-size
equivalence layer in ``test_backend_equivalence.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import (
    ssar_hierarchical,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from repro.runtime import run_ranks

from conftest import make_rank_stream, reference_sum

ALGOS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
}

BACKENDS = ["thread", "process", "shmem", "socket"]


def _run(algo, nranks, dim, nnz, seed, backend):
    return run_ranks(
        lambda comm: algo(comm, make_rank_stream(dim, nnz, comm.rank, seed)),
        nranks,
        backend=backend,
    )


@pytest.mark.slow
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=8, max_value=1500),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 10_000),
)
def test_property_slow_all_algorithms_agree_across_backends(nranks, dim, density, seed):
    """ssar_rec_dbl == ssar_split_ag == ssar_ring == dense reference,
    bit-identically across the thread, process, shmem and socket backends."""
    nnz = int(round(density * dim))
    ref = reference_sum(dim, nnz, nranks, seed)
    for name, algo in ALGOS.items():
        outs = {b: _run(algo, nranks, dim, nnz, seed, b) for b in BACKENDS}
        thread_out = outs["thread"]
        for backend in BACKENDS[1:]:
            other_out = outs[backend]
            for r in range(nranks):
                t = thread_out[r].to_dense()
                o = other_out[r].to_dense()
                assert np.array_equal(t, o), (
                    f"{name} P={nranks} rank {r}: thread vs {backend} disagree"
                )
                assert np.allclose(t, ref, atol=1e-3), f"{name} P={nranks} rank {r}: wrong sum"
            assert (
                thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent
            ), f"{name}: byte accounting differs on {backend}"


def _split_prog(comm, colors, keys, dim, nnz, seed):
    sub = comm.split(colors[comm.rank], keys[comm.rank])
    if sub is None:
        return None
    out = ssar_recursive_double(sub, make_rank_stream(dim, nnz, comm.rank, seed))
    return (sub.rank, sub.size, sub.parent_ranks, out)


@pytest.mark.slow
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    nranks=st.integers(min_value=2, max_value=8),
    dim=st.integers(min_value=8, max_value=800),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_property_slow_splits_agree_across_backends(nranks, dim, density, seed, data):
    """Collectives on every random (color, key) split are bit-identical on
    the thread, process, shmem and socket backends, and each group's result
    equals its members' reference sum."""
    nnz = int(round(density * dim))
    colors = data.draw(
        st.lists(
            st.sampled_from([0, 1, 2, None]), min_size=nranks, max_size=nranks
        ),
        label="colors",
    )
    keys = data.draw(
        st.lists(st.integers(-3, 3), min_size=nranks, max_size=nranks), label="keys"
    )
    outs = {
        b: run_ranks(_split_prog, nranks, colors, keys, dim, nnz, seed, backend=b)
        for b in BACKENDS
    }
    thread_out = outs["thread"]
    for r in range(nranks):
        t = thread_out[r]
        if colors[r] is None:
            assert t is None
            continue
        members = t[2]
        ref = sum(make_rank_stream(dim, nnz, m, seed).to_dense() for m in members)
        assert np.allclose(t[3].to_dense(), ref, atol=1e-3), f"rank {r}: wrong sum"
    for backend in BACKENDS[1:]:
        other_out = outs[backend]
        for r in range(nranks):
            t, o = thread_out[r], other_out[r]
            assert (t is None) == (o is None)
            if t is None:
                continue
            assert t[:3] == o[:3], f"rank {r}: group shape differs on {backend}"
            assert np.array_equal(t[3].to_dense(), o[3].to_dense()), (
                f"P={nranks} rank {r}: thread vs {backend} disagree"
            )
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


def _hier_prog(comm, dim, nnz, seed):
    return ssar_hierarchical(comm, make_rank_stream(dim, nnz, comm.rank, seed))


@pytest.mark.slow
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    nranks=st.integers(min_value=1, max_value=8),
    ranks_per_node=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=8, max_value=800),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 10_000),
)
def test_property_slow_hier_agrees_across_backends(
    nranks, ranks_per_node, dim, density, seed
):
    """ssar_hier on a random simulated topology: right sum, bit-identical
    across all four backends."""
    nnz = int(round(density * dim))
    topology = min(ranks_per_node, nranks)
    ref = reference_sum(dim, nnz, nranks, seed)
    outs = {
        b: run_ranks(_hier_prog, nranks, dim, nnz, seed, backend=b, topology=topology)
        for b in BACKENDS
    }
    thread_out = outs["thread"]
    for backend in BACKENDS[1:]:
        other_out = outs[backend]
        for r in range(nranks):
            t, o = thread_out[r].to_dense(), other_out[r].to_dense()
            assert np.array_equal(t, o), f"P={nranks} rank {r}: thread vs {backend}"
            assert np.allclose(t, ref, atol=1e-3), f"P={nranks} rank {r}: wrong sum"
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


def _chunked_hier_prog(comm, dim, nnz, seed, chunks):
    return ssar_hierarchical(
        comm, make_rank_stream(dim, nnz, comm.rank, seed), chunks=chunks
    )


@pytest.mark.slow
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    nranks=st.integers(min_value=1, max_value=8),
    ranks_per_node=st.integers(min_value=1, max_value=8),
    chunks=st.integers(min_value=1, max_value=6),
    dim=st.integers(min_value=8, max_value=800),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 10_000),
)
def test_property_slow_chunked_hier_matches_unchunked_across_backends(
    nranks, ranks_per_node, chunks, dim, density, seed
):
    """Chunked ssar_hier on a random topology for a random pipeline depth:
    bit-identical to the unchunked schedule and across all four backends —
    the tentpole guarantee of the overlap PR, randomized."""
    nnz = int(round(density * dim))
    topology = min(ranks_per_node, nranks)
    base = run_ranks(
        _hier_prog, nranks, dim, nnz, seed, backend="thread", topology=topology
    )
    outs = {
        b: run_ranks(
            _chunked_hier_prog, nranks, dim, nnz, seed, chunks,
            backend=b, topology=topology,
        )
        for b in BACKENDS
    }
    thread_out = outs["thread"]
    for r in range(nranks):
        assert np.array_equal(thread_out[r].to_dense(), base[r].to_dense()), (
            f"P={nranks} K={chunks} rank {r}: chunked vs unchunked"
        )
    for backend in BACKENDS[1:]:
        other_out = outs[backend]
        for r in range(nranks):
            assert np.array_equal(
                thread_out[r].to_dense(), other_out[r].to_dense()
            ), f"P={nranks} K={chunks} rank {r}: thread vs {backend}"
        assert thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent


@pytest.mark.slow
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    nranks=st.integers(min_value=2, max_value=6),
    dim=st.integers(min_value=16, max_value=512),
    seed=st.integers(0, 10_000),
)
def test_property_slow_algorithms_agree_with_each_other(nranks, dim, seed):
    """All three SSAR algorithms produce one identical answer per input."""
    gen = np.random.default_rng(seed)
    nnz = int(gen.integers(0, dim + 1))
    outs = {
        name: _run(algo, nranks, dim, nnz, seed, "shmem")[0].to_dense()
        for name, algo in ALGOS.items()
    }
    base = outs.pop("ssar_rec_dbl")
    for name, dense in outs.items():
        assert np.allclose(dense, base, atol=1e-3), f"{name} disagrees with ssar_rec_dbl"
