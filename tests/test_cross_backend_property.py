"""Property-based cross-backend equivalence (hypothesis).

For random (dimension, nnz, P): every SSAR algorithm computes the same sum
as the dense reference, and the thread, process, shmem and socket backends
agree bit for bit. This is the randomized generalization of the fixed-size
equivalence layer in ``test_backend_equivalence.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import ssar_recursive_double, ssar_ring, ssar_split_allgather
from repro.runtime import run_ranks

from conftest import make_rank_stream, reference_sum

ALGOS = {
    "ssar_rec_dbl": ssar_recursive_double,
    "ssar_split_ag": ssar_split_allgather,
    "ssar_ring": ssar_ring,
}

BACKENDS = ["thread", "process", "shmem", "socket"]


def _run(algo, nranks, dim, nnz, seed, backend):
    return run_ranks(
        lambda comm: algo(comm, make_rank_stream(dim, nnz, comm.rank, seed)),
        nranks,
        backend=backend,
    )


@pytest.mark.slow
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=8, max_value=1500),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 10_000),
)
def test_property_slow_all_algorithms_agree_across_backends(nranks, dim, density, seed):
    """ssar_rec_dbl == ssar_split_ag == ssar_ring == dense reference,
    bit-identically across the thread, process, shmem and socket backends."""
    nnz = int(round(density * dim))
    ref = reference_sum(dim, nnz, nranks, seed)
    for name, algo in ALGOS.items():
        outs = {b: _run(algo, nranks, dim, nnz, seed, b) for b in BACKENDS}
        thread_out = outs["thread"]
        for backend in BACKENDS[1:]:
            other_out = outs[backend]
            for r in range(nranks):
                t = thread_out[r].to_dense()
                o = other_out[r].to_dense()
                assert np.array_equal(t, o), (
                    f"{name} P={nranks} rank {r}: thread vs {backend} disagree"
                )
                assert np.allclose(t, ref, atol=1e-3), f"{name} P={nranks} rank {r}: wrong sum"
            assert (
                thread_out.trace.total_bytes_sent == other_out.trace.total_bytes_sent
            ), f"{name}: byte accounting differs on {backend}"


@pytest.mark.slow
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    nranks=st.integers(min_value=2, max_value=6),
    dim=st.integers(min_value=16, max_value=512),
    seed=st.integers(0, 10_000),
)
def test_property_slow_algorithms_agree_with_each_other(nranks, dim, seed):
    """All three SSAR algorithms produce one identical answer per input."""
    gen = np.random.default_rng(seed)
    nnz = int(gen.integers(0, dim + 1))
    outs = {
        name: _run(algo, nranks, dim, nnz, seed, "shmem")[0].to_dense()
        for name, algo in ALGOS.items()
    }
    base = outs.pop("ssar_rec_dbl")
    for name, dense in outs.items():
        assert np.allclose(dense, base, atol=1e-3), f"{name} disagrees with ssar_rec_dbl"
