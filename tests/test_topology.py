"""Tests for the topology layer (rank -> host maps and tiered accounting)."""

import pickle

import pytest

from repro.runtime import (
    RankError,
    Topology,
    bytes_by_tier,
    check_topology_size,
    inter_node_bytes,
    normalize_topology,
    run_ranks,
)
from repro.runtime.trace import Trace


class TestConstruction:
    def test_flat(self):
        t = Topology.flat(4)
        assert t.nranks == 4
        assert t.nnodes == 1
        assert not t.is_hierarchical
        assert t.groups == ((0, 1, 2, 3),)
        assert t.leaders == (0,)

    def test_uniform(self):
        t = Topology.uniform(6, 2)
        assert t.hosts == ("node0", "node0", "node1", "node1", "node2", "node2")
        assert t.nnodes == 3
        assert t.is_hierarchical
        assert t.leaders == (0, 2, 4)

    def test_uniform_ragged_tail(self):
        t = Topology.uniform(5, 2)
        assert t.groups == ((0, 1), (2, 3), (4,))
        assert t.max_ranks_per_node == 2

    def test_from_spec(self):
        t = Topology.from_spec("2x4")
        assert t.nranks == 8
        assert t.nnodes == 2
        assert t.groups == ((0, 1, 2, 3), (4, 5, 6, 7))

    @pytest.mark.parametrize("bad", ["", "2", "x4", "2x", "ax4", "2x4x2", "0x4"])
    def test_bad_specs(self, bad):
        with pytest.raises(ValueError):
            Topology.from_spec(bad)

    def test_explicit_hosts(self):
        t = Topology(("a", "b", "a", "c"))
        assert t.unique_hosts == ("a", "b", "c")
        assert t.groups == ((0, 2), (1,), (3,))
        assert t.ranks_on("a") == (0, 2)
        assert t.host_of(3) == "c"
        assert t.leader_of(2) == 0
        assert t.group_of(1) == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(())
        with pytest.raises(ValueError):
            Topology(("a", ""))
        with pytest.raises(ValueError):
            Topology.flat(0)
        with pytest.raises(ValueError):
            Topology.uniform(4, 0)
        with pytest.raises(ValueError):
            Topology(("a", "b")).host_of(2)
        with pytest.raises(ValueError):
            Topology(("a", "b")).ranks_on("zzz")

    def test_hierarchy_predicate(self):
        assert not Topology.flat(8).is_hierarchical  # one host
        assert not Topology.uniform(4, 1).is_hierarchical  # one rank per host
        assert Topology.uniform(4, 2).is_hierarchical
        assert Topology(("a", "a", "b")).is_hierarchical

    def test_restrict(self):
        t = Topology.from_spec("2x2")
        assert t.restrict([1, 3]).hosts == ("node0", "node1")
        assert t.restrict([2, 3]).nnodes == 1
        with pytest.raises(ValueError):
            t.restrict([4])

    def test_picklable_and_hashable(self):
        t = Topology.from_spec("2x2")
        assert pickle.loads(pickle.dumps(t)) == t
        assert hash(t) == hash(Topology.uniform(4, 2))

    def test_describe(self):
        assert Topology(("a", "a", "b")).describe() == "2 hosts: a=[0, 1] b=[2]"


class TestNormalize:
    def test_passthrough_and_specs(self):
        assert normalize_topology(None, 4) is None
        t = Topology.uniform(4, 2)
        assert normalize_topology(t, 4) is t
        assert normalize_topology("2x2", 4) == t
        assert normalize_topology(2, 4) == t
        assert normalize_topology(["node0", "node0", "node1", "node1"], 4) == t

    def test_size_mismatch(self):
        with pytest.raises(ValueError, match="describes 4 ranks"):
            normalize_topology("2x2", 8)
        with pytest.raises(ValueError, match="describes 3 ranks"):
            normalize_topology(("a", "b", "c"), 2)


class TestTieredAccounting:
    def _trace(self):
        tr = Trace(4)
        tr.record_send(0, 1, 0, 0, 100)  # intra (node0)
        tr.record_send(0, 2, 0, 0, 10)   # inter
        tr.record_send(3, 1, 0, 0, 1)    # inter
        tr.record_recv(1, 0, 0, 0, 100)  # recv events never count
        tr.record_compute(2, 555)
        return tr

    def test_bytes_by_tier(self):
        topo = Topology.from_spec("2x2")
        assert bytes_by_tier(self._trace(), topo) == (100, 11)
        assert inter_node_bytes(self._trace(), topo) == 11

    def test_flat_world_has_no_inter_bytes(self):
        assert inter_node_bytes(self._trace(), Topology.flat(4)) == 0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            bytes_by_tier(self._trace(), Topology.flat(2))


BACKENDS = ["thread", "process", "shmem", "socket"]


class TestPlumbing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explicit_topology_reaches_every_rank(self, backend):
        out = run_ranks(lambda comm: comm.topology, 4, backend=backend, topology="2x2")
        assert all(t == Topology.uniform(4, 2) for t in out.results)

    def test_default_is_none_on_local_backends(self):
        for backend in ("thread", "process", "shmem"):
            out = run_ranks(lambda comm: comm.topology, 2, backend=backend)
            assert out.results == [None, None]

    def test_spec_forms_accepted_by_run_ranks(self):
        out = run_ranks(lambda comm: comm.topology, 4, topology=2)
        assert out.results[0] == Topology.uniform(4, 2)
        with pytest.raises(ValueError, match="describes"):
            run_ranks(lambda comm: None, 4, topology="2x4")

    def test_socket_backend_derives_topology_from_rendezvous(self):
        """Single-host socket runs see the loopback host map (flat)."""
        out = run_ranks(lambda comm: comm.topology, 2, backend="socket")
        assert all(t == Topology(("127.0.0.1", "127.0.0.1")) for t in out.results)
        assert not out.results[0].is_hierarchical

    def test_socket_backend_explicit_topology_overrides_derived(self):
        out = run_ranks(
            lambda comm: comm.topology, 4, backend="socket", topology="2x2"
        )
        assert all(t == Topology.uniform(4, 2) for t in out.results)


MISMATCH = r"topology describes 4 ranks but the world has 2"


class TestUniformSizeValidation:
    """Every launcher path raises the same clear ValueError when the
    topology's rank count disagrees with the world size."""

    def test_check_topology_size_helper(self):
        topo = Topology.uniform(4, 2)
        assert check_topology_size(topo, 4) is topo
        with pytest.raises(ValueError, match=MISMATCH):
            check_topology_size(topo, 2)

    def test_run_ranks(self):
        with pytest.raises(ValueError, match=MISMATCH):
            run_ranks(lambda comm: None, 2, topology="2x2")
        with pytest.raises(ValueError, match=MISMATCH):
            run_ranks(lambda comm: None, 2, topology=Topology.uniform(4, 2))

    def test_run_sparse_allreduce(self):
        from repro.collectives import run_sparse_allreduce
        from repro.streams import SparseStream

        streams = [SparseStream(64, indices=[r], values=[1.0]) for r in range(2)]
        with pytest.raises(ValueError, match=MISMATCH):
            run_sparse_allreduce(streams, "ssar_rec_dbl", topology="2x2")

    def test_serve_rank_validates_before_any_socket_work(self):
        from repro.runtime import serve_rank

        # an unroutable rendezvous would hang if validation came later;
        # the mismatch must be raised immediately instead
        with pytest.raises(ValueError, match=MISMATCH):
            serve_rank(("127.0.0.1", 1), 0, 2, topology="2x2")

    def test_subcommunicator_restrict_path(self):
        """A communicator whose topology was (wrongly) replaced by hand
        still fails the same way when a sub-communicator restricts it."""

        def prog(comm):
            comm.topology = Topology.uniform(4, 2)  # lies about the world
            comm.subgroup([0, 1])

        with pytest.raises(RankError, match=MISMATCH):
            run_ranks(prog, 2, backend="thread")

    def test_hierarchical_collectives_path(self):
        from repro.collectives import dsar_hierarchical, ssar_hierarchical
        from repro.streams import SparseStream

        for algo in (ssar_hierarchical, dsar_hierarchical):
            def prog(comm, algo=algo):
                return algo(
                    comm, SparseStream(64, indices=[0], values=[1.0]),
                    topology=Topology.uniform(4, 2),
                )

            with pytest.raises(RankError, match=MISMATCH):
                run_ranks(prog, 2, backend="thread")
