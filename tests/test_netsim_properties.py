"""Property-based tests of the replay model's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import NetworkModel, TieredNetworkModel, replay
from repro.runtime import Topology, Trace, run_ranks
from repro.streams import SparseStream
from repro.collectives import sparse_allreduce, ssar_hierarchical


def random_trace(nranks: int, nmsgs: int, seed: int) -> Trace:
    """A random but causally valid trace: sends precede matching recvs."""
    gen = np.random.default_rng(seed)
    trace = Trace(nranks)
    pending: list[tuple[int, int, int, int, int]] = []
    for _ in range(nmsgs):
        src = int(gen.integers(0, nranks))
        dst = int(gen.integers(0, nranks - 1))
        if dst >= src:
            dst += 1
        nbytes = int(gen.integers(0, 10_000))
        seq = trace.next_seq(src, dst, 0)
        trace.record_send(src, dst, 0, seq, nbytes)
        pending.append((src, dst, 0, seq, nbytes))
    gen.shuffle(pending)  # type: ignore[arg-type]
    # group by receiver preserving per-channel seq order
    for dst in range(nranks):
        inbox = sorted(
            [p for p in pending if p[1] == dst], key=lambda p: (p[0], p[3])
        )
        for src, _, tag, seq, nbytes in inbox:
            trace.record_recv(dst, src, tag, seq, nbytes)
    return trace


class TestReplayMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 6),
        nmsgs=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_makespan_monotone_in_alpha_and_beta(self, nranks, nmsgs, seed):
        trace = random_trace(nranks, nmsgs, seed)
        base = replay(trace, NetworkModel("a", alpha=1e-6, beta=1e-9, gamma=0)).makespan
        more_alpha = replay(trace, NetworkModel("b", alpha=2e-6, beta=1e-9, gamma=0)).makespan
        more_beta = replay(trace, NetworkModel("c", alpha=1e-6, beta=2e-9, gamma=0)).makespan
        assert more_alpha >= base
        assert more_beta >= base

    @settings(max_examples=20, deadline=None)
    @given(
        nranks=st.integers(2, 5),
        nmsgs=st.integers(1, 30),
        seed=st.integers(0, 10_000),
        scale=st.floats(min_value=1.5, max_value=10.0),
    )
    def test_makespan_scales_linearly_with_uniform_scaling(self, nranks, nmsgs, seed, scale):
        """Scaling alpha, beta, gamma together scales every clock."""
        trace = random_trace(nranks, nmsgs, seed)
        m1 = NetworkModel("m1", alpha=1e-6, beta=1e-9, gamma=1e-10)
        m2 = NetworkModel(
            "m2", alpha=1e-6 * scale, beta=1e-9 * scale, gamma=1e-10 * scale
        )
        t1 = replay(trace, m1).makespan
        t2 = replay(trace, m2).makespan
        assert t2 == pytest.approx(t1 * scale, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_replay_idempotent(self, seed):
        trace = random_trace(4, 20, seed)
        r1 = replay(trace, NetworkModel("x", alpha=1e-6, beta=1e-9))
        r2 = replay(trace, NetworkModel("x", alpha=1e-6, beta=1e-9))
        assert r1.finish_times == r2.finish_times


def random_topology(nranks: int, seed: int) -> Topology:
    """A random rank -> host map over at most 3 hosts."""
    gen = np.random.default_rng(seed)
    hosts = tuple(f"h{gen.integers(0, min(3, nranks))}" for _ in range(nranks))
    return Topology(hosts=hosts)


class TestTieredReplayProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 6),
        nmsgs=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_equal_tiers_reproduce_single_model_bit_for_bit(self, nranks, nmsgs, seed):
        """A TieredNetworkModel whose tiers are the same flat model (and no
        uplink sharing, which only engages across tiers of different
        speed anyway) replays any trace identically to that flat model,
        whatever the topology — float for float, not approximately."""
        trace = random_trace(nranks, nmsgs, seed)
        flat = NetworkModel("f", alpha=1.7e-6, beta=2.3e-9, gamma=1.9e-10)
        eq = TieredNetworkModel(name="eq", intra=flat, inter=flat, shared_uplink=False)
        topo = random_topology(nranks, seed)
        base = replay(trace, flat)
        got = replay(trace, eq, topology=topo)
        assert got.finish_times == base.finish_times
        assert got.phase_times == base.phase_times

    @settings(max_examples=10, deadline=None)
    @given(
        shape=st.sampled_from([(4, 2), (4, 4), (8, 4), (6, 3), (8, 2)]),
        nnz=st.integers(1, 400),
        seed=st.integers(0, 10_000),
        speedup=st.floats(min_value=2.0, max_value=100.0),
    )
    def test_hier_tiered_replay_never_exceeds_flat_preset(
        self, shape, nnz, seed, speedup
    ):
        """Replaying an ssar_hier trace under a tiered model whose intra
        tier is strictly faster can only *lower* every per-message cost
        relative to the inter model applied uniformly, so the tiered
        makespan never exceeds the flat-preset one. (Uplink sharing is
        excluded: it is an additional congestion penalty, covered by the
        monotonicity property below.)"""
        nranks, per_node = shape
        topo = Topology.uniform(nranks, per_node)

        def prog(comm):
            gen = np.random.default_rng(seed + comm.rank)
            s = SparseStream.random_uniform(1 << 14, nnz=nnz, rng=gen)
            return ssar_hierarchical(comm, s)

        trace = run_ranks(prog, nranks, topology=topo).trace
        inter = NetworkModel("x", alpha=2e-6, beta=3e-9, gamma=2e-10)
        intra = inter.with_(
            name="fast", alpha=inter.alpha / speedup, beta=inter.beta / speedup
        )
        tiered = TieredNetworkModel(
            name="t", intra=intra, inter=inter, shared_uplink=False
        )
        t_tiered = replay(trace, tiered, topology=topo).makespan
        t_flat = replay(trace, inter).makespan
        assert t_tiered <= t_flat * (1 + 1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 6),
        nmsgs=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_shared_uplink_never_faster_than_unshared(self, nranks, nmsgs, seed):
        """Uplink serialization is a pure congestion penalty: it can delay
        arrivals but never accelerate them."""
        trace = random_trace(nranks, nmsgs, seed)
        topo = random_topology(nranks, seed)
        intra = NetworkModel("i", alpha=1e-7, beta=1e-11, gamma=0)
        inter = NetworkModel("o", alpha=1e-6, beta=1e-9, gamma=0)
        shared = TieredNetworkModel(name="s", intra=intra, inter=inter)
        unshared = shared.with_(shared_uplink=False)
        t_shared = replay(trace, shared, topology=topo)
        t_unshared = replay(trace, unshared, topology=topo)
        assert t_shared.makespan >= t_unshared.makespan - 1e-18
        for a, b in zip(t_shared.finish_times, t_unshared.finish_times):
            assert a >= b - 1e-18


class TestReplayOnCollectives:
    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.sampled_from([2, 4, 8]),
        nnz=st.integers(1, 300),
        seed=st.integers(0, 10_000),
    )
    def test_more_data_never_faster(self, nranks, nnz, seed):
        """At fixed P, doubling every rank's payload cannot reduce the
        replayed time of the same algorithm."""
        model = NetworkModel("t", alpha=1e-6, beta=1e-9, gamma=0)

        def run(k):
            def prog(comm):
                gen = np.random.default_rng(seed + comm.rank)
                return sparse_allreduce(
                    comm,
                    SparseStream.random_uniform(1 << 16, nnz=k, rng=gen),
                    algorithm="ssar_rec_dbl",
                )

            return replay(run_ranks(prog, nranks).trace, model).makespan

        assert run(min(2 * nnz, 1 << 16)) >= run(nnz) * 0.999

    def test_bytes_conservation(self):
        """Total sent == total received in any completed collective."""
        def prog(comm):
            gen = np.random.default_rng(comm.rank)
            return sparse_allreduce(
                comm, SparseStream.random_uniform(4096, nnz=64, rng=gen), "ssar_split_ag"
            )

        out = run_ranks(prog, 8)
        sent = sum(out.trace.bytes_sent_by(r) for r in range(8))
        received = sum(out.trace.bytes_received_by(r) for r in range(8))
        assert sent == received
