"""Property-based tests of the replay model's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import NetworkModel, replay
from repro.runtime import Trace, run_ranks
from repro.streams import SparseStream
from repro.collectives import sparse_allreduce


def random_trace(nranks: int, nmsgs: int, seed: int) -> Trace:
    """A random but causally valid trace: sends precede matching recvs."""
    gen = np.random.default_rng(seed)
    trace = Trace(nranks)
    pending: list[tuple[int, int, int, int, int]] = []
    for _ in range(nmsgs):
        src = int(gen.integers(0, nranks))
        dst = int(gen.integers(0, nranks - 1))
        if dst >= src:
            dst += 1
        nbytes = int(gen.integers(0, 10_000))
        seq = trace.next_seq(src, dst, 0)
        trace.record_send(src, dst, 0, seq, nbytes)
        pending.append((src, dst, 0, seq, nbytes))
    gen.shuffle(pending)  # type: ignore[arg-type]
    # group by receiver preserving per-channel seq order
    for dst in range(nranks):
        inbox = sorted(
            [p for p in pending if p[1] == dst], key=lambda p: (p[0], p[3])
        )
        for src, _, tag, seq, nbytes in inbox:
            trace.record_recv(dst, src, tag, seq, nbytes)
    return trace


class TestReplayMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        nranks=st.integers(2, 6),
        nmsgs=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_makespan_monotone_in_alpha_and_beta(self, nranks, nmsgs, seed):
        trace = random_trace(nranks, nmsgs, seed)
        base = replay(trace, NetworkModel("a", alpha=1e-6, beta=1e-9, gamma=0)).makespan
        more_alpha = replay(trace, NetworkModel("b", alpha=2e-6, beta=1e-9, gamma=0)).makespan
        more_beta = replay(trace, NetworkModel("c", alpha=1e-6, beta=2e-9, gamma=0)).makespan
        assert more_alpha >= base
        assert more_beta >= base

    @settings(max_examples=20, deadline=None)
    @given(
        nranks=st.integers(2, 5),
        nmsgs=st.integers(1, 30),
        seed=st.integers(0, 10_000),
        scale=st.floats(min_value=1.5, max_value=10.0),
    )
    def test_makespan_scales_linearly_with_uniform_scaling(self, nranks, nmsgs, seed, scale):
        """Scaling alpha, beta, gamma together scales every clock."""
        trace = random_trace(nranks, nmsgs, seed)
        m1 = NetworkModel("m1", alpha=1e-6, beta=1e-9, gamma=1e-10)
        m2 = NetworkModel(
            "m2", alpha=1e-6 * scale, beta=1e-9 * scale, gamma=1e-10 * scale
        )
        t1 = replay(trace, m1).makespan
        t2 = replay(trace, m2).makespan
        assert t2 == pytest.approx(t1 * scale, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_replay_idempotent(self, seed):
        trace = random_trace(4, 20, seed)
        r1 = replay(trace, NetworkModel("x", alpha=1e-6, beta=1e-9))
        r2 = replay(trace, NetworkModel("x", alpha=1e-6, beta=1e-9))
        assert r1.finish_times == r2.finish_times


class TestReplayOnCollectives:
    @settings(max_examples=10, deadline=None)
    @given(
        nranks=st.sampled_from([2, 4, 8]),
        nnz=st.integers(1, 300),
        seed=st.integers(0, 10_000),
    )
    def test_more_data_never_faster(self, nranks, nnz, seed):
        """At fixed P, doubling every rank's payload cannot reduce the
        replayed time of the same algorithm."""
        model = NetworkModel("t", alpha=1e-6, beta=1e-9, gamma=0)

        def run(k):
            def prog(comm):
                gen = np.random.default_rng(seed + comm.rank)
                return sparse_allreduce(
                    comm,
                    SparseStream.random_uniform(1 << 16, nnz=k, rng=gen),
                    algorithm="ssar_rec_dbl",
                )

            return replay(run_ranks(prog, nranks).trace, model).makespan

        assert run(min(2 * nnz, 1 << 16)) >= run(nnz) * 0.999

    def test_bytes_conservation(self):
        """Total sent == total received in any completed collective."""
        def prog(comm):
            gen = np.random.default_rng(comm.rank)
            return sparse_allreduce(
                comm, SparseStream.random_uniform(4096, nnz=64, rng=gen), "ssar_split_ag"
            )

        out = run_ranks(prog, 8)
        sent = sum(out.trace.bytes_sent_by(r) for r in range(8))
        received = sum(out.trace.bytes_received_by(r) for r in range(8))
        assert sent == received
