"""Tests for the sparse allreduce algorithms (SSAR family) and allgather."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    allgather_blocks,
    allgather_recursive_doubling,
    allgather_ring,
    slice_stream,
    sparse_allgather,
    sparse_allreduce,
    ssar_recursive_double,
    ssar_ring,
    ssar_split_allgather,
)
from repro.runtime import RankError, run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

SPARSE_ALGOS = {
    "rec_dbl": ssar_recursive_double,
    "split_ag": ssar_split_allgather,
    "ring": ssar_ring,
}


def run_sparse(algo, nranks: int, dim: int, nnz: int, seed: int = 7000):
    out = run_ranks(
        lambda comm: algo(comm, make_rank_stream(dim, nnz, comm.rank, seed)), nranks
    )
    ref = reference_sum(dim, nnz, nranks, seed)
    return out, ref


class TestSliceStream:
    def test_slices_by_range(self, rng):
        s = SparseStream(100, indices=[5, 20, 50, 99], values=[1.0, 2.0, 3.0, 4.0])
        part = slice_stream(s, 10, 60)
        assert list(part.indices) == [20, 50]
        assert list(part.values) == [2.0, 3.0]

    def test_empty_slice(self):
        s = SparseStream(100, indices=[5], values=[1.0])
        assert slice_stream(s, 50, 60).nnz == 0

    def test_full_slice(self, rng):
        s = SparseStream.random_uniform(100, nnz=20, rng=rng)
        part = slice_stream(s, 0, 100)
        assert np.array_equal(part.indices, s.indices)

    def test_dense_rejected(self):
        s = SparseStream(10, dense=np.zeros(10, dtype=np.float32))
        with pytest.raises(ValueError):
            slice_stream(s, 0, 5)


@pytest.mark.parametrize("name,algo", SPARSE_ALGOS.items())
class TestSparseAllreduce:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_power_of_two(self, name, algo, nranks):
        out, ref = run_sparse(algo, nranks, 4096, 100)
        for r in range(nranks):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4), f"{name} rank {r}"

    @pytest.mark.parametrize("nranks", [3, 5, 6])
    def test_non_power_of_two(self, name, algo, nranks):
        out, ref = run_sparse(algo, nranks, 2048, 64)
        for r in range(nranks):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)

    def test_empty_contributions(self, name, algo):
        out, ref = run_sparse(algo, 4, 1024, 0)
        for r in range(4):
            assert out[r].stored_nonzeros == 0

    def test_single_nonzero(self, name, algo):
        out, ref = run_sparse(algo, 4, 512, 1)
        for r in range(4):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-5)

    def test_full_overlap_inputs(self, name, algo):
        """All ranks contribute the same support: K = k (§5.3 extreme 2)."""
        idx = np.arange(0, 1000, 10, dtype=np.uint32)

        def prog(comm):
            vals = np.full(idx.size, float(comm.rank + 1), dtype=np.float32)
            return algo(comm, SparseStream(8192, indices=idx, values=vals))

        out = run_ranks(prog, 4)
        result = out[0]
        assert result.nnz == idx.size  # no fill-in
        expected = np.zeros(8192, dtype=np.float32)
        expected[idx] = 1 + 2 + 3 + 4
        assert np.allclose(result.to_dense(), expected)

    def test_disjoint_inputs_max_fillin(self, name, algo):
        """Disjoint supports: K = kP (§5.3 extreme 1)."""
        k, P, dim = 50, 4, 8192

        def prog(comm):
            idx = np.arange(comm.rank * k, (comm.rank + 1) * k, dtype=np.uint32)
            return algo(comm, SparseStream(dim, indices=idx, values=np.ones(k, dtype=np.float32)))

        out = run_ranks(prog, P)
        assert out[0].nnz == k * P

    def test_float64_values(self, name, algo):
        out = run_ranks(
            lambda comm: algo(
                comm, make_rank_stream(1024, 30, comm.rank, value_dtype=np.float64)
            ),
            4,
        )
        ref = np.sum(
            [make_rank_stream(1024, 30, r, value_dtype=np.float64).to_dense() for r in range(4)],
            axis=0,
        )
        assert np.allclose(out[0].to_dense(), ref, atol=1e-10)

    def test_dense_input_accepted(self, name, algo):
        """Dense-representation inputs are sparsified at entry."""
        def prog(comm):
            s = make_rank_stream(512, 20, comm.rank).densify()
            return algo(comm, s)

        out = run_ranks(prog, 4)
        ref = reference_sum(512, 20, 4)
        assert np.allclose(out[0].to_dense(), ref, atol=1e-4)

    def test_results_identical_across_ranks(self, name, algo):
        out, _ = run_sparse(algo, 8, 2048, 64)
        base = out[0].to_dense()
        for r in range(1, 8):
            assert np.array_equal(out[r].to_dense(), base)


class TestFillInSwitching:
    def test_high_density_switches_to_dense(self):
        """When fill-in crosses delta, rec-dbl output becomes dense."""
        dim, P = 1024, 8  # delta = 512
        out, ref = run_sparse(ssar_recursive_double, P, dim, 200)  # K ~ 1024*0.79
        assert out[0].is_dense
        assert np.allclose(out[0].to_dense(), ref, atol=1e-4)

    def test_low_density_stays_sparse(self):
        out, _ = run_sparse(ssar_recursive_double, 4, 65536, 100)
        assert not out[0].is_dense


class TestSparseAllreduceApi:
    def test_auto_dispatch(self):
        def prog(comm):
            return sparse_allreduce(comm, make_rank_stream(4096, 50, comm.rank), algorithm="auto")

        out = run_ranks(prog, 4)
        assert np.allclose(out[0].to_dense(), reference_sum(4096, 50, 4), atol=1e-4)

    def test_unknown_algorithm(self):
        def prog(comm):
            return sparse_allreduce(comm, make_rank_stream(64, 4, comm.rank), algorithm="bogus")

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    @pytest.mark.parametrize("algo", ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag"])
    def test_named_dispatch(self, algo):
        def prog(comm):
            return sparse_allreduce(comm, make_rank_stream(2048, 40, comm.rank), algorithm=algo)

        out = run_ranks(prog, 4)
        assert np.allclose(out[0].to_dense(), reference_sum(2048, 40, 4), atol=1e-4)


class TestAllgather:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_recursive_doubling_blocks(self, nranks):
        def prog(comm):
            return allgather_recursive_doubling(comm, f"blk{comm.rank}")

        out = run_ranks(prog, nranks)
        expected = [f"blk{r}" for r in range(nranks)]
        assert all(out[r] == expected for r in range(nranks))

    def test_recursive_doubling_requires_pow2(self):
        def prog(comm):
            return allgather_recursive_doubling(comm, 0)

        with pytest.raises(RankError):
            run_ranks(prog, 3)

    @pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
    def test_ring_blocks(self, nranks):
        def prog(comm):
            return allgather_ring(comm, comm.rank * 11)

        out = run_ranks(prog, nranks)
        expected = [r * 11 for r in range(nranks)]
        assert all(out[r] == expected for r in range(nranks))

    @pytest.mark.parametrize("nranks", [2, 3, 4, 6, 8])
    def test_dispatch_any_p(self, nranks):
        def prog(comm):
            return allgather_blocks(comm, comm.rank)

        out = run_ranks(prog, nranks)
        assert out[0] == list(range(nranks))

    @pytest.mark.parametrize("nranks", [2, 4, 5, 8])
    def test_sparse_allgather_disjoint(self, nranks):
        dim = 1000

        def prog(comm):
            lo = comm.rank * dim // comm.size
            hi = (comm.rank + 1) * dim // comm.size
            idx = np.arange(lo, hi, 2, dtype=np.uint32)
            vals = np.full(idx.size, comm.rank + 1.0, dtype=np.float32)
            return sparse_allgather(comm, SparseStream(dim, indices=idx, values=vals))

        out = run_ranks(prog, nranks)
        ref = np.zeros(dim, dtype=np.float32)
        for r in range(nranks):
            lo, hi = r * dim // nranks, (r + 1) * dim // nranks
            ref[np.arange(lo, hi, 2)] = r + 1.0
        for r in range(nranks):
            assert np.allclose(out[r].to_dense(), ref)

    def test_sparse_allgather_rejects_dense(self):
        def prog(comm):
            s = SparseStream(10, dense=np.zeros(10, dtype=np.float32))
            return sparse_allgather(comm, s)

        with pytest.raises(RankError):
            run_ranks(prog, 2)


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=8, max_value=2000),
    algo_name=st.sampled_from(sorted(SPARSE_ALGOS)),
    seed=st.integers(0, 10_000),
)
def test_property_sparse_allreduce_matches_reference(nranks, dim, algo_name, seed):
    """All algorithms compute the exact sum for arbitrary shapes/densities."""
    gen = np.random.default_rng(seed)
    nnz = int(gen.integers(0, dim + 1))
    algo = SPARSE_ALGOS[algo_name]
    out, ref = run_sparse(algo, nranks, dim, nnz, seed=seed)
    for r in range(nranks):
        assert np.allclose(out[r].to_dense(), ref, atol=1e-3)
