"""Tests for DSAR_Split_allgather and its quantized dense stage (§5.3.3, §6)."""

import numpy as np
import pytest

from repro.collectives import dsar_split_allgather
from repro.quant import QSGDQuantizer
from repro.runtime import run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum


def run_dsar(nranks, dim, nnz, quantizer_factory=None, seed=7000):
    def prog(comm):
        q = quantizer_factory(comm.rank) if quantizer_factory else None
        return dsar_split_allgather(comm, make_rank_stream(dim, nnz, comm.rank, seed), quantizer=q)

    return run_ranks(prog, nranks), reference_sum(dim, nnz, nranks, seed)


class TestDSAR:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_correct_and_dense(self, nranks):
        out, ref = run_dsar(nranks, 2048, 64)
        for r in range(nranks):
            assert out[r].is_dense  # the defining representation switch
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)

    @pytest.mark.parametrize("nranks", [3, 5, 6])
    def test_non_power_of_two(self, nranks):
        out, ref = run_dsar(nranks, 1024, 32)
        for r in range(nranks):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)

    def test_high_fill_in(self):
        """The DSAR regime: K > delta — result must still be exact."""
        out, ref = run_dsar(8, 512, 128)  # E[K] ~ 0.87 * 512 > delta=256
        assert np.allclose(out[0].to_dense(), ref, atol=1e-4)

    def test_empty(self):
        out, _ = run_dsar(4, 256, 0)
        assert out[0].is_dense
        assert out[0].stored_nonzeros == 0

    def test_results_identical_across_ranks(self):
        out, _ = run_dsar(4, 1024, 100)
        base = out[0].to_dense()
        for r in range(1, 4):
            assert np.array_equal(out[r].to_dense(), base)


class TestQuantizedDSAR:
    def test_single_rank_quantizes_its_partition(self):
        """P=1 is not a bypass: the lone rank owns the single partition and
        must quantize it exactly once, so the result follows the same
        distribution as every P>1 run (each partition quantized once by
        its owner)."""
        dim, nnz = 1024, 200
        out, ref = run_dsar(
            1, dim, nnz, quantizer_factory=lambda r: QSGDQuantizer(bits=4, bucket_size=128, seed=5)
        )
        assert out[0].is_dense
        # bit-for-bit what the owner-rank quantization pipeline produces
        q = QSGDQuantizer(bits=4, bucket_size=128, seed=5)
        expect = q.dequantize(q.quantize(ref.astype(np.float32))).astype(np.float32)
        assert np.array_equal(out[0].to_dense(), expect)
        # and genuinely quantized: 4-bit codes cannot reproduce the input
        assert not np.array_equal(out[0].to_dense(), ref)

    def test_single_rank_without_quantizer_still_exact(self):
        out, ref = run_dsar(1, 512, 64)
        assert out[0].is_dense
        assert np.array_equal(out[0].to_dense(), ref)

    def test_quantized_result_close_to_exact(self):
        """8-bit quantization of the dense stage: small relative error."""
        dim, nnz, P = 4096, 256, 4
        out, ref = run_dsar(
            P, dim, nnz, quantizer_factory=lambda r: QSGDQuantizer(bits=8, bucket_size=256, seed=7)
        )
        err = np.linalg.norm(out[0].to_dense() - ref) / max(np.linalg.norm(ref), 1e-12)
        assert err < 0.05

    def test_quantized_results_identical_across_ranks(self):
        """Each partition is quantized once by its owner, so all ranks
        dequantize the same codes and agree bit-for-bit."""
        out, _ = run_dsar(
            4, 2048, 128,
            quantizer_factory=lambda r: QSGDQuantizer(bits=4, bucket_size=128, seed=100 + r),
        )
        base = out[0].to_dense()
        for r in range(1, 4):
            assert np.array_equal(out[r].to_dense(), base)

    def test_quantized_moves_fewer_bytes(self):
        dim, nnz, P = 1 << 15, 512, 4
        out_fp, _ = run_dsar(P, dim, nnz)
        out_q, _ = run_dsar(
            P, dim, nnz, quantizer_factory=lambda r: QSGDQuantizer(bits=4, bucket_size=512, seed=1)
        )
        # allgather phase dominated by dense payload: ~8x shrink at 4 bits
        ratio = out_fp.trace.total_bytes_sent / out_q.trace.total_bytes_sent
        assert ratio > 3.0

    def test_error_scales_with_bits(self):
        """Relative error decreases with bits and respects the QSGD variance
        bound E||Q(v)-v||^2 <= min(d/s^2, sqrt(d)/s) ||v||^2 (App. C)."""
        from repro.quant import quantization_variance_bound

        errs = {}
        for bits in (2, 4, 8):
            out, ref = run_dsar(
                4, 2048, 128,
                quantizer_factory=lambda r, b=bits: QSGDQuantizer(bits=b, bucket_size=128, seed=3),
            )
            errs[bits] = float(
                np.linalg.norm(out[0].to_dense() - ref) / max(np.linalg.norm(ref), 1e-12)
            )
        assert errs[8] < errs[4] < errs[2]
        for bits, err in errs.items():
            # bound on E||Q(v)-v||^2 / ||v||^2 is the variance factor - 1
            bound = np.sqrt(quantization_variance_bound(bits, 128) - 1.0)
            assert err < 3.0 * bound + 0.05, f"{bits}-bit error {err} above bound {bound}"

    def test_unbiased_over_seeds(self):
        """Averaging quantized DSAR results over seeds approaches the truth."""
        dim, nnz, P, trials = 512, 64, 4, 30
        ref = reference_sum(dim, nnz, P)
        acc = np.zeros(dim)
        for t in range(trials):
            out, _ = run_dsar(
                P, dim, nnz,
                quantizer_factory=lambda r, t=t: QSGDQuantizer(bits=2, bucket_size=64, seed=1000 + t),
            )
            acc += out[0].to_dense()
        mean_err = np.linalg.norm(acc / trials - ref) / max(np.linalg.norm(ref), 1e-12)
        single = run_dsar(
            P, dim, nnz, quantizer_factory=lambda r: QSGDQuantizer(bits=2, bucket_size=64, seed=1000)
        )[0]
        single_err = np.linalg.norm(single[0].to_dense() - ref) / max(np.linalg.norm(ref), 1e-12)
        assert mean_err < single_err  # averaging reduces the zero-mean noise
