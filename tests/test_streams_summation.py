"""Tests for stream summation kernels: all four cases of §5.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    SparseStream,
    add_streams,
    add_streams_,
    concat_disjoint,
    merge_sparse_pairs,
    reduce_streams,
    reduction_work_bytes,
)


def _stream(dim, idx, val, dtype=np.float32):
    return SparseStream(dim, indices=idx, values=val, value_dtype=dtype)


class TestMergeSparsePairs:
    def test_disjoint(self):
        idx, val = merge_sparse_pairs(
            np.array([1, 3], np.uint32), np.array([1.0, 2.0], np.float32),
            np.array([2, 4], np.uint32), np.array([3.0, 4.0], np.float32),
        )
        assert list(idx) == [1, 2, 3, 4]
        assert list(val) == [1.0, 3.0, 2.0, 4.0]

    def test_full_overlap(self):
        idx, val = merge_sparse_pairs(
            np.array([1, 2], np.uint32), np.array([1.0, 2.0], np.float32),
            np.array([1, 2], np.uint32), np.array([10.0, 20.0], np.float32),
        )
        assert list(idx) == [1, 2]
        assert list(val) == [11.0, 22.0]

    def test_empty_left(self):
        idx, val = merge_sparse_pairs(
            np.empty(0, np.uint32), np.empty(0, np.float32),
            np.array([5], np.uint32), np.array([1.0], np.float32),
        )
        assert list(idx) == [5]

    def test_empty_right(self):
        idx, val = merge_sparse_pairs(
            np.array([5], np.uint32), np.array([1.0], np.float32),
            np.empty(0, np.uint32), np.empty(0, np.float32),
        )
        assert list(idx) == [5]

    def test_result_is_copy(self):
        a_idx = np.array([5], np.uint32)
        a_val = np.array([1.0], np.float32)
        idx, val = merge_sparse_pairs(a_idx, a_val, np.empty(0, np.uint32), np.empty(0, np.float32))
        idx[0] = 0
        assert a_idx[0] == 5


class TestAddStreams:
    def test_sparse_plus_sparse(self):
        a = _stream(100, [1, 5], [1.0, 2.0])
        b = _stream(100, [5, 9], [3.0, 4.0])
        out = add_streams(a, b)
        expected = a.to_dense() + b.to_dense()
        assert np.allclose(out.to_dense(), expected)
        assert not out.is_dense

    def test_add_does_not_mutate_inputs(self):
        a = _stream(100, [1], [1.0])
        b = _stream(100, [1], [2.0])
        add_streams(a, b)
        assert a.values[0] == 1.0
        assert b.values[0] == 2.0

    def test_dense_plus_dense_in_place(self):
        a = SparseStream(10, dense=np.ones(10, dtype=np.float32))
        b = SparseStream(10, dense=np.full(10, 2.0, dtype=np.float32))
        buf = a.dense_payload
        add_streams_(a, b)
        assert a.dense_payload is buf  # §5.1: "do not allocate a new stream"
        assert np.allclose(a.to_dense(), 3.0)

    def test_dense_plus_sparse(self):
        a = SparseStream(10, dense=np.ones(10, dtype=np.float32))
        b = _stream(10, [0, 9], [5.0, -1.0])
        add_streams_(a, b)
        assert a.is_dense
        assert a.to_dense()[0] == pytest.approx(6.0)
        assert a.to_dense()[9] == pytest.approx(0.0)

    def test_sparse_plus_dense_switches_to_dense(self):
        a = _stream(10, [2], [1.0])
        b = SparseStream(10, dense=np.ones(10, dtype=np.float32))
        add_streams_(a, b)
        assert a.is_dense
        assert a.to_dense()[2] == pytest.approx(2.0)

    def test_delta_switch_on_upper_bound(self):
        # dim 16 -> delta = 8 for float32; two 5-nnz streams: 5+5 > 8
        a = SparseStream(16, indices=np.arange(5), values=np.ones(5))
        b = SparseStream(16, indices=np.arange(5, 10), values=np.ones(5))
        ref = a.to_dense() + b.to_dense()
        add_streams_(a, b)
        assert a.is_dense  # the |H1|+|H2| upper-bound test fired
        assert np.allclose(a.to_dense(), ref)

    def test_no_switch_below_delta(self):
        a = SparseStream(100, indices=[1], values=[1.0])
        b = SparseStream(100, indices=[2], values=[1.0])
        add_streams_(a, b)
        assert not a.is_dense

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            add_streams_(SparseStream.zeros(5), SparseStream.zeros(6))

    def test_dtype_mismatch_rejected(self):
        a = SparseStream.zeros(5, value_dtype=np.float32)
        b = SparseStream.zeros(5, value_dtype=np.float64)
        with pytest.raises(TypeError):
            add_streams_(a, b)

    def test_wire_annotation_cleared_after_sum(self):
        a = _stream(1000, [1], [1.0])
        a.value_wire_bytes = 0.5
        add_streams_(a, _stream(1000, [2], [1.0]))
        assert a.value_wire_bytes is None


class TestConcatDisjoint:
    def test_concatenates_ordered(self):
        parts = [
            _stream(100, [10, 11], [1.0, 2.0]),
            _stream(100, [50], [3.0]),
            _stream(100, [0], [4.0]),
        ]
        out = concat_disjoint(parts, 100)
        assert list(out.indices) == [0, 10, 11, 50]

    def test_empty_parts_ok(self):
        out = concat_disjoint([SparseStream.zeros(10), _stream(10, [3], [1.0])], 10)
        assert out.nnz == 1

    def test_all_empty(self):
        out = concat_disjoint([SparseStream.zeros(10)], 10)
        assert out.nnz == 0

    def test_overlap_detected(self):
        with pytest.raises(ValueError, match="overlapping"):
            concat_disjoint([_stream(10, [3], [1.0]), _stream(10, [3], [2.0])], 10)


class TestReduceStreams:
    def test_matches_dense_reference(self, rng):
        streams = [SparseStream.random_uniform(500, nnz=40, rng=rng) for _ in range(6)]
        ref = np.sum([s.to_dense() for s in streams], axis=0)
        out = reduce_streams(streams)
        assert np.allclose(out.to_dense(), ref, atol=1e-5)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            reduce_streams([])

    def test_single_stream_copies(self, rng):
        s = SparseStream.random_uniform(100, nnz=10, rng=rng)
        out = reduce_streams([s])
        out.values[0] = 123.0
        assert s.values[0] != 123.0


class TestReductionWorkBytes:
    def test_positive_for_nonempty(self, rng):
        a = SparseStream.random_uniform(100, nnz=10, rng=rng)
        b = SparseStream.random_uniform(100, nnz=10, rng=rng)
        assert reduction_work_bytes(a, b) > 0

    def test_dense_case_scales_with_dimension(self):
        a = SparseStream(1000, dense=np.zeros(1000, dtype=np.float32))
        b = SparseStream(1000, dense=np.zeros(1000, dtype=np.float32))
        assert reduction_work_bytes(a, b) == 1000 * 4 * 2

    def test_mixed_case_scales_with_sparse_side(self, rng):
        dense = SparseStream(10_000, dense=np.zeros(10_000, dtype=np.float32))
        sparse = SparseStream.random_uniform(10_000, nnz=5, rng=rng)
        assert reduction_work_bytes(dense, sparse) < reduction_work_bytes(dense, dense)


# ----------------------------------------------------------------------
# property-based: summation must agree with dense arithmetic in every
# representation combination, and be commutative/associative.
# ----------------------------------------------------------------------
@st.composite
def stream_pair(draw):
    dim = draw(st.integers(min_value=1, max_value=120))
    seed = draw(st.integers(0, 2**31))
    gen = np.random.default_rng(seed)
    nnz_a = int(gen.integers(0, dim + 1))
    nnz_b = int(gen.integers(0, dim + 1))
    a = SparseStream.random_uniform(dim, nnz=nnz_a, rng=gen)
    b = SparseStream.random_uniform(dim, nnz=nnz_b, rng=gen)
    if draw(st.booleans()):
        a.densify()
    if draw(st.booleans()):
        b.densify()
    return a, b


@settings(max_examples=60, deadline=None)
@given(pair=stream_pair())
def test_property_add_matches_dense(pair):
    a, b = pair
    expected = a.to_dense().astype(np.float64) + b.to_dense().astype(np.float64)
    out = add_streams(a, b)
    assert np.allclose(out.to_dense(), expected, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(pair=stream_pair())
def test_property_add_commutative(pair):
    a, b = pair
    ab = add_streams(a, b).to_dense()
    ba = add_streams(b, a).to_dense()
    assert np.allclose(ab, ba, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(
    dim=st.integers(min_value=2, max_value=80),
    seed=st.integers(0, 2**31),
)
def test_property_reduce_order_invariant(dim, seed):
    gen = np.random.default_rng(seed)
    streams = [
        SparseStream.random_uniform(dim, nnz=int(gen.integers(0, dim + 1)), rng=gen)
        for _ in range(4)
    ]
    fwd = reduce_streams(streams).to_dense()
    rev = reduce_streams(streams[::-1]).to_dense()
    assert np.allclose(fwd, rev, atol=1e-4)


# ----------------------------------------------------------------------
# allocation-lean kernel additions (ISSUE 2): copy flag, scratch reuse
# ----------------------------------------------------------------------
class TestMergeCopyFlag:
    def test_empty_side_copies_by_default(self):
        idx_b = np.array([2, 7], np.uint32)
        val_b = np.array([1.0, 2.0], np.float32)
        empty_i = np.empty(0, np.uint32)
        empty_v = np.empty(0, np.float32)
        idx, val = merge_sparse_pairs(empty_i, empty_v, idx_b, val_b)
        assert idx is not idx_b and val is not val_b
        val[0] = 99.0
        assert val_b[0] == 1.0  # caller's array untouched

    def test_copy_false_returns_inputs_verbatim(self):
        idx_b = np.array([2, 7], np.uint32)
        val_b = np.array([1.0, 2.0], np.float32)
        empty_i = np.empty(0, np.uint32)
        empty_v = np.empty(0, np.float32)
        idx, val = merge_sparse_pairs(empty_i, empty_v, idx_b, val_b, copy=False)
        assert idx is idx_b and val is val_b
        idx2, val2 = merge_sparse_pairs(idx_b, val_b, empty_i, empty_v, copy=False)
        assert idx2 is idx_b and val2 is val_b

    def test_copy_flag_irrelevant_when_both_nonempty(self):
        idx_a = np.array([1], np.uint32)
        val_a = np.array([1.0], np.float32)
        idx_b = np.array([2], np.uint32)
        val_b = np.array([2.0], np.float32)
        idx, val = merge_sparse_pairs(idx_a, val_a, idx_b, val_b, copy=False)
        assert idx is not idx_a and idx is not idx_b  # merged output is fresh

    def test_add_streams_inplace_adopts_owned_incoming(self):
        from repro.streams import MergeScratch

        acc = SparseStream.zeros(100)
        incoming = _stream(100, [3, 5], [1.0, 2.0])
        out = add_streams_(acc, incoming, scratch=MergeScratch(), own_other=True)
        assert out is acc
        assert np.array_equal(acc.indices, incoming.indices)
        assert acc.indices is incoming.indices  # adopted, not copied

    def test_add_streams_default_does_not_alias(self):
        acc = SparseStream.zeros(100)
        incoming = _stream(100, [3, 5], [1.0, 2.0])
        add_streams_(acc, incoming)
        assert acc.indices is not incoming.indices
        acc.iscale(10.0)
        assert incoming.values[0] == 1.0  # pure input survives acc mutation


class TestMergeScratch:
    def test_scratch_results_bit_identical(self):
        from repro.streams import MergeScratch

        gen = np.random.default_rng(7)
        scratch = MergeScratch()
        for nnz in (1, 5, 100, 3000):
            a = SparseStream.random_uniform(1 << 16, nnz, gen)
            b = SparseStream.random_uniform(1 << 16, nnz, gen)
            ref = merge_sparse_pairs(a.indices, a.values, b.indices, b.values)
            got = merge_sparse_pairs(
                a.indices, a.values, b.indices, b.values, scratch=scratch
            )
            assert np.array_equal(ref[0], got[0])
            assert np.array_equal(ref[1], got[1])
            assert got[0].dtype == ref[0].dtype and got[1].dtype == ref[1].dtype

    def test_scratch_reused_across_rounds_stays_correct(self):
        """Recursive-doubling style: one scratch, growing operands."""
        from repro.streams import MergeScratch

        gen = np.random.default_rng(11)
        scratch = MergeScratch()
        acc = SparseStream.random_uniform(1 << 14, 200, gen)
        expected = acc.to_dense().astype(np.float64)
        for _ in range(5):
            nxt = SparseStream.random_uniform(1 << 14, 200, gen)
            expected += nxt.to_dense()
            add_streams_(acc, nxt, scratch=scratch, own_other=True)
        assert np.allclose(acc.to_dense(), expected, atol=1e-3)

    def test_scratch_outputs_do_not_alias_workspace(self):
        """Round k's outputs must survive round k+1 reusing the scratch."""
        from repro.streams import MergeScratch

        scratch = MergeScratch()
        idx1, val1 = merge_sparse_pairs(
            np.array([1, 2], np.uint32), np.array([1.0, 2.0], np.float32),
            np.array([2, 3], np.uint32), np.array([3.0, 4.0], np.float32),
            scratch=scratch,
        )
        snapshot = (idx1.copy(), val1.copy())
        merge_sparse_pairs(
            np.arange(500, dtype=np.uint32), np.ones(500, np.float32),
            np.arange(500, 1000, dtype=np.uint32), np.ones(500, np.float32),
            scratch=scratch,
        )
        assert np.array_equal(idx1, snapshot[0])
        assert np.array_equal(val1, snapshot[1])

    def test_scratch_handles_dtype_switch(self):
        from repro.streams import MergeScratch

        scratch = MergeScratch()
        for dtype in (np.float32, np.float64, np.float16, np.float32):
            a = _stream(64, [1, 9], [1.0, 2.0], dtype)
            b = _stream(64, [9, 30], [3.0, 4.0], dtype)
            idx, val = merge_sparse_pairs(
                a.indices, a.values, b.indices, b.values, scratch=scratch
            )
            assert val.dtype == np.dtype(dtype)
            assert list(idx) == [1, 9, 30]


class TestSetPairs:
    def test_set_pairs_adopts_in_place(self):
        s = _stream(50, [1, 2], [1.0, 2.0])
        idx = np.array([5, 9], np.uint32)
        val = np.array([7.0, 8.0], np.float32)
        out = s.set_pairs(idx, val)
        assert out is s and not s.is_dense
        assert s.indices is idx and s.values is val
        assert s.nnz == 2

    def test_set_pairs_clears_dense_representation(self):
        s = SparseStream(8, dense=np.ones(8, np.float32))
        s.set_pairs(np.array([0], np.uint32), np.array([4.0], np.float32))
        assert not s.is_dense
        assert s.to_dense()[0] == 4.0 and s.to_dense()[1] == 0.0
